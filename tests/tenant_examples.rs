//! The example tenant programs under `examples/p4all/` are generated from
//! the elastic app library (bounded so a joint compile stays fast); this
//! test keeps the checked-in files in sync with the generators.
//!
//! Regenerate after an intentional app change with:
//!
//! ```text
//! UPDATE_EXAMPLES=1 cargo test -q --test tenant_examples
//! ```

use p4all_elastic::apps::{lpm, macrewrite, netcache, vlan};

/// The canonical example options: small elastic upper bounds so the
/// three-tenant joint ILP (NetCache + VLAN + LPM) solves in well under a
/// second — these files back the CI multi-tenant smoke job.
fn examples() -> Vec<(&'static str, String)> {
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 2;
    nc.kvs.max_slices = Some(3);
    let vlan_opts = vlan::VlanOptions { max_cells: Some(4096), ..Default::default() };
    let lpm_opts = lpm::LpmOptions { max_cells: Some(4096), ..Default::default() };
    let mac_opts =
        macrewrite::MacRewriteOptions { max_cells: Some(4096), ..Default::default() };
    vec![
        ("netcache.p4all", netcache::source(&nc)),
        ("vlan.p4all", vlan::source(&vlan_opts)),
        ("lpm.p4all", lpm::source(&lpm_opts)),
        ("mac_rewrite.p4all", macrewrite::source(&mac_opts)),
    ]
}

#[test]
fn example_tenants_match_generators() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/p4all");
    for (name, want) in examples() {
        let path = dir.join(name);
        if std::env::var_os("UPDATE_EXAMPLES").is_some() {
            std::fs::write(&path, &want).expect("write example");
            continue;
        }
        let got = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing {}: {e}; run with UPDATE_EXAMPLES=1 to create it", path.display())
        });
        assert_eq!(got, want, "{name} is stale; regenerate with UPDATE_EXAMPLES=1");
    }
}

//! Integration: when NetCache does not fit on an undersized target, the
//! compiler must not just say `Infeasible` — it must name the elastic
//! structures in conflict, the exhausted PISA resource kinds, and anchor
//! the explanation at source spans (ISSUE acceptance criterion).

use p4all_core::{
    CompileCtx, CompileError, CompileOptions, Compiler, ResourceKind, TenantProgram,
};
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_elastic::apps::{lpm, vlan};
use p4all_lang::Tenant;
use p4all_pisa::presets;

/// NetCache with the §6.2 key-value-store reservation on a target whose
/// SRAM cannot possibly hold it: the `assume kv_items >= ...` collides
/// with the memory rows of Figure 10.
#[test]
fn undersized_netcache_explains_the_conflict() {
    // Reserve far more key-value items than the target's SRAM can hold.
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);

    // paper_eval with only 16 Kb of SRAM: the 2^20-item store needs
    // 128 Mb, so no assignment of the elastic parameters fits.
    let target = presets::paper_eval(1 << 14);

    let x = match Compiler::new(target).compile(&src) {
        Ok(_) => panic!("a 128 Mb reservation cannot fit in 16 Kb of SRAM"),
        Err(CompileError::Infeasible(x)) => x,
        Err(other) => panic!("expected Infeasible, got {other:?}"),
    };

    // Names the conflicting elastic structures...
    assert!(
        !x.symbolics.is_empty(),
        "explanation must name at least one symbolic value, got none"
    );
    assert!(
        x.symbolics.iter().any(|s| s.starts_with("kv")),
        "the key-value store's symbolics must be implicated, got {:?}",
        x.symbolics
    );

    // ...the exhausted physical resource kinds...
    assert!(
        x.resources.iter().any(|r| r.is_physical()),
        "explanation must implicate a physical PISA resource, got {:?}",
        x.resources
    );
    assert!(
        x.resources.contains(&ResourceKind::Memory),
        "a memory conflict must implicate M, got {:?}",
        x.resources
    );

    // ...and anchors at least one source span.
    let spanned = x.diagnostic.span.is_some()
        || x.diagnostic.notes.iter().any(|n| n.span.is_some());
    assert!(spanned, "explanation must carry at least one source span");

    // The rendered text is self-contained: target name, resource
    // description, and the conflict core size all appear.
    let rendered = x.diagnostic.render(&src, "<netcache>");
    assert!(rendered.contains("does not fit"), "got: {rendered}");
    assert!(rendered.contains("(M)"), "memory letter missing: {rendered}");
    assert!(rendered.contains("conflict core:"), "got: {rendered}");
}

/// Two tenants that each fit the paper-example pipeline alone but cannot
/// share it: each pins a register structure to two full stages of memory
/// (the target has three). The joint IIS must name BOTH tenants, the
/// exhausted resource kind, and anchor a source span for each tenant.
#[test]
fn joint_infeasibility_names_both_tenants() {
    // On a 2048-bit-per-stage target, 64 cells x 32 bits is exactly one
    // full stage of register memory per bank/level. Three instances each:
    // either tenant fills 3 of the 4 stages alone, so the pair needs 6 —
    // two cannot share the pipeline. (A small bespoke target keeps the
    // symmetric placement search, and the IIS probing on top of it, fast.)
    let filter_src = vlan::source(&vlan::VlanOptions {
        acl_size: 16,
        min_banks: 3,
        max_banks: 3,
        min_cells: 64,
        max_cells: Some(64),
    });
    let routes_src = lpm::source(&lpm::LpmOptions {
        min_levels: 3,
        max_levels: 3,
        min_cells: 64,
        max_cells: Some(64),
    });
    let target = p4all_pisa::TargetSpec {
        name: "joint-infeasibility-test".into(),
        stages: 4,
        memory_bits: 2048,
        stateful_alus: 4,
        stateless_alus: 100,
        phv_bits: 4096,
        phv_fixed_bits: 0,
        alu_costs: p4all_pisa::AluCostModel::tofino_like(),
    };

    // Each tenant fits standalone — the conflict only exists jointly.
    for (name, src) in [("filter", &filter_src), ("routes", &routes_src)] {
        Compiler::new(target.clone())
            .compile(src)
            .unwrap_or_else(|e| panic!("tenant `{name}` must fit alone: {e:?}"));
    }

    let tenants = [
        TenantProgram::new(Tenant::new("filter", 2.0).unwrap(), &filter_src),
        TenantProgram::new(Tenant::new("routes", 1.0).unwrap(), &routes_src),
    ];
    let mut ctx = CompileCtx::new(CompileOptions::default());
    let x = match ctx.compile_joint(&tenants, &target) {
        Ok(_) => panic!("four full stages of registers cannot share three"),
        Err(CompileError::Infeasible(x)) => x,
        Err(other) => panic!("expected Infeasible, got {other:?}"),
    };

    // Both tenants are implicated by name...
    assert_eq!(
        x.tenants,
        vec!["filter".to_string(), "routes".to_string()],
        "the conflict core must implicate both tenants"
    );
    // ...the diagnostic says so in prose...
    let rendered = x.diagnostic.render(&x_src(&tenants), "<joint>");
    assert!(
        rendered.contains("filter") && rendered.contains("routes"),
        "rendered explanation must name both tenants: {rendered}"
    );
    assert!(
        rendered.contains("shared pipeline capacity"),
        "multi-tenant conflicts must be called out as such: {rendered}"
    );
    // ...a physical resource kind is named...
    assert!(
        x.resources.iter().any(|r| r.is_physical()),
        "explanation must implicate a physical PISA resource, got {:?}",
        x.resources
    );
    // ...and each tenant contributes at least one spanned anchor.
    let spanned_rows: Vec<&str> = x
        .diagnostic
        .notes
        .iter()
        .filter(|n| n.span.is_some())
        .map(|n| n.message.as_str())
        .collect();
    for tenant in ["filter", "routes"] {
        assert!(
            spanned_rows.iter().any(|m| m.contains(tenant)),
            "no spanned anchor for tenant `{tenant}` in {spanned_rows:?}"
        );
    }
}

/// The merged source a joint diagnostic renders against.
fn x_src(tenants: &[TenantProgram]) -> String {
    p4all_core::merge_tenants(tenants).expect("tenants merge").src
}

/// The deletion filter stays within its probe budget even for the full
/// NetCache model, and reports whether the core is irreducible.
#[test]
fn explanation_is_bounded() {
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);
    let x = match Compiler::new(presets::paper_eval(1 << 14)).compile(&src) {
        Ok(_) => panic!("undersized target"),
        Err(CompileError::Infeasible(x)) => x,
        Err(other) => panic!("expected Infeasible, got {other:?}"),
    };
    assert!(
        x.probes <= p4all_ilp::IisOptions::default().max_probes,
        "probe budget exceeded: {} probes",
        x.probes
    );
    // The core is a strict subset of the model: shrinking happened.
    assert!(!x.rows.is_empty());
}

/// Warm-starting the deletion filter's probe solves (the default) is a
/// pure speedup: the explanation — conflict core, implicated symbolics
/// and resources, rendered diagnostic — must be identical to the one the
/// all-cold filter produces.
#[test]
fn warm_probes_leave_the_explanation_unchanged() {
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);
    let target = presets::paper_eval(1 << 14);

    let explain = |warm: bool| {
        let mut copts = CompileOptions::default();
        copts.iis.warm_lp = warm;
        copts.solver.warm_lp = warm;
        match Compiler::with_options(target.clone(), copts).compile(&src) {
            Ok(_) => panic!("undersized target"),
            Err(CompileError::Infeasible(x)) => x,
            Err(other) => panic!("expected Infeasible, got {other:?}"),
        }
    };
    let warm = explain(true);
    let cold = explain(false);

    let core = |x: &p4all_core::Infeasibility| -> Vec<(usize, String)> {
        x.rows.iter().map(|r| (r.row, r.name.clone())).collect()
    };
    assert_eq!(core(&warm), core(&cold), "conflict core changed under warm probes");
    assert_eq!(warm.symbolics, cold.symbolics);
    assert_eq!(warm.resources, cold.resources);
    assert_eq!(
        warm.diagnostic.render(&src, "<netcache>"),
        cold.diagnostic.render(&src, "<netcache>"),
        "rendered explanation changed under warm probes"
    );
}

//! Integration: when NetCache does not fit on an undersized target, the
//! compiler must not just say `Infeasible` — it must name the elastic
//! structures in conflict, the exhausted PISA resource kinds, and anchor
//! the explanation at source spans (ISSUE acceptance criterion).

use p4all_core::{CompileError, CompileOptions, Compiler, ResourceKind};
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;

/// NetCache with the §6.2 key-value-store reservation on a target whose
/// SRAM cannot possibly hold it: the `assume kv_items >= ...` collides
/// with the memory rows of Figure 10.
#[test]
fn undersized_netcache_explains_the_conflict() {
    // Reserve far more key-value items than the target's SRAM can hold.
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);

    // paper_eval with only 16 Kb of SRAM: the 2^20-item store needs
    // 128 Mb, so no assignment of the elastic parameters fits.
    let target = presets::paper_eval(1 << 14);

    let x = match Compiler::new(target).compile(&src) {
        Ok(_) => panic!("a 128 Mb reservation cannot fit in 16 Kb of SRAM"),
        Err(CompileError::Infeasible(x)) => x,
        Err(other) => panic!("expected Infeasible, got {other:?}"),
    };

    // Names the conflicting elastic structures...
    assert!(
        !x.symbolics.is_empty(),
        "explanation must name at least one symbolic value, got none"
    );
    assert!(
        x.symbolics.iter().any(|s| s.starts_with("kv")),
        "the key-value store's symbolics must be implicated, got {:?}",
        x.symbolics
    );

    // ...the exhausted physical resource kinds...
    assert!(
        x.resources.iter().any(|r| r.is_physical()),
        "explanation must implicate a physical PISA resource, got {:?}",
        x.resources
    );
    assert!(
        x.resources.contains(&ResourceKind::Memory),
        "a memory conflict must implicate M, got {:?}",
        x.resources
    );

    // ...and anchors at least one source span.
    let spanned = x.diagnostic.span.is_some()
        || x.diagnostic.notes.iter().any(|n| n.span.is_some());
    assert!(spanned, "explanation must carry at least one source span");

    // The rendered text is self-contained: target name, resource
    // description, and the conflict core size all appear.
    let rendered = x.diagnostic.render(&src, "<netcache>");
    assert!(rendered.contains("does not fit"), "got: {rendered}");
    assert!(rendered.contains("(M)"), "memory letter missing: {rendered}");
    assert!(rendered.contains("conflict core:"), "got: {rendered}");
}

/// The deletion filter stays within its probe budget even for the full
/// NetCache model, and reports whether the core is irreducible.
#[test]
fn explanation_is_bounded() {
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);
    let x = match Compiler::new(presets::paper_eval(1 << 14)).compile(&src) {
        Ok(_) => panic!("undersized target"),
        Err(CompileError::Infeasible(x)) => x,
        Err(other) => panic!("expected Infeasible, got {other:?}"),
    };
    assert!(
        x.probes <= p4all_ilp::IisOptions::default().max_probes,
        "probe budget exceeded: {} probes",
        x.probes
    );
    // The core is a strict subset of the model: shrinking happened.
    assert!(!x.rows.is_empty());
}

/// Warm-starting the deletion filter's probe solves (the default) is a
/// pure speedup: the explanation — conflict core, implicated symbolics
/// and resources, rendered diagnostic — must be identical to the one the
/// all-cold filter produces.
#[test]
fn warm_probes_leave_the_explanation_unchanged() {
    let opts =
        NetCacheOptions { min_kv_items: Some(1 << 20), ..NetCacheOptions::default() };
    let src = netcache::source(&opts);
    let target = presets::paper_eval(1 << 14);

    let explain = |warm: bool| {
        let mut copts = CompileOptions::default();
        copts.iis.warm_lp = warm;
        copts.solver.warm_lp = warm;
        match Compiler::with_options(target.clone(), copts).compile(&src) {
            Ok(_) => panic!("undersized target"),
            Err(CompileError::Infeasible(x)) => x,
            Err(other) => panic!("expected Infeasible, got {other:?}"),
        }
    };
    let warm = explain(true);
    let cold = explain(false);

    let core = |x: &p4all_core::Infeasibility| -> Vec<(usize, String)> {
        x.rows.iter().map(|r| (r.row, r.name.clone())).collect()
    };
    assert_eq!(core(&warm), core(&cold), "conflict core changed under warm probes");
    assert_eq!(warm.symbolics, cold.symbolics);
    assert_eq!(warm.resources, cold.resources);
    assert_eq!(
        warm.diagnostic.render(&src, "<netcache>"),
        cold.diagnostic.render(&src, "<netcache>"),
        "rendered explanation changed under warm probes"
    );
}

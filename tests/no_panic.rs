//! Property: no source text — however malformed — panics the compiler.
//! Every failure must surface as a [`p4all_core::CompileError`], i.e. a
//! diagnostic, not an unwind (ISSUE acceptance criterion).
//!
//! The corpus is the ui diagnostic suite plus a known-good elastic
//! program; each case mutates one corpus entry by truncation, byte
//! substitution, or splicing a fragment of another entry.

use std::time::Duration;

use p4all_core::{CompileCtx, CompileOptions};
use p4all_pisa::presets;
use proptest::prelude::*;

/// The ui diagnostic corpus, plus one well-formed elastic source so
/// mutations also explore the "almost valid" neighborhood.
const CORPUS: &[&str] = &[
    include_str!("../crates/cli/tests/ui/lex_error.p4all"),
    include_str!("../crates/cli/tests/ui/parse_error.p4all"),
    include_str!("../crates/cli/tests/ui/unknown_symbolic.p4all"),
    include_str!("../crates/cli/tests/ui/unroll_cap_exceeded.p4all"),
    include_str!("../crates/cli/tests/ui/infeasible_target.p4all"),
    r#"
        symbolic int rows;
        assume rows >= 1 && rows <= 3;
        optimize rows;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[rows] idx; }
        register<bit<32>>[32][rows] sketch;
        action bump()[int i] {
            meta.idx[i] = hash(hdr.key, 32);
            sketch[i][meta.idx[i]] = sketch[i][meta.idx[i]] + 1;
        }
        control Main() { apply { for (i < rows) { bump()[i]; } } }
    "#,
];

/// Compile with a small target and a tightly bounded solver so even
/// pathological mutants finish fast; the property is "returns", not
/// "returns quickly optimal".
fn compile_bounded(src: &str) {
    let mut options = CompileOptions { max_unroll: 8, ..CompileOptions::default() };
    options.solver.node_limit = 2_000;
    options.solver.time_limit = Some(Duration::from_secs(5));
    options.iis.max_probes = 16;
    let mut ctx = CompileCtx::new(options);
    // Ok and every Err variant are both fine; only a panic fails the test.
    let _ = ctx.compile(src, &presets::paper_example());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_sources_never_panic(
        pick in 0usize..6,
        cut in 0usize..1_000,
    ) {
        let base = CORPUS[pick];
        let cut = cut.min(base.len());
        // Snap to a char boundary so the mutant stays valid UTF-8.
        let mut cut = cut;
        while !base.is_char_boundary(cut) {
            cut -= 1;
        }
        compile_bounded(&base[..cut]);
    }

    #[test]
    fn byte_substituted_sources_never_panic(
        pick in 0usize..6,
        pos in 0usize..1_000,
        byte in proptest::prelude::any::<u8>(),
    ) {
        let base = CORPUS[pick];
        if base.is_empty() {
            return Ok(());
        }
        let mut bytes = base.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        // Lossy round-trip keeps the mutant valid UTF-8.
        let mutant = String::from_utf8_lossy(&bytes).into_owned();
        compile_bounded(&mutant);
    }

    #[test]
    fn spliced_sources_never_panic(
        a in 0usize..6,
        b in 0usize..6,
        cut_a in 0usize..1_000,
        cut_b in 0usize..1_000,
    ) {
        let (sa, sb) = (CORPUS[a], CORPUS[b]);
        let mut ca = cut_a.min(sa.len());
        while !sa.is_char_boundary(ca) {
            ca -= 1;
        }
        let mut cb = cut_b.min(sb.len());
        while !sb.is_char_boundary(cb) {
            cb -= 1;
        }
        let mutant = format!("{}{}", &sa[..ca], &sb[cb..]);
        compile_bounded(&mutant);
    }
}

/// The native backend's failure path is a typed diagnostic too: a broken
/// or missing `rustc` must surface as [`p4all_sim::NativeError`], never an
/// unwind. Sets `P4ALL_RUSTC` for this process only — the other native
/// tests live in separate test binaries, so there is no env race.
#[test]
fn missing_rustc_is_a_typed_error_not_a_panic() {
    std::env::set_var("P4ALL_RUSTC", "/nonexistent/definitely-not-rustc");
    let src = CORPUS[5]; // the known-good elastic program
    let mut options = CompileOptions { max_unroll: 8, ..CompileOptions::default() };
    options.solver.time_limit = Some(Duration::from_secs(5));
    let mut ctx = CompileCtx::new(options);
    let c = ctx.compile(src, &presets::paper_example()).expect("corpus program compiles");
    let program = p4all_lang::parse(src).expect("parses");
    let mut sw = p4all_sim::Switch::build(&c.concrete, &program).expect("sim builds");
    sw.set_backend(p4all_sim::Backend::Native);
    let err = sw.prepare_native().expect_err("bogus rustc cannot prepare");
    assert!(
        matches!(err, p4all_sim::NativeError::RustcMissing(_)),
        "expected RustcMissing, got: {err}"
    );
    // And the packet path degrades to the same typed story: a SimError,
    // not a panic.
    sw.begin_packet();
    sw.set_header("key", 1).unwrap();
    assert!(sw.run_packet().is_err(), "native run without an engine must error, not panic");
}

//! Integration: the ILP's layouts are optimal — they dominate the greedy
//! baseline and every feasible hand-constructed configuration.

use p4all_core::{evaluate_utility, CompileError, Compiler};
use p4all_elastic::apps::{netcache, precision, sketchlearn};
use p4all_pisa::presets;

#[test]
fn ilp_dominates_greedy_on_every_app() {
    let target = presets::paper_eval(1 << 15);
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 2;
    nc.kvs.max_slices = Some(3);
    let apps: Vec<(&str, String)> = vec![
        ("netcache", netcache::source(&nc)),
        (
            "sketchlearn",
            sketchlearn::source(&sketchlearn::SketchLearnOptions {
                levels: 2,
                max_rows_per_level: 2,
                min_cols: 8,
            }),
        ),
        (
            "precision",
            precision::source(&precision::PrecisionOptions { max_stages: 2, min_slots: 16 }),
        ),
    ];
    for (name, src) in apps {
        let compiler = Compiler::new(target.clone());
        let program = p4all_lang::parse(&src).unwrap();
        let utility = program.optimize.clone().unwrap();
        let ilp = compiler.compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let greedy = compiler.compile_greedy(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let u_ilp = evaluate_utility(&utility, &ilp.layout.symbol_values).unwrap();
        let u_greedy = evaluate_utility(&utility, &greedy.symbol_values).unwrap();
        assert!(
            u_ilp >= u_greedy - 1e-9,
            "{name}: ILP utility {u_ilp} < greedy {u_greedy}"
        );
    }
}

/// Pin the CMS to every shape in a small grid; the unpinned ILP optimum
/// must weakly dominate each pinned optimum under the same utility.
#[test]
fn ilp_beats_every_pinned_configuration() {
    let target = presets::paper_eval(1 << 13);
    let base = |rows_lo: u64, rows_hi: u64, cols_lo: u64, cols_hi: u64| {
        format!(
            r#"
            symbolic int rows;
            symbolic int cols;
            assume rows >= {rows_lo} && rows <= {rows_hi};
            assume cols >= {cols_lo} && cols <= {cols_hi};
            optimize rows * cols;
            header pkt {{ bit<32> key; }}
            struct metadata {{
                bit<32>[rows] index;
                bit<32>[rows] count;
                bit<32> min;
            }}
            register<bit<32>>[cols][rows] cms;
            action incr()[int i] {{
                meta.index[i] = hash(hdr.key, cols);
                cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
                meta.count[i] = cms[i][meta.index[i]];
            }}
            action set_min()[int i] {{ meta.min = meta.count[i]; }}
            control sketch() {{ apply {{ for (i < rows) {{ incr()[i]; }} }} }}
            control minimum() {{
                apply {{
                    for (i < rows) {{
                        if (meta.count[i] < meta.min || meta.min == 0) {{ set_min()[i]; }}
                    }}
                }}
            }}
            control Main() {{ apply {{ sketch.apply(); minimum.apply(); }} }}
        "#
        )
    };

    let free = Compiler::new(target.clone()).compile(&base(1, 4, 4, 4096)).unwrap();
    let best = free.layout.objective;

    for rows in [1u64, 2, 3] {
        for cols in [16u64, 64, 128] {
            match Compiler::new(target.clone()).compile(&base(rows, rows, cols, cols)) {
                Ok(pinned) => {
                    assert!(
                        best >= pinned.layout.objective - 1e-6,
                        "free optimum {best} lost to pinned {rows}x{cols} = {}",
                        pinned.layout.objective
                    );
                }
                Err(CompileError::Infeasible(_)) => {} // pinned shape does not fit
                Err(e) => panic!("unexpected error at {rows}x{cols}: {e}"),
            }
        }
    }
}

/// Figure 13's mechanism: flipping utility weights moves resources.
///
/// The weights only matter when the structures actually contend: the store
/// must be allowed to stretch across every stage (as in the paper, where
/// the KVS fills nine of ten stages), so that giving the sketch more means
/// giving the store less.
#[test]
fn utility_weights_steer_the_split() {
    let target = presets::paper_eval(1 << 15);
    let mut kv_heavy = netcache::NetCacheOptions::paper_default();
    kv_heavy.cms.max_rows = 4;
    kv_heavy.kvs.max_slices = None;
    kv_heavy.utility_in_bits = true;
    let mut cms_heavy = netcache::NetCacheOptions::cms_heavy();
    cms_heavy.cms.max_rows = 4;
    cms_heavy.kvs.max_slices = None;
    cms_heavy.utility_in_bits = true;

    let a = Compiler::new(target.clone()).compile(&netcache::source(&kv_heavy)).unwrap();
    let b = Compiler::new(target).compile(&netcache::source(&cms_heavy)).unwrap();

    let cms_a = a.layout.symbol_values["cms_rows"] * a.layout.symbol_values["cms_cols"];
    let cms_b = b.layout.symbol_values["cms_rows"] * b.layout.symbol_values["cms_cols"];
    let kv_a = a.layout.symbol_values["kv_slices"] * a.layout.symbol_values["kv_cols"];
    let kv_b = b.layout.symbol_values["kv_slices"] * b.layout.symbol_values["kv_cols"];

    assert!(
        cms_b >= cms_a,
        "CMS-leaning utility must not shrink the sketch: {cms_b} vs {cms_a}"
    );
    assert!(
        kv_a >= kv_b,
        "KV-leaning utility must not shrink the store: {kv_a} vs {kv_b}"
    );
    assert!(
        cms_b > cms_a || kv_a > kv_b,
        "flipping weights must move something: cms {cms_a}->{cms_b}, kv {kv_a}->{kv_b}"
    );
}

//! Executable semantic contracts for the elastic example modules, checked
//! over random seeded traces on *both* simulator backends:
//!
//! - **count-min sketch**: the data-plane estimate after each packet is an
//!   over-approximation — at least the true occurrence count of that key
//!   so far, and at most the total packet count;
//! - **Bloom filter**: no false negatives — a key that was inserted at any
//!   earlier point in the trace always queries as a member.
//!
//! These are the properties the paper's elasticity argument leans on: the
//! ILP may shrink `rows`/`cols`/`bits` to fit a target, but no layout is
//! allowed to break the structure's one-sided error guarantee. The traces
//! are drawn from a seeded RNG so every failure is reproducible from the
//! seed in the assertion message.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p4all_core::Compiler;
use p4all_elastic::modules::bloom::{self, BloomParams};
use p4all_elastic::modules::cms::CmsParams;
use p4all_elastic::modules::{cms, compose};
use p4all_pisa::presets;
use p4all_sim::{rustc_available, Backend, Switch};

const BACKENDS: [Backend; 3] = [Backend::Interp, Backend::Compiled, Backend::Native];

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Interp => "interp",
        Backend::Compiled => "compiled",
        Backend::Native => "native",
    }
}

/// True when this backend can't run here (native without a `rustc`);
/// callers `continue` past it with a logged reason.
fn backend_unavailable(b: Backend) -> bool {
    if matches!(b, Backend::Native) && !rustc_available() {
        eprintln!("skipping native backend — rustc not available on PATH");
        return true;
    }
    false
}

// ------------------------------------------------------------------ CMS

fn build_cms(backend: Backend) -> Switch {
    let params = CmsParams::default(); // prefix `cms`, estimate in `cms_min`
    let src = compose(&[("key", 32)], &params.utility_term(), vec![cms::fragment(&params)]);
    let c = Compiler::new(presets::paper_eval(1 << 15))
        .compile(&src)
        .unwrap_or_else(|e| panic!("cms compile failed: {e}\n{src}"));
    assert!(c.layout.symbol_values[&params.rows_sym()] >= 1);
    assert!(c.layout.symbol_values[&params.cols_sym()] >= 1);
    let program = p4all_lang::parse(&src).unwrap();
    let mut sw = Switch::build(&c.concrete, &program).unwrap();
    sw.set_backend(backend);
    sw
}

/// Feed one key through the sketch and return the data-plane estimate
/// (the update and the min-scan happen in the same packet).
fn cms_count(sw: &mut Switch, key: u64) -> u64 {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.run_packet().unwrap();
    sw.meta("cms_min").unwrap()
}

#[test]
fn cms_estimate_dominates_true_count_on_random_traces() {
    for seed in [11u64, 47, 2026] {
        let mut rng = StdRng::seed_from_u64(seed);
        // A skewed key space (heavy keys + tail) so collisions actually occur.
        let trace: Vec<u64> = (0..400)
            .map(|_| if rng.gen_bool(0.5) { rng.gen_range(0..4) } else { rng.gen_range(0..256) })
            .collect();
        for backend in BACKENDS {
            if backend_unavailable(backend) {
                continue;
            }
            let mut sw = build_cms(backend);
            let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
            for (i, &key) in trace.iter().enumerate() {
                let est = cms_count(&mut sw, key);
                let true_count = truth.entry(key).or_insert(0);
                *true_count += 1;
                assert!(
                    est >= *true_count,
                    "seed {seed}, packet {i}, backend {}: estimate {est} below true \
                     count {true_count} for key {key} — count-min must over-approximate",
                    backend_name(backend)
                );
                assert!(
                    est <= (i + 1) as u64,
                    "seed {seed}, packet {i}, backend {}: estimate {est} exceeds the \
                     {} packets seen so far",
                    backend_name(backend),
                    i + 1
                );
            }
        }
    }
}

#[test]
fn cms_backends_agree_on_every_estimate() {
    let mut rng = StdRng::seed_from_u64(7);
    let trace: Vec<u64> = (0..200).map(|_| rng.gen_range(0..32)).collect();
    let mut interp = build_cms(Backend::Interp);
    let mut fast = build_cms(Backend::Compiled);
    let mut native =
        (!backend_unavailable(Backend::Native)).then(|| build_cms(Backend::Native));
    for (i, &key) in trace.iter().enumerate() {
        let a = cms_count(&mut interp, key);
        let b = cms_count(&mut fast, key);
        assert_eq!(a, b, "packet {i}: backends disagree on the estimate for key {key}");
        if let Some(nat) = native.as_mut() {
            let c = cms_count(nat, key);
            assert_eq!(a, c, "packet {i}: native disagrees on the estimate for key {key}");
        }
    }
}

#[test]
fn cms_reference_model_matches_the_contract_too() {
    // The Rust reference the simulator tests lean on obeys the same
    // contract — guards against the oracle itself drifting.
    let mut rng = StdRng::seed_from_u64(3);
    let mut sketch = cms::CountMinSketch::new(3, 32);
    let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..500 {
        let key = rng.gen_range(0..64);
        let est = sketch.insert(key);
        let t = truth.entry(key).or_insert(0);
        *t += 1;
        assert!(est >= *t, "reference CMS under-counted key {key}: {est} < {t}");
    }
}

// ---------------------------------------------------------------- Bloom

fn build_bloom(backend: Backend) -> Switch {
    let params = BloomParams {
        prefix: "bf".into(),
        key_expr: "hdr.key".into(),
        min_hashes: 2,
        max_hashes: 3,
        min_bits: 256,
        max_bits: Some(2048),
    };
    let mut hdr: Vec<(String, u32)> = vec![("key".into(), 32)];
    hdr.extend(bloom::header_fields(&params));
    let hdr_refs: Vec<(&str, u32)> = hdr.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let src = compose(&hdr_refs, &params.utility_term(), vec![bloom::fragment(&params)]);
    let c = Compiler::new(presets::paper_eval(1 << 15))
        .compile(&src)
        .unwrap_or_else(|e| panic!("bloom compile failed: {e}\n{src}"));
    let program = p4all_lang::parse(&src).unwrap();
    let mut sw = Switch::build(&c.concrete, &program).unwrap();
    sw.set_backend(backend);
    sw
}

fn bloom_insert(sw: &mut Switch, key: u64) {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.set_header("bf_op", 1).unwrap();
    sw.run_packet().unwrap();
}

fn bloom_query(sw: &mut Switch, key: u64) -> bool {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.set_header("bf_op", 0).unwrap();
    sw.run_packet().unwrap();
    sw.meta("bf_member").unwrap() == 1
}

#[test]
fn bloom_has_no_false_negatives_on_random_traces() {
    for seed in [5u64, 99, 4242] {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random interleaving of inserts and queries over a shared key space.
        let trace: Vec<(bool, u64)> =
            (0..300).map(|_| (rng.gen_bool(0.4), rng.gen_range(0..128))).collect();
        for backend in BACKENDS {
            if backend_unavailable(backend) {
                continue;
            }
            let mut sw = build_bloom(backend);
            let mut inserted: BTreeSet<u64> = BTreeSet::new();
            for (i, &(is_insert, key)) in trace.iter().enumerate() {
                if is_insert {
                    bloom_insert(&mut sw, key);
                    inserted.insert(key);
                } else {
                    let member = bloom_query(&mut sw, key);
                    assert!(
                        member || !inserted.contains(&key),
                        "seed {seed}, packet {i}, backend {}: false negative — key \
                         {key} was inserted earlier but queried as absent",
                        backend_name(backend)
                    );
                }
            }
            // Every inserted key must still be a member at the end.
            for &key in &inserted {
                assert!(
                    bloom_query(&mut sw, key),
                    "seed {seed}, backend {}: false negative for key {key} at end of trace",
                    backend_name(backend)
                );
            }
        }
    }
}

#[test]
fn bloom_backends_agree_on_membership() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut interp = build_bloom(Backend::Interp);
    let mut fast = build_bloom(Backend::Compiled);
    let mut native =
        (!backend_unavailable(Backend::Native)).then(|| build_bloom(Backend::Native));
    for i in 0..200 {
        let key = rng.gen_range(0..64);
        if rng.gen_bool(0.3) {
            bloom_insert(&mut interp, key);
            bloom_insert(&mut fast, key);
            if let Some(nat) = native.as_mut() {
                bloom_insert(nat, key);
            }
        } else {
            let a = bloom_query(&mut interp, key);
            let b = bloom_query(&mut fast, key);
            assert_eq!(a, b, "packet {i}: backends disagree on membership of key {key}");
            if let Some(nat) = native.as_mut() {
                let c = bloom_query(nat, key);
                assert_eq!(a, c, "packet {i}: native disagrees on membership of key {key}");
            }
        }
    }
}

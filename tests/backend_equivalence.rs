//! Differential tests: the bytecode backend against the tree-walking
//! reference interpreter.
//!
//! Programs are generated from a randomized template family that covers
//! every executable construct the concrete IR has — count-min-style
//! hash+RMW register updates, a second mergeable accumulator register,
//! random arithmetic/comparison/logical operator chains, `if`/`else`,
//! an exact-match table with installed entries and action data, and a
//! header-controlled division that can fault mid-trace. Random traces
//! then drive both backends and the results must agree exactly:
//!
//! - single-threaded: byte-identical PHVs after *every* packet and
//!   byte-identical final register state;
//! - faulting traces: identical drop counts and identical (rolled-back)
//!   register state;
//! - sharded replay (`threads ∈ {2,4,8}`): identical *merged* register
//!   state — the delta-sum merge of count-min/accumulator counters must
//!   reproduce the sequential result exactly.

use proptest::prelude::*;

use p4all_core::Compiler;
use p4all_pisa::presets;
use p4all_sim::{Backend, Phv, Switch};

/// One randomized program: pinned CMS shape, three operator choices,
/// two constants, and a set of keys pre-installed in the watch table.
#[derive(Debug, Clone)]
struct Spec {
    rows: u64,
    cols: u64,
    op1: &'static str,
    op2: &'static str,
    cmp: &'static str,
    k1: u64,
    k2: u64,
    table_keys: Vec<u64>,
}

fn source(s: &Spec) -> String {
    format!(
        r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= {rows} && rows <= {rows};
        assume cols >= {cols} && cols <= {cols};
        optimize rows * cols;
        header pkt {{ bit<32> key; bit<32> val; bit<32> d; }}
        struct metadata {{
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
            bit<32> t0; bit<32> t1; bit<32> t2;
            bit<32> q;
            bit<8> flag;
            bit<32> boost;
            bit<32> slot;
        }}
        register<bit<32>>[cols][rows] cms;
        register<bit<64>>[8] acc;

        action mark() {{ meta.flag = 1; meta.t0 = meta.t0 + meta.boost; }}
        action unmark() {{ meta.flag = 0; }}
        table watch {{
            key = {{ hdr.key; }}
            actions = {{ mark; unmark; }}
            size = 64;
            default_action = unmark;
        }}

        action incr()[int i] {{
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }}
        action set_min()[int i] {{ meta.min = meta.count[i]; }}
        action mix0() {{ meta.t0 = hdr.key {op1} {k1}; }}
        action mix1() {{ meta.t1 = meta.t0 {op2} hdr.val; }}
        action mix2() {{
            if (meta.t1 {cmp} {k2}) {{ meta.t2 = meta.t1 + meta.t0; }}
            else {{ meta.t2 = hdr.key - {k2}; }}
        }}
        action divq() {{ meta.q = hdr.val / hdr.d; }}
        action accrue() {{
            meta.slot = hash(hdr.key, 8);
            acc[meta.slot] = acc[meta.slot] + hdr.val;
        }}

        control lookup() {{ apply {{ watch.apply(); }} }}
        control sketch() {{ apply {{ for (i < rows) {{ incr()[i]; }} }} }}
        control minimum() {{
            apply {{
                for (i < rows) {{
                    if (meta.count[i] < meta.min || meta.min == 0) {{ set_min()[i]; }}
                }}
            }}
        }}
        control arith() {{ apply {{ mix0(); mix1(); mix2(); divq(); accrue(); }} }}
        control Main() {{
            apply {{ lookup.apply(); sketch.apply(); minimum.apply(); arith.apply(); }}
        }}
    "#,
        rows = s.rows,
        cols = s.cols,
        op1 = s.op1,
        op2 = s.op2,
        cmp = s.cmp,
        k1 = s.k1,
        k2 = s.k2,
    )
}

fn build(s: &Spec, backend: Backend) -> Switch {
    let src = source(s);
    let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).expect("compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    let mut sw = Switch::build(&c.concrete, &program).expect("sim builds");
    sw.set_backend(backend);
    for (i, &k) in s.table_keys.iter().enumerate() {
        sw.install_entry("watch", vec![k], "mark", &[("boost", 10 + i as u64)]).unwrap();
    }
    sw
}

fn arith_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("+"), Just("-"), Just("*"), Just("=="), Just("!="), Just("&&"), Just("||")]
}

fn cmp_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("<"), Just("<="), Just(">"), Just(">="), Just("=="), Just("!=")]
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        2u64..=3,
        prop_oneof![Just(8u64), Just(16u64), Just(32u64)],
        arith_op(),
        arith_op(),
        cmp_op(),
        0u64..1000,
        0u64..1000,
        proptest::collection::vec(0u64..24, 0..8),
    )
        .prop_map(|(rows, cols, op1, op2, cmp, k1, k2, table_keys)| Spec {
            rows,
            cols,
            op1,
            op2,
            cmp,
            k1,
            k2,
            table_keys,
        })
}

/// `(key, val, d)` triples; `d = 0` makes `divq` fault and the packet drop.
fn trace_strategy(allow_faults: bool) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    let d = if allow_faults { 0u64..4 } else { 1u64..4 };
    proptest::collection::vec((0u64..24, 0u64..1000, d), 1..120)
}

fn packets(sw: &Switch, trace: &[(u64, u64, u64)]) -> Vec<Phv> {
    trace
        .iter()
        .map(|&(k, v, d)| sw.make_packet(&[("key", k), ("val", v), ("d", d)]).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Packet-by-packet lockstep: after every packet the full PHV matches
    /// slot for slot; after the trace the register files are identical.
    #[test]
    fn compiled_matches_interp_packet_by_packet(
        s in spec(),
        trace in trace_strategy(false),
    ) {
        let mut interp = build(&s, Backend::Interp);
        let mut fast = build(&s, Backend::Compiled);
        for (i, &(k, v, d)) in trace.iter().enumerate() {
            for sw in [&mut interp, &mut fast] {
                sw.begin_packet();
                sw.set_header("key", k).unwrap();
                sw.set_header("val", v).unwrap();
                sw.set_header("d", d).unwrap();
                sw.run_packet().unwrap();
            }
            prop_assert_eq!(
                interp.phv_snapshot(),
                fast.phv_snapshot(),
                "PHV diverges at packet {} of {:?}", i, trace
            );
        }
        prop_assert_eq!(interp.registers_snapshot(), fast.registers_snapshot());
    }

    /// Faulting traces: both backends drop the same packets and leave the
    /// same (rolled-back) register state behind.
    #[test]
    fn backends_agree_on_faulting_traces(
        s in spec(),
        trace in trace_strategy(true),
    ) {
        let mut interp = build(&s, Backend::Interp);
        let mut fast = build(&s, Backend::Compiled);
        let ti = packets(&interp, &trace);
        let tf = packets(&fast, &trace);
        let si = interp.run_trace(&ti, 1);
        let sf = fast.run_trace(&tf, 1);
        let expect_drops = trace.iter().filter(|&&(_, _, d)| d == 0).count() as u64;
        prop_assert_eq!(si.dropped, expect_drops);
        prop_assert_eq!(sf.dropped, expect_drops);
        prop_assert_eq!(interp.registers_snapshot(), fast.registers_snapshot());
        // PHV content after a *faulted* packet is unspecified (the packet
        // is dropped; only register rollback is contractual — the bytecode
        // engine runs in place while the interpreter double-buffers), so
        // the working PHV is only comparable when the last packet landed.
        if trace.last().is_some_and(|&(_, _, d)| d != 0) {
            prop_assert_eq!(interp.phv_snapshot(), fast.phv_snapshot());
        }
    }

    /// Sharded replay: the delta-sum merge over 2/4/8 workers reproduces
    /// the sequential register state exactly (counter registers sum;
    /// per-flow state is shard-private by the flow-hash partitioning).
    #[test]
    fn sharded_merge_matches_sequential(
        s in spec(),
        trace in trace_strategy(true),
    ) {
        let mut seq = build(&s, Backend::Interp);
        let ts = packets(&seq, &trace);
        let seq_stats = seq.run_trace(&ts, 1);
        for threads in [2usize, 4, 8] {
            let mut par = build(&s, Backend::Compiled);
            let tp = packets(&par, &trace);
            let stats = par.run_trace(&tp, threads);
            prop_assert_eq!(stats.dropped, seq_stats.dropped);
            prop_assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "merged registers diverge at {} threads", threads
            );
        }
    }
}

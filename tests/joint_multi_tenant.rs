//! The ISSUE acceptance path end to end: three tenants — NetCache plus
//! the VLAN-filter and LPM-routing scenario apps — jointly compiled into
//! ONE pipeline, the layout verified against every tenant's assumes, and
//! the merged switch replayed identically on all three simulator
//! backends (interp, bytecode, native codegen) and under sharded replay.
//!
//! Bounds match `examples/p4all/` (the CI smoke job inputs): small
//! elastic upper bounds and a 64 Kb/stage eval target keep the joint ILP
//! solve well under a second.

use p4all_core::{verify_joint, CompileCtx, CompileOptions, JointCompilation, TenantProgram};
use p4all_elastic::apps::{lpm, netcache, vlan};
use p4all_lang::Tenant;
use p4all_pisa::presets;
use p4all_sim::{Backend, Switch};

fn tenants() -> Vec<TenantProgram> {
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 2;
    nc.kvs.max_slices = Some(3);
    let vlan_opts = vlan::VlanOptions { max_cells: Some(4096), ..Default::default() };
    let lpm_opts = lpm::LpmOptions { max_cells: Some(4096), ..Default::default() };
    vec![
        TenantProgram::new(Tenant::new("cache", 2.0).unwrap(), netcache::source(&nc)),
        TenantProgram::new(Tenant::new("filter", 1.0).unwrap(), vlan::source(&vlan_opts)),
        TenantProgram::new(Tenant::new("routes", 1.0).unwrap(), lpm::source(&lpm_opts)),
    ]
}

fn compile() -> JointCompilation {
    let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
    ctx.compile_joint(&tenants(), &presets::paper_eval(1 << 16))
        .expect("three tenants fit the 64 Kb/stage eval target")
}

#[test]
fn three_tenants_share_one_pipeline_and_verify() {
    let jc = compile();
    let target = presets::paper_eval(1 << 16);

    // One layout, verified against the merged program AND each tenant's
    // own assumes independently.
    verify_joint(&jc.joint, &jc.compilation.layout, &target)
        .expect("joint layout must satisfy every tenant's contract");

    // Per-tenant reports in merge (descending-weight) order, each with a
    // live structure and local symbol names.
    assert_eq!(jc.tenants.len(), 3);
    assert_eq!(jc.tenants[0].name, "cache");
    for t in &jc.tenants {
        let u = t.utility.unwrap_or_else(|| panic!("tenant `{}` utility evaluates", t.name));
        assert!(u > 0.0, "tenant `{}` got zero utility", t.name);
        assert!(
            t.symbol_values.keys().all(|k| !k.contains("::")),
            "tenant `{}` report must use local names: {:?}",
            t.name,
            t.symbol_values
        );
    }

    // The weighted split re-sums to the single joint ILP objective.
    let obj = jc.compilation.layout.objective;
    assert!(
        (jc.weighted_utility() - obj).abs() <= 1e-6 * obj.abs().max(1.0),
        "weighted utility {} vs objective {obj}",
        jc.weighted_utility()
    );

    // The merged layout keeps per-tenant register namespaces.
    for reg in ["cache::cms", "filter::vlan_ctr", "routes::lpm"] {
        assert!(
            jc.compilation.layout.symbol_values.keys().any(|k| k.starts_with("cache::"))
                && jc.joint.merged.register(reg).is_some(),
            "merged program must keep register `{reg}`"
        );
    }
}

#[test]
fn joint_switch_replays_identically_on_all_backends() {
    let jc = compile();
    let program = p4all_lang::parse(&jc.joint.src).expect("merged source parses");

    // Every header field of every tenant, in declaration order; values
    // are a deterministic mix masked to the field width.
    let fields: Vec<(String, u32)> = program
        .headers
        .iter()
        .flat_map(|h| h.fields.iter().cloned())
        .collect();
    assert!(fields.iter().all(|(n, _)| n.contains("::")), "header fields are namespaced");
    let value = |pkt: usize, field: usize, bits: u32| -> u64 {
        let raw = (pkt as u64).wrapping_mul(0x9e37_79b9).wrapping_add(field as u64 * 97 + 13);
        raw & ((1u64 << bits.min(48)) - 1)
    };

    let build = |backend: Backend| -> Switch {
        let mut sw = Switch::build(&jc.compilation.concrete, &program)
            .expect("merged program builds one switch");
        sw.set_backend(backend);
        sw
    };
    let mut interp = build(Backend::Interp);
    let mut fast = build(Backend::Compiled);
    let mut native = if p4all_sim::rustc_available() {
        let mut sw = build(Backend::Native);
        sw.prepare_native().expect("native codegen compiles the merged program");
        Some(sw)
    } else {
        None
    };

    const PACKETS: usize = 64;
    let step = |sw: &mut Switch, pkt: usize| {
        sw.begin_packet();
        for (i, (name, bits)) in fields.iter().enumerate() {
            sw.set_header(name, value(pkt, i, *bits)).expect("namespaced field exists");
        }
        sw.run_packet().expect("no faults in these tenants");
    };
    for pkt in 0..PACKETS {
        step(&mut interp, pkt);
        step(&mut fast, pkt);
        assert_eq!(
            interp.phv_snapshot(),
            fast.phv_snapshot(),
            "interp vs bytecode PHV at packet {pkt}"
        );
        if let Some(nat) = native.as_mut() {
            step(nat, pkt);
            assert_eq!(
                interp.phv_snapshot(),
                nat.phv_snapshot(),
                "interp vs native PHV at packet {pkt}"
            );
        }
    }
    let baseline = interp.registers_snapshot();
    assert_eq!(baseline, fast.registers_snapshot(), "interp vs bytecode registers");
    if let Some(nat) = &native {
        assert_eq!(baseline, nat.registers_snapshot(), "interp vs native registers");
    }

    // Whole-trace replay — 1 shard (interp), 4 shards (bytecode with the
    // delta-sum merge), 1 shard (native) — reproduces the lockstep state.
    let mut replays: Vec<(&str, &mut Switch, usize)> =
        vec![("interp x1", &mut interp, 1), ("bytecode x4", &mut fast, 4)];
    if let Some(nat) = native.as_mut() {
        replays.push(("native x1", nat, 1));
    }
    for (label, sw, shards) in replays {
        let pkts: Vec<_> = (0..PACKETS)
            .map(|pkt| {
                let assigns: Vec<(&str, u64)> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, (name, bits))| (name.as_str(), value(pkt, i, *bits)))
                    .collect();
                sw.make_packet(&assigns).expect("packet builds")
            })
            .collect();
        sw.reset();
        let stats = sw.run_trace(&pkts, shards);
        assert_eq!(stats.dropped, 0, "{label}: no packet faults expected");
        assert_eq!(
            sw.registers_snapshot(),
            baseline,
            "{label}: replay registers diverge from lockstep"
        );
    }
}

//! Regression lock for the (fixed) Precision warm-solve regression.
//!
//! `BENCH_ilp.json` used to show warm-started solving *hurting* exactly
//! one evaluation app: Precision closed at the root cold (0 branch-and-
//! bound nodes) but explored ~27 nodes and ~8x the LP solves with
//! `warm_lp` on — a 0.44x "speedup". The warm dive's basis-chained dual
//! simplex landed on different co-optimal vertices than the cold dive and
//! produced a worse incumbent, leaving the root gap open. The fix: the
//! root dive always runs with cold LP arithmetic (and is skipped entirely
//! when a seeded incumbent already closes the root gap), so the root
//! phase is a pure function of the model, identical under `warm_lp`
//! on/off (`run_dive` in `crates/ilp/src/branch.rs`).
//!
//! - [`warm_and_cold_agree_on_the_objective`] must stay green forever —
//!   the regression was a performance bug, never a correctness bug;
//! - [`precision_warm_solve_matches_cold_node_count`] is the fix's
//!   acceptance bar, now un-ignored: warm must branch no more than cold
//!   and use at most ~2x the LP solves (the cold re-dive's budget).

use p4all_core::{CompileCtx, CompileOptions, Compilation};
use p4all_elastic::apps::precision;
use p4all_pisa::presets;

fn solve(warm_lp: bool) -> Compilation {
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.warm_lp = warm_lp;
    let src = precision::source(&Default::default());
    CompileCtx::new(o)
        .compile(&src, &presets::paper_eval(1 << 16))
        .expect("precision compiles")
}

/// The invariant the fix must not disturb: warm and cold reach the same
/// optimum (and the same symbolic values' utility).
#[test]
fn warm_and_cold_agree_on_the_objective() {
    let cold = solve(false);
    let warm = solve(true);
    assert!(
        (cold.layout.objective - warm.layout.objective).abs() < 1e-6,
        "warm objective {} != cold objective {}",
        warm.layout.objective,
        cold.layout.objective
    );
}

/// The fix's acceptance bar: the warm path must branch no more than the
/// cold path on Precision, and its LP-solve overhead is bounded by the
/// cold re-dive (at most ~2x cold's root-phase LP count).
#[test]
fn precision_warm_solve_matches_cold_node_count() {
    let cold = solve(false);
    let warm = solve(true);
    assert!(
        warm.solve_stats.nodes <= cold.solve_stats.nodes,
        "warm Precision explored {} nodes vs cold {}",
        warm.solve_stats.nodes,
        cold.solve_stats.nodes
    );
    assert!(
        warm.solve_stats.lp_solves <= 2 * cold.solve_stats.lp_solves,
        "warm Precision used {} LP solves vs cold {}",
        warm.solve_stats.lp_solves,
        cold.solve_stats.lp_solves
    );
}

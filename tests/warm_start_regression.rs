//! Red/green target for the Precision warm-solve regression.
//!
//! `BENCH_ilp.json` shows warm-started solving *hurting* exactly one
//! evaluation app: Precision closes at the root in the cold configuration
//! (0 branch-and-bound nodes) but explores ~27 nodes and ~8x the LP
//! solves when `warm_lp` is on — a 0.44x "speedup". The warm dual-simplex
//! basis apparently steers the root LP to a vertex that branches badly.
//!
//! Three tests pin the situation down:
//!
//! - [`warm_and_cold_agree_on_the_objective`] must stay green forever —
//!   the regression is a performance bug, never a correctness bug;
//! - [`precision_warm_regression_is_still_present`] documents today's
//!   behavior. When a fix lands, this test FAILS — that is the signal to
//!   delete it and un-ignore the red target below;
//! - [`precision_warm_solve_matches_cold_node_count`] (`#[ignore]`) is
//!   the fix's acceptance bar: warm must branch no more than cold.

use p4all_core::{CompileCtx, CompileOptions, Compilation};
use p4all_elastic::apps::precision;
use p4all_pisa::presets;

fn solve(warm_lp: bool) -> Compilation {
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.warm_lp = warm_lp;
    let src = precision::source(&Default::default());
    CompileCtx::new(o)
        .compile(&src, &presets::paper_eval(1 << 16))
        .expect("precision compiles")
}

/// The invariant the fix must not disturb: warm and cold reach the same
/// optimum (and the same symbolic values' utility).
#[test]
fn warm_and_cold_agree_on_the_objective() {
    let cold = solve(false);
    let warm = solve(true);
    assert!(
        (cold.layout.objective - warm.layout.objective).abs() < 1e-6,
        "warm objective {} != cold objective {}",
        warm.layout.objective,
        cold.layout.objective
    );
}

/// Documents the regression. The cold path closes Precision at the root;
/// the warm path branches. If this test fails, the regression is FIXED:
/// delete this test and remove `#[ignore]` from
/// `precision_warm_solve_matches_cold_node_count` so the improvement is
/// locked in.
#[test]
fn precision_warm_regression_is_still_present() {
    let cold = solve(false);
    let warm = solve(true);
    assert_eq!(
        cold.solve_stats.nodes, 0,
        "baseline shifted: cold Precision no longer closes at the root \
         ({} nodes) — re-baseline BENCH_ilp.json",
        cold.solve_stats.nodes
    );
    assert!(
        warm.solve_stats.nodes > cold.solve_stats.nodes,
        "warm Precision explored {} nodes vs cold {} — the warm-solve \
         regression appears FIXED; delete this test and un-ignore \
         `precision_warm_solve_matches_cold_node_count`",
        warm.solve_stats.nodes,
        cold.solve_stats.nodes
    );
}

/// The red target: a fixed warm path must branch no more than the cold
/// path on Precision. Ignored until the fix lands.
#[test]
#[ignore = "known issue: warm-started Precision solve branches where cold closes at the root (BENCH_ilp.json speedup 0.44x)"]
fn precision_warm_solve_matches_cold_node_count() {
    let cold = solve(false);
    let warm = solve(true);
    assert!(
        warm.solve_stats.nodes <= cold.solve_stats.nodes,
        "warm Precision explored {} nodes vs cold {}",
        warm.solve_stats.nodes,
        cold.solve_stats.nodes
    );
    assert!(
        warm.solve_stats.lp_solves <= 2 * cold.solve_stats.lp_solves,
        "warm Precision used {} LP solves vs cold {}",
        warm.solve_stats.lp_solves,
        cold.solve_stats.lp_solves
    );
}

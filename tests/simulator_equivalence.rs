//! Integration + property tests: the behavioral simulator executing a
//! compiled count-min sketch agrees with the CMS contract and, in the
//! collision-free regime, with exact counting.

use proptest::prelude::*;

use p4all_core::Compiler;
use p4all_pisa::presets;
use p4all_sim::Switch;

fn cms_source(rows: u64, min_cols: u64, max_cols: u64) -> String {
    format!(
        r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= {rows} && rows <= {rows};
        assume cols >= {min_cols} && cols <= {max_cols};
        optimize rows * cols;
        header pkt {{ bit<32> key; }}
        struct metadata {{
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }}
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {{
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }}
        action set_min()[int i] {{ meta.min = meta.count[i]; }}
        control sketch() {{ apply {{ for (i < rows) {{ incr()[i]; }} }} }}
        control minimum() {{
            apply {{
                for (i < rows) {{
                    if (meta.count[i] < meta.min || meta.min == 0) {{ set_min()[i]; }}
                }}
            }}
        }}
        control Main() {{ apply {{ sketch.apply(); minimum.apply(); }} }}
    "#
    )
}

fn build_switch(rows: u64, min_cols: u64, max_cols: u64) -> Switch {
    let src = cms_source(rows, min_cols, max_cols);
    let target = presets::paper_eval(1 << 17);
    let c = Compiler::new(target).compile(&src).expect("compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    Switch::build(&c.concrete, &program).expect("sim builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CMS contract: for any packet sequence, the data-plane estimate is
    /// at least the true count (query includes the query packet itself).
    #[test]
    fn estimate_never_underestimates(
        keys in proptest::collection::vec(0u64..32, 1..200)
    ) {
        let mut sw = build_switch(2, 16, 64);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            *truth.entry(k).or_insert(0u64) += 1;
            sw.begin_packet();
            sw.set_header("key", k).unwrap();
            sw.run_packet().unwrap();
            let est = sw.meta("min").unwrap();
            prop_assert!(
                est >= truth[&k],
                "estimate {est} < true count {} for key {k}", truth[&k]
            );
        }
    }

    /// Collision-free regime: with far more columns than keys the compiled
    /// sketch counts exactly (matches a plain per-key counter).
    #[test]
    fn exact_in_collision_free_regime(
        keys in proptest::collection::vec(0u64..4, 1..100)
    ) {
        let mut sw = build_switch(3, 2048, 4096);
        let mut truth = std::collections::HashMap::new();
        let mut exact = true;
        for &k in &keys {
            *truth.entry(k).or_insert(0u64) += 1;
            sw.begin_packet();
            sw.set_header("key", k).unwrap();
            sw.run_packet().unwrap();
            if sw.meta("min").unwrap() != truth[&k] {
                exact = false;
            }
        }
        // With 4 distinct keys in 2048+ columns across 3 rows, a collision
        // in every row simultaneously is (practically) impossible.
        prop_assert!(exact, "expected exact counting with 4 keys in 2048+ columns");
    }
}

#[test]
fn register_state_survives_and_resets() {
    let mut sw = build_switch(2, 16, 64);
    for _ in 0..5 {
        sw.begin_packet();
        sw.set_header("key", 1).unwrap();
        sw.run_packet().unwrap();
    }
    assert_eq!(sw.meta("min").unwrap(), 5);
    sw.clear_register("cms");
    sw.begin_packet();
    sw.set_header("key", 1).unwrap();
    sw.run_packet().unwrap();
    assert_eq!(sw.meta("min").unwrap(), 1, "clear must reset counting");
}

//! Integration: corners of the language and compiler that the apps don't
//! exercise — constant-extent register arrays, constant-bound loops,
//! multiple independent symbolics, PHV pressure, and backward
//! compatibility.

use p4all_core::{CompileError, Compiler};
use p4all_pisa::presets;
use p4all_sim::Switch;

#[test]
fn const_extent_register_array_of_arrays() {
    // An array of register arrays with *constant* extents: plain P4,
    // placed across stages like any elastic one would be.
    let src = r#"
        header pkt { bit<32> key; }
        struct metadata { bit<32>[3] idx; bit<32> total; }
        register<bit<32>>[32][3] buckets;
        action bump()[int i] {
            meta.idx[i] = hash(hdr.key, 32);
            buckets[i][meta.idx[i]] = buckets[i][meta.idx[i]] + 1;
        }
        control Main() { apply { for (i < 3) { bump()[i]; } } }
    "#;
    let target = presets::paper_eval(1 << 14);
    let c = Compiler::new(target.clone()).compile(src).unwrap();
    // All three instances placed with exactly 32 cells each.
    let cells: Vec<u64> = c
        .layout
        .registers
        .iter()
        .filter(|r| r.reg == "buckets")
        .map(|r| r.cells)
        .collect();
    assert_eq!(cells, vec![32, 32, 32]);
    p4all_pisa::validate(&c.layout.usage, &target).unwrap();
    // And it runs.
    let program = p4all_lang::parse(src).unwrap();
    let mut sw = Switch::build(&c.concrete, &program).unwrap();
    sw.begin_packet();
    sw.set_header("key", 5).unwrap();
    sw.run_packet().unwrap();
}

#[test]
fn two_independent_elastic_structures_share_a_program() {
    let src = r#"
        symbolic int a_n;
        symbolic int b_n;
        assume a_n >= 1 && a_n <= 2;
        assume b_n >= 1 && b_n <= 2;
        optimize a_n + b_n;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[a_n] ai; bit<32>[b_n] bi; }
        register<bit<32>>[64][a_n] ra;
        register<bit<32>>[64][b_n] rb;
        action ta()[int i] {
            meta.ai[i] = hash(hdr.key, 64);
            ra[i][meta.ai[i]] = ra[i][meta.ai[i]] + 1;
        }
        action tb()[int i] {
            meta.bi[i] = hash(hdr.key, 64);
            rb[i][meta.bi[i]] = rb[i][meta.bi[i]] + 1;
        }
        control ca() { apply { for (i < a_n) { ta()[i]; } } }
        control cb() { apply { for (i < b_n) { tb()[i]; } } }
        control Main() { apply { ca.apply(); cb.apply(); } }
    "#;
    let c = Compiler::new(presets::paper_eval(1 << 14)).compile(src).unwrap();
    assert_eq!(c.layout.symbol_values["a_n"], 2);
    assert_eq!(c.layout.symbol_values["b_n"], 2);
    assert!((c.layout.objective - 4.0).abs() < 1e-6);
}

#[test]
fn phv_pressure_limits_iterations() {
    // Each iteration needs 512 bits of metadata; the elastic PHV budget
    // only fits a few chunks even though stages and ALUs would allow more.
    let src = r#"
        symbolic int n;
        assume n >= 1;
        optimize n;
        header pkt { bit<32> key; }
        struct metadata { bit<128>[n] blob_a; bit<128>[n] blob_b;
                          bit<128>[n] blob_c; bit<128>[n] blob_d; }
        register<bit<32>>[16][n] regs;
        action touch()[int i] {
            meta.blob_a[i] = hash(hdr.key, 16);
            regs[i][0] = regs[i][0] + 1;
        }
        control Main() { apply { for (i < n) { touch()[i]; } } }
    "#;
    let mut target = presets::paper_eval(1 << 14);
    target.phv_bits = 1200; // 32 (key) -> ~2 chunks of 512 bits
    target.phv_fixed_bits = 0;
    let c = Compiler::new(target).compile(src).unwrap();
    assert_eq!(
        c.layout.symbol_values["n"], 2,
        "PHV must cap iterations at 2 (1200-32 bits / 512 per chunk)"
    );
}

#[test]
fn backward_compatible_plain_p4_runs_end_to_end() {
    let src = r#"
        header pkt { bit<32> port; }
        struct metadata { bit<32> count; }
        register<bit<32>>[256] per_port;
        action tally() {
            per_port[hdr.port] = per_port[hdr.port] + 1;
            meta.count = per_port[hdr.port];
        }
        control Main() { apply { tally(); } }
    "#;
    let target = presets::small_switch();
    let c = Compiler::new(target).compile(src).unwrap();
    let program = p4all_lang::parse(src).unwrap();
    let mut sw = Switch::build(&c.concrete, &program).unwrap();
    for expect in 1..=4u64 {
        sw.begin_packet();
        sw.set_header("port", 9).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("count").unwrap(), expect);
    }
    // Different port, fresh counter.
    sw.begin_packet();
    sw.set_header("port", 10).unwrap();
    sw.run_packet().unwrap();
    assert_eq!(sw.meta("count").unwrap(), 1);
}

#[test]
fn zero_lower_bound_symbolic_can_vanish() {
    // A structure allowed to disappear (n >= 0) vanishes when the target
    // cannot host it, instead of failing the compile.
    let src = r#"
        symbolic int n;
        assume n >= 0 && n <= 4;
        optimize n;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[n] idx; bit<32> sink; }
        register<bit<32>>[1024][n] wide;
        action touch()[int i] {
            meta.idx[i] = hash(hdr.key, 1024);
            wide[i][meta.idx[i]] = wide[i][meta.idx[i]] + 1;
        }
        control Main() { apply { for (i < n) { touch()[i]; } } }
    "#;
    // 1024 cells x 32 bits = 32 Kb per instance; give the target only 8 Kb.
    let mut target = presets::paper_eval(1 << 13);
    target.stages = 2;
    match Compiler::new(target).compile(src) {
        Ok(c) => assert_eq!(c.layout.symbol_values["n"], 0, "structure should vanish"),
        Err(e) => panic!("expected n = 0, got error: {e}"),
    }
}

#[test]
fn error_messages_carry_source_locations() {
    let src = "symbolic int rows;\nassume rows >= oops;";
    match Compiler::new(presets::paper_example()).compile(src) {
        Err(CompileError::Source(e)) => {
            assert_eq!(e.span.expect("source errors carry spans").line, 2);
            assert!(e.render(src, "<test>").contains("assume rows >= oops;"));
        }
        other => panic!("expected a spanned language error, got {other:?}", other = other.err().map(|e| e.to_string())),
    }
}

//! Codegen-specific tests for the native backend (`Backend::Native`):
//! deterministic lowering, warning-free generated source, exact
//! agreement with the reference interpreter on PHV/register/fault
//! behavior, and control-plane installs reaching a live engine.
//!
//! Tests that need the in-container `rustc` skip with a logged reason
//! when it is unavailable; lowering-only tests always run.

use std::process::Command;

use p4all_core::Compiler;
use p4all_pisa::presets;
use p4all_sim::{rustc_available, Backend, Switch};

/// The backend-equivalence template family pinned to one member: CMS
/// hash+RMW updates, a mergeable accumulator, arithmetic/compare/branch
/// chains, an exact-match table with action data, and a
/// header-controlled division that can fault.
const SRC: &str = r#"
    symbolic int rows;
    symbolic int cols;
    assume rows >= 3 && rows <= 3;
    assume cols >= 32 && cols <= 32;
    optimize rows * cols;
    header pkt { bit<32> key; bit<32> val; bit<32> d; }
    struct metadata {
        bit<32>[rows] index;
        bit<32>[rows] count;
        bit<32> min;
        bit<32> t0; bit<32> t1; bit<32> t2;
        bit<32> q;
        bit<8> flag;
        bit<32> boost;
        bit<32> slot;
    }
    register<bit<32>>[cols][rows] cms;
    register<bit<64>>[8] acc;

    action mark() { meta.flag = 1; meta.t0 = meta.t0 + meta.boost; }
    action unmark() { meta.flag = 0; }
    table watch {
        key = { hdr.key; }
        actions = { mark; unmark; }
        size = 64;
        default_action = unmark;
    }

    action incr()[int i] {
        meta.index[i] = hash(hdr.key, cols);
        cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        meta.count[i] = cms[i][meta.index[i]];
    }
    action set_min()[int i] { meta.min = meta.count[i]; }
    action mix0() { meta.t0 = hdr.key + 7; }
    action mix1() { meta.t1 = meta.t0 * hdr.val; }
    action mix2() {
        if (meta.t1 < 500) { meta.t2 = meta.t1 + meta.t0; }
        else { meta.t2 = hdr.key - 500; }
    }
    action divq() { meta.q = hdr.val / hdr.d; }
    action accrue() {
        meta.slot = hash(hdr.key, 8);
        acc[meta.slot] = acc[meta.slot] + hdr.val;
    }

    control lookup() { apply { watch.apply(); } }
    control sketch() { apply { for (i < rows) { incr()[i]; } } }
    control minimum() {
        apply {
            for (i < rows) {
                if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
            }
        }
    }
    control arith() { apply { mix0(); mix1(); mix2(); divq(); accrue(); } }
    control Main() {
        apply { lookup.apply(); sketch.apply(); minimum.apply(); arith.apply(); }
    }
"#;

fn build(backend: Backend) -> Switch {
    let c = Compiler::new(presets::paper_eval(1 << 15)).compile(SRC).expect("compiles");
    let program = p4all_lang::parse(SRC).expect("parses");
    let mut sw = Switch::build(&c.concrete, &program).expect("sim builds");
    sw.set_backend(backend);
    for (i, k) in [3u64, 5, 9].into_iter().enumerate() {
        sw.install_entry("watch", vec![k], "mark", &[("boost", 10 + i as u64)]).unwrap();
    }
    sw
}

/// A deterministic mixed trace: cache-hot keys, assorted values, and a
/// few `d = 0` packets that must fault (DivByZero) and roll back.
fn trace() -> Vec<(u64, u64, u64)> {
    let mut pkts = Vec::new();
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for i in 0..400u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 24;
        let val = (x >> 8) % 1000;
        let d = if i % 17 == 0 { 0 } else { (x >> 16) % 5 + 1 };
        pkts.push((key, val, d));
    }
    pkts
}

fn step(sw: &mut Switch, (key, val, d): (u64, u64, u64)) -> Result<(), p4all_sim::SimError> {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.set_header("val", val).unwrap();
    sw.set_header("d", d).unwrap();
    sw.run_packet()
}

fn skip_no_rustc(test: &str) -> bool {
    if rustc_available() {
        return false;
    }
    eprintln!("{test}: skipping — rustc not available on PATH");
    true
}

// ------------------------------------------------------------ lowering

#[test]
fn lowering_is_deterministic_across_independent_builds() {
    let a = build(Backend::Native).native_source();
    let b = build(Backend::Native).native_source();
    assert_eq!(a, b, "two lowerings of the same program must be byte-identical");
    // And stable across repeated calls on one switch.
    let sw = build(Backend::Native);
    assert_eq!(sw.native_source(), sw.native_source());
}

#[test]
fn generated_source_compiles_warning_free() {
    if skip_no_rustc("generated_source_compiles_warning_free") {
        return;
    }
    let source = build(Backend::Native).native_source();
    let dir = std::env::temp_dir().join(format!("p4all-dwarn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("p4n_check.rs");
    let lib = dir.join("libp4n_check.so");
    std::fs::write(&src, &source).unwrap();
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-D", "warnings", "--crate-name", "p4n_check"])
        .args(["--crate-type", "cdylib", "-o"])
        .arg(&lib)
        .arg(&src)
        .output()
        .expect("rustc runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(out.status.success(), "generated source must compile under -D warnings:\n{stderr}");
}

// ------------------------------------------------------- equivalence

#[test]
fn native_matches_interp_packet_by_packet() {
    if skip_no_rustc("native_matches_interp_packet_by_packet") {
        return;
    }
    let mut interp = build(Backend::Interp);
    let mut native = build(Backend::Native);
    native.prepare_native().expect("native engine prepares");

    for (i, pkt) in trace().into_iter().enumerate() {
        let ri = step(&mut interp, pkt);
        let rn = step(&mut native, pkt);
        assert_eq!(ri, rn, "packet {i}: status/fault must agree exactly");
        if ri.is_ok() {
            assert_eq!(
                interp.phv_snapshot(),
                native.phv_snapshot(),
                "packet {i}: PHV must be byte-identical"
            );
        }
    }
    assert_eq!(
        interp.registers_snapshot(),
        native.registers_snapshot(),
        "final register state must be byte-identical (faults rolled back)"
    );
}

#[test]
fn native_faults_carry_exact_errors_and_roll_back() {
    if skip_no_rustc("native_faults_carry_exact_errors_and_roll_back") {
        return;
    }
    let mut interp = build(Backend::Interp);
    let mut native = build(Backend::Native);

    // Warm both with one clean packet so registers are non-trivial.
    step(&mut interp, (3, 10, 2)).unwrap();
    step(&mut native, (3, 10, 2)).unwrap();
    let before = native.registers_snapshot();

    // d = 0 divides by zero after the CMS increments ran: the error must
    // match the interpreter's and the increments must be rolled back.
    let ei = step(&mut interp, (5, 100, 0)).unwrap_err();
    let en = step(&mut native, (5, 100, 0)).unwrap_err();
    assert_eq!(ei, en, "fault values must be identical across backends");
    assert_eq!(
        native.registers_snapshot(),
        before,
        "a faulting packet must leave no trace in native register state"
    );
    assert_eq!(interp.registers_snapshot(), native.registers_snapshot());
}

#[test]
fn native_sees_mid_run_installs_and_removals() {
    if skip_no_rustc("native_sees_mid_run_installs_and_removals") {
        return;
    }
    let mut interp = build(Backend::Interp);
    let mut native = build(Backend::Native);
    native.prepare_native().expect("prepares");

    // New entry installed after the engine is live (the NetCache runtime
    // promotes mid-trace exactly like this).
    for sw in [&mut interp, &mut native] {
        sw.install_entry("watch", vec![7], "mark", &[("boost", 99)]).unwrap();
    }
    step(&mut interp, (7, 1, 1)).unwrap();
    step(&mut native, (7, 1, 1)).unwrap();
    assert_eq!(interp.meta("flag").unwrap(), 1);
    assert_eq!(native.meta("flag").unwrap(), 1);
    assert_eq!(native.meta("boost").unwrap(), 99);
    assert_eq!(interp.phv_snapshot(), native.phv_snapshot());

    for sw in [&mut interp, &mut native] {
        assert!(sw.remove_entry("watch", &[7]).unwrap());
    }
    step(&mut interp, (7, 1, 1)).unwrap();
    step(&mut native, (7, 1, 1)).unwrap();
    assert_eq!(native.meta("flag").unwrap(), 0, "removed entry must miss");
    assert_eq!(interp.phv_snapshot(), native.phv_snapshot());
}

#[test]
fn native_run_trace_matches_compiled_and_shards_fall_back() {
    if skip_no_rustc("native_run_trace_matches_compiled_and_shards_fall_back") {
        return;
    }
    let mut compiled = build(Backend::Compiled);
    let mut native = build(Backend::Native);
    let pkts: Vec<_> = trace()
        .into_iter()
        .map(|(k, v, d)| {
            compiled.make_packet(&[("key", k), ("val", v), ("d", d)]).unwrap()
        })
        .collect();

    let sc = compiled.run_trace(&pkts, 1);
    let sn = native.run_trace(&pkts, 1);
    assert_eq!(sc.packets, sn.packets);
    assert_eq!(sc.dropped, sn.dropped, "identical drop counts at 1 thread");
    assert_eq!(compiled.registers_snapshot(), native.registers_snapshot());

    // threads > 1 documented behavior: the sharded path always runs the
    // bytecode engine; results still match the sequential native run.
    let mut native4 = build(Backend::Native);
    let s4 = native4.run_trace(&pkts, 4);
    assert_eq!(s4.dropped, sn.dropped);
    assert_eq!(native4.registers_snapshot(), native.registers_snapshot());
}

#[test]
fn native_reset_replays_identically() {
    if skip_no_rustc("native_reset_replays_identically") {
        return;
    }
    let mut native = build(Backend::Native);
    let pkts = trace();
    for pkt in &pkts[..100] {
        let _ = step(&mut native, *pkt);
    }
    let first = native.registers_snapshot();
    native.reset();
    for pkt in &pkts[..100] {
        let _ = step(&mut native, *pkt);
    }
    assert_eq!(first, native.registers_snapshot(), "reset + replay must reproduce state");
}

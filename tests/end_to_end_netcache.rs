//! Integration: the compiled NetCache, executed in the behavioral
//! simulator, behaves like a cache — skew pays, values are served
//! correctly, capacity binds.

use p4all_core::Compiler;
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;
use p4all_sim::{NetCacheConfig, NetCacheRuntime, Switch};
use p4all_workloads::{uniform_trace, zipf_trace};

fn build(threshold: u64) -> NetCacheRuntime {
    let mut opts = NetCacheOptions::default();
    opts.cms.max_rows = 2;
    opts.kvs.max_slices = Some(3);
    let src = netcache::source(&opts);
    let target = presets::paper_eval(1 << 14);
    let c = Compiler::new(target).compile(&src).expect("netcache compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    let sw = Switch::build(&c.concrete, &program).expect("sim builds");
    let names = netcache::runtime_config(&opts);
    NetCacheRuntime::new(
        sw,
        NetCacheConfig {
            cache_table: names.cache_table,
            hit_action: names.hit_action,
            hit_flag_meta: names.hit_flag_meta,
            min_meta: names.min_meta,
            slice_meta: names.slice_meta,
            idx_meta: names.idx_meta,
            value_meta: names.value_meta,
            kv_register: names.kv_register,
            cms_register: names.cms_register,
            key_header: names.key_header,
            promote_threshold: threshold,
            epoch_packets: 20_000,
        },
    )
    .expect("runtime init")
}

#[test]
fn skewed_traffic_beats_uniform() {
    let mut hot = build(4);
    let zipf = zipf_trace(2_000, 1.1, 60_000, 1);
    for p in &zipf.packets {
        hot.process(p.key, p.value).unwrap();
    }
    let mut cold = build(4);
    let uni = uniform_trace(2_000, 60_000, 1);
    for p in &uni.packets {
        cold.process(p.key, p.value).unwrap();
    }
    let (hz, hu) = (hot.stats().hit_rate(), cold.stats().hit_rate());
    assert!(hz > 0.3, "Zipf hit rate too low: {hz}");
    assert!(hz > hu + 0.1, "skew ({hz:.3}) must clearly beat uniform ({hu:.3})");
}

#[test]
fn served_values_match_stored_values() {
    let mut rt = build(2);
    // Drive one key hot, then verify every subsequent hit returns its value.
    let key = 77u64;
    let value = 0xDEAD_BEEF_u64;
    let mut hits = 0;
    for _ in 0..50 {
        let (hit, got) = rt.process(key, value).unwrap();
        if hit {
            assert_eq!(got, value, "cache served a wrong value");
            hits += 1;
        }
    }
    assert!(hits > 0, "key never became a cache hit");
}

#[test]
fn promotions_never_exceed_capacity() {
    let mut rt = build(1); // promote aggressively
    let cap = rt.capacity() as u64;
    let trace = zipf_trace(5_000, 0.9, 40_000, 3);
    for p in &trace.packets {
        rt.process(p.key, p.value).unwrap();
    }
    assert!(rt.stats().promotions <= cap);
    assert!(rt.cached_keys() as u64 <= cap);
}

#[test]
fn bigger_cache_earns_higher_hit_rate() {
    // Compare two compiled NetCaches whose stores differ via target memory.
    let run = |mem_shift: u32| -> (f64, u64) {
        let mut opts = NetCacheOptions::default();
        opts.cms.max_rows = 2;
        opts.kvs.max_slices = Some(3);
        let src = netcache::source(&opts);
        let target = presets::paper_eval(1 << mem_shift);
        let c = Compiler::new(target).compile(&src).unwrap();
        let kv_items = c.layout.symbol_values["kv_slices"] * c.layout.symbol_values["kv_cols"];
        let program = p4all_lang::parse(&src).unwrap();
        let sw = Switch::build(&c.concrete, &program).unwrap();
        let names = netcache::runtime_config(&opts);
        let mut rt = NetCacheRuntime::new(
            sw,
            NetCacheConfig {
                cache_table: names.cache_table,
                hit_action: names.hit_action,
                hit_flag_meta: names.hit_flag_meta,
                min_meta: names.min_meta,
                slice_meta: names.slice_meta,
                idx_meta: names.idx_meta,
                value_meta: names.value_meta,
                kv_register: names.kv_register,
                cms_register: names.cms_register,
                key_header: names.key_header,
                promote_threshold: 4,
                epoch_packets: 0,
            },
        )
        .unwrap();
        let trace = zipf_trace(3_000, 1.0, 60_000, 5);
        for p in &trace.packets {
            rt.process(p.key, p.value).unwrap();
        }
        (rt.stats().hit_rate(), kv_items)
    };
    let (small_rate, small_items) = run(12);
    let (big_rate, big_items) = run(16);
    assert!(big_items > small_items, "more memory must grow the store");
    assert!(
        big_rate > small_rate,
        "bigger cache ({big_items} items, {big_rate:.3}) must beat smaller \
         ({small_items} items, {small_rate:.3})"
    );
}

//! # Batched replay differential suite
//!
//! SoA batch execution ([`Switch::set_batch_width`]) must be **bit-identical**
//! to scalar per-packet replay: same register files, same final PHV, same
//! drop count, same per-stage costs. This suite enforces that over random
//! programs and traces (proptest) for batch widths 1, 7, and 64 — widths
//! chosen so trace lengths are rarely divisible by them, exercising the
//! ragged final batch — and over faulting traces, where a batch fault must
//! roll the whole batch back and replay the chunk packet by packet.
//!
//! Programs reuse the randomized template family of `backend_equivalence.rs`
//! (CMS + mergeable accumulator + match-action table + a header-controlled
//! division fault). That family is batch-safe by construction: each register
//! is written from exactly one top-level atom, which the suite pins with an
//! explicit `batch_safe()` assertion so a future template edit can't silently
//! turn the whole file into a scalar-vs-scalar no-op.

use proptest::prelude::*;

use p4all_core::Compiler;
use p4all_pisa::presets;
use p4all_sim::{Backend, Phv, Switch};

/// One randomized program: pinned CMS shape, three operator choices,
/// two constants, and a set of keys pre-installed in the watch table.
#[derive(Debug, Clone)]
struct Spec {
    rows: u64,
    cols: u64,
    op1: &'static str,
    op2: &'static str,
    cmp: &'static str,
    k1: u64,
    k2: u64,
    table_keys: Vec<u64>,
}

fn source(s: &Spec) -> String {
    format!(
        r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= {rows} && rows <= {rows};
        assume cols >= {cols} && cols <= {cols};
        optimize rows * cols;
        header pkt {{ bit<32> key; bit<32> val; bit<32> d; }}
        struct metadata {{
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
            bit<32> t0; bit<32> t1; bit<32> t2;
            bit<32> q;
            bit<8> flag;
            bit<32> boost;
            bit<32> slot;
        }}
        register<bit<32>>[cols][rows] cms;
        register<bit<64>>[8] acc;

        action mark() {{ meta.flag = 1; meta.t0 = meta.t0 + meta.boost; }}
        action unmark() {{ meta.flag = 0; }}
        table watch {{
            key = {{ hdr.key; }}
            actions = {{ mark; unmark; }}
            size = 64;
            default_action = unmark;
        }}

        action incr()[int i] {{
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }}
        action set_min()[int i] {{ meta.min = meta.count[i]; }}
        action mix0() {{ meta.t0 = hdr.key {op1} {k1}; }}
        action mix1() {{ meta.t1 = meta.t0 {op2} hdr.val; }}
        action mix2() {{
            if (meta.t1 {cmp} {k2}) {{ meta.t2 = meta.t1 + meta.t0; }}
            else {{ meta.t2 = hdr.key - {k2}; }}
        }}
        action divq() {{ meta.q = hdr.val / hdr.d; }}
        action accrue() {{
            meta.slot = hash(hdr.key, 8);
            acc[meta.slot] = acc[meta.slot] + hdr.val;
        }}

        control lookup() {{ apply {{ watch.apply(); }} }}
        control sketch() {{ apply {{ for (i < rows) {{ incr()[i]; }} }} }}
        control minimum() {{
            apply {{
                for (i < rows) {{
                    if (meta.count[i] < meta.min || meta.min == 0) {{ set_min()[i]; }}
                }}
            }}
        }}
        control arith() {{ apply {{ mix0(); mix1(); mix2(); divq(); accrue(); }} }}
        control Main() {{
            apply {{ lookup.apply(); sketch.apply(); minimum.apply(); arith.apply(); }}
        }}
    "#,
        rows = s.rows,
        cols = s.cols,
        op1 = s.op1,
        op2 = s.op2,
        cmp = s.cmp,
        k1 = s.k1,
        k2 = s.k2,
    )
}

fn build(s: &Spec) -> Switch {
    let src = source(s);
    let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).expect("compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    let mut sw = Switch::build(&c.concrete, &program).expect("sim builds");
    sw.set_backend(Backend::Compiled);
    for (i, &k) in s.table_keys.iter().enumerate() {
        sw.install_entry("watch", vec![k], "mark", &[("boost", 10 + i as u64)]).unwrap();
    }
    sw
}

fn arith_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("+"), Just("-"), Just("*"), Just("=="), Just("!="), Just("&&"), Just("||")]
}

fn cmp_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("<"), Just("<="), Just(">"), Just(">="), Just("=="), Just("!=")]
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        2u64..=3,
        prop_oneof![Just(8u64), Just(16u64), Just(32u64)],
        arith_op(),
        arith_op(),
        cmp_op(),
        0u64..1000,
        0u64..1000,
        proptest::collection::vec(0u64..24, 0..8),
    )
        .prop_map(|(rows, cols, op1, op2, cmp, k1, k2, table_keys)| Spec {
            rows,
            cols,
            op1,
            op2,
            cmp,
            k1,
            k2,
            table_keys,
        })
}

/// `(key, val, d)` triples; `d = 0` makes `divq` fault and the packet drop.
/// Lengths land anywhere in `1..150`, so most traces are not divisible by
/// the batch widths under test (1, 7, 64) and the ragged tail batch runs.
fn trace_strategy(allow_faults: bool) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    let d = if allow_faults { 0u64..4 } else { 1u64..4 };
    proptest::collection::vec((0u64..24, 0u64..1000, d), 1..150)
}

fn packets(sw: &Switch, trace: &[(u64, u64, u64)]) -> Vec<Phv> {
    trace
        .iter()
        .map(|&(k, v, d)| sw.make_packet(&[("key", k), ("val", v), ("d", d)]).unwrap())
        .collect()
}

const WIDTHS: [usize; 3] = [1, 7, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean traces: every batch width reproduces the scalar run exactly —
    /// registers, final PHV, drop count, and per-stage costs.
    #[test]
    fn batched_replay_is_bit_identical_to_scalar(
        s in spec(),
        trace in trace_strategy(false),
    ) {
        let mut scalar = build(&s);
        prop_assert!(scalar.batch_safe(), "template family must stay batch-safe");
        let ts = packets(&scalar, &trace);
        let s_stats = scalar.run_trace(&ts, 1);
        prop_assert_eq!(s_stats.batch_width, 0);
        for width in WIDTHS {
            let mut batched = build(&s);
            batched.set_batch_width(width);
            let tb = packets(&batched, &trace);
            let b_stats = batched.run_trace(&tb, 1);
            // Width 1 is below the SoA threshold and runs the scalar path.
            let want_width = if width >= 2 { width } else { 0 };
            prop_assert_eq!(b_stats.batch_width, want_width, "width {}", width);
            prop_assert_eq!(b_stats.dropped, s_stats.dropped, "width {}", width);
            prop_assert_eq!(
                b_stats.stage_cost.clone(), s_stats.stage_cost.clone(),
                "stage cost diverges at width {}", width
            );
            prop_assert_eq!(
                batched.registers_snapshot(),
                scalar.registers_snapshot(),
                "registers diverge at width {} on {:?}", width, trace
            );
            prop_assert_eq!(
                batched.phv_snapshot(),
                scalar.phv_snapshot(),
                "final PHV diverges at width {} on {:?}", width, trace
            );
        }
    }

    /// Faulting traces: a lane fault rolls back the whole batch and replays
    /// the chunk packet by packet, so drops, rollbacks, and register state
    /// all match the per-packet run bit for bit.
    #[test]
    fn batched_replay_agrees_on_faulting_traces(
        s in spec(),
        trace in trace_strategy(true),
    ) {
        let mut scalar = build(&s);
        let ts = packets(&scalar, &trace);
        let s_stats = scalar.run_trace(&ts, 1);
        let expect_drops = trace.iter().filter(|&&(_, _, d)| d == 0).count() as u64;
        prop_assert_eq!(s_stats.dropped, expect_drops);
        for width in WIDTHS {
            let mut batched = build(&s);
            batched.set_batch_width(width);
            let tb = packets(&batched, &trace);
            let b_stats = batched.run_trace(&tb, 1);
            prop_assert_eq!(b_stats.dropped, expect_drops, "width {}", width);
            prop_assert_eq!(
                b_stats.stage_cost.clone(), s_stats.stage_cost.clone(),
                "stage cost diverges at width {}", width
            );
            prop_assert_eq!(
                batched.registers_snapshot(),
                scalar.registers_snapshot(),
                "registers diverge at width {} on {:?}", width, trace
            );
            // The working PHV after a dropped packet is unspecified; only
            // compare it when the last packet completed.
            if trace.last().is_some_and(|&(_, _, d)| d != 0) {
                prop_assert_eq!(
                    batched.phv_snapshot(),
                    scalar.phv_snapshot(),
                    "final PHV diverges at width {} on {:?}", width, trace
                );
            }
        }
    }

    /// Batched + sharded: batch width composes with multi-threaded replay;
    /// the merged register state still matches the sequential scalar run.
    #[test]
    fn batched_sharded_replay_matches_scalar(
        s in spec(),
        trace in trace_strategy(true),
    ) {
        let mut scalar = build(&s);
        let ts = packets(&scalar, &trace);
        let s_stats = scalar.run_trace(&ts, 1);
        for width in [7usize, 64] {
            let mut batched = build(&s);
            batched.set_batch_width(width);
            let tb = packets(&batched, &trace);
            let b_stats = batched.run_trace(&tb, 4);
            prop_assert_eq!(b_stats.dropped, s_stats.dropped, "width {}", width);
            prop_assert_eq!(
                batched.registers_snapshot(),
                scalar.registers_snapshot(),
                "registers diverge at width {} x 4 threads on {:?}", width, trace
            );
        }
    }
}

/// Deterministic pin: the exact widths from the acceptance criteria against
/// trace lengths chosen to never divide evenly (ragged final batch) plus
/// the exact-multiple and single-packet edges.
#[test]
fn pinned_ragged_lengths_match_scalar() {
    let s = Spec {
        rows: 3,
        cols: 16,
        op1: "+",
        op2: "*",
        cmp: "<",
        k1: 17,
        k2: 400,
        table_keys: vec![1, 5, 9],
    };
    for len in [1usize, 6, 13, 63, 64, 65, 130] {
        let trace: Vec<(u64, u64, u64)> =
            (0..len as u64).map(|i| (i % 24, i * 7 + 3, 1 + i % 3)).collect();
        let mut scalar = build(&s);
        let ts = packets(&scalar, &trace);
        let s_stats = scalar.run_trace(&ts, 1);
        for width in WIDTHS {
            let mut batched = build(&s);
            batched.set_batch_width(width);
            let tb = packets(&batched, &trace);
            let b_stats = batched.run_trace(&tb, 1);
            assert_eq!(b_stats.dropped, s_stats.dropped, "len {len} width {width}");
            assert_eq!(b_stats.stage_cost, s_stats.stage_cost, "len {len} width {width}");
            assert_eq!(
                batched.registers_snapshot(),
                scalar.registers_snapshot(),
                "len {len} width {width}"
            );
            assert_eq!(batched.phv_snapshot(), scalar.phv_snapshot(), "len {len} width {width}");
        }
    }
}

//! Integration: every benchmark application compiles on multiple targets,
//! produces layouts that pass the independent PISA validator, and stretches
//! monotonically with resources.

use p4all_core::Compiler;
use p4all_elastic::apps::{conquest, netcache, precision, sketchlearn};
use p4all_pisa::presets;

fn apps() -> Vec<(&'static str, String)> {
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 2;
    nc.kvs.max_slices = Some(3);
    vec![
        ("netcache", netcache::source(&nc)),
        (
            "sketchlearn",
            sketchlearn::source(&sketchlearn::SketchLearnOptions {
                levels: 2,
                max_rows_per_level: 2,
                min_cols: 8,
            }),
        ),
        (
            "precision",
            precision::source(&precision::PrecisionOptions { max_stages: 2, min_slots: 16 }),
        ),
        (
            "conquest",
            conquest::source(&conquest::ConquestOptions {
                min_snaps: 2,
                max_snaps: 3,
                min_cols: 8,
            }),
        ),
    ]
}

#[test]
fn all_apps_compile_and_validate_on_eval_target() {
    let target = presets::paper_eval(1 << 15);
    for (name, src) in apps() {
        let c = Compiler::new(target.clone())
            .compile(&src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        p4all_pisa::validate(&c.layout.usage, &target)
            .unwrap_or_else(|e| panic!("{name}: invalid layout: {e:?}"));
        assert!(c.layout.objective > 0.0, "{name}: zero utility layout");
    }
}

#[test]
fn all_apps_compile_on_small_switch() {
    let target = presets::small_switch();
    for (name, src) in apps() {
        let c = Compiler::new(target.clone())
            .compile(&src)
            .unwrap_or_else(|e| panic!("{name} on small switch: {e}"));
        p4all_pisa::validate(&c.layout.usage, &target)
            .unwrap_or_else(|e| panic!("{name}: invalid layout: {e:?}"));
    }
}

#[test]
fn utility_is_monotone_in_memory() {
    // Figure 12's mechanism as an invariant: more per-stage memory can
    // never decrease the achieved utility.
    for (name, src) in apps() {
        let mut last = 0.0f64;
        for shift in [13u32, 15, 17] {
            let target = presets::paper_eval(1 << shift);
            let c = Compiler::new(target)
                .compile(&src)
                .unwrap_or_else(|e| panic!("{name} at 2^{shift}: {e}"));
            assert!(
                c.layout.objective >= last - 1e-6,
                "{name}: utility shrank with memory: {} after {}",
                c.layout.objective,
                last
            );
            last = c.layout.objective;
        }
    }
}

#[test]
fn generated_p4_is_loop_free_and_concrete() {
    let target = presets::paper_eval(1 << 15);
    for (name, src) in apps() {
        let c = Compiler::new(target.clone()).compile(&src).unwrap();
        assert!(!c.p4_text.contains("for ("), "{name}: generated P4 contains a loop");
        assert!(!c.p4_text.contains("symbolic"), "{name}: generated P4 contains symbolics");
        // Stage pragmas present for every placed action.
        assert!(c.p4_text.contains("@stage("), "{name}: no stage pragmas");
    }
}

#[test]
fn compiled_layouts_are_deterministic() {
    let target = presets::paper_eval(1 << 15);
    let (_, src) = &apps()[0];
    let a = Compiler::new(target.clone()).compile(src).unwrap();
    let b = Compiler::new(target).compile(src).unwrap();
    assert_eq!(a.layout.symbol_values, b.layout.symbol_values);
    assert_eq!(a.p4_text, b.p4_text);
}

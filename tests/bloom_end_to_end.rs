//! Integration: the elastic Bloom filter module compiled and executed in
//! the simulator honours the Bloom contract — no false negatives, few
//! false positives when sized generously.

use p4all_core::Compiler;
use p4all_elastic::modules::bloom::{self, BloomParams};
use p4all_elastic::modules::compose;
use p4all_pisa::presets;
use p4all_sim::Switch;

fn build(max_hashes: u64, min_bits: u64, max_bits: u64) -> (Switch, u64) {
    let params = BloomParams {
        prefix: "bf".into(),
        key_expr: "hdr.key".into(),
        min_hashes: max_hashes, // pin
        max_hashes,
        min_bits,
        max_bits: Some(max_bits),
    };
    let mut hdr: Vec<(String, u32)> = vec![("key".into(), 32)];
    hdr.extend(bloom::header_fields(&params));
    let hdr_refs: Vec<(&str, u32)> = hdr.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let src = compose(&hdr_refs, &params.utility_term(), vec![bloom::fragment(&params)]);
    let target = presets::paper_eval(1 << 15);
    let c = Compiler::new(target)
        .compile(&src)
        .unwrap_or_else(|e| panic!("bloom compile failed: {e}\n{src}"));
    let hashes = c.layout.symbol_values["bf_hashes"];
    let program = p4all_lang::parse(&src).unwrap();
    (Switch::build(&c.concrete, &program).unwrap(), hashes)
}

fn insert(sw: &mut Switch, key: u64) {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.set_header("bf_op", 1).unwrap();
    sw.run_packet().unwrap();
}

fn query(sw: &mut Switch, key: u64) -> bool {
    sw.begin_packet();
    sw.set_header("key", key).unwrap();
    sw.set_header("bf_op", 0).unwrap();
    sw.run_packet().unwrap();
    sw.meta("bf_member").unwrap() == 1
}

#[test]
fn no_false_negatives_in_the_data_plane() {
    let (mut sw, hashes) = build(3, 512, 2048);
    assert_eq!(hashes, 3);
    for k in 0..80u64 {
        insert(&mut sw, k * 13 + 1);
    }
    for k in 0..80u64 {
        assert!(query(&mut sw, k * 13 + 1), "false negative for key {}", k * 13 + 1);
    }
}

#[test]
fn few_false_positives_when_generously_sized() {
    let (mut sw, _) = build(3, 2048, 4096);
    for k in 0..50u64 {
        insert(&mut sw, k);
    }
    let fp = (10_000..11_000u64).filter(|&k| query(&mut sw, k)).count();
    assert!(fp < 60, "false positive rate too high: {fp}/1000");
}

#[test]
fn query_before_any_insert_is_negative() {
    let (mut sw, _) = build(2, 256, 1024);
    assert!(!query(&mut sw, 42));
}

#[test]
fn mixed_insert_query_stream() {
    let (mut sw, _) = build(2, 1024, 4096);
    // Interleave: insert evens, query everything.
    for k in 0..200u64 {
        if k % 2 == 0 {
            insert(&mut sw, k);
        }
        let present = query(&mut sw, k);
        if k % 2 == 0 {
            assert!(present, "just-inserted key {k} missing");
        }
    }
}

//! Golden-trace snapshots: canned traces replayed through the flagship
//! applications, with the full per-stage register state compared against
//! committed dumps in `tests/golden/`.
//!
//! Where the differential suite (`backend_equivalence.rs`) pins the two
//! backends to *each other*, these snapshots pin the pipeline to *its own
//! history*: any change to hashing, stage placement, table dispatch,
//! promotion logic, or merge semantics shows up as a register diff here,
//! even if it is self-consistent across backends.
//!
//! Regenerate after an intentional semantic change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! and review the diff of `tests/golden/` like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use p4all_core::Compiler;
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_elastic::apps::precision::{self, PrecisionOptions};
use p4all_pisa::presets;
use p4all_sim::{rustc_available, Backend, NetCacheConfig, NetCacheRuntime, Switch};
use p4all_workloads::zipf_trace;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn update_mode() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// Render every register instance as one line:
/// `name[instance] stage=N: c0 c1 c2 ...`
fn dump_registers(sw: &Switch) -> String {
    let mut out = String::new();
    for (name, instance, stage, cells) in sw.registers_snapshot() {
        write!(out, "{name}[{instance}] stage={stage}:").unwrap();
        for c in cells {
            write!(out, " {c}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Compare (or, with `UPDATE_GOLDEN=1`, rewrite) one named snapshot.
fn check_golden(name: &str, header: &str, dump: &str) {
    let path = golden_dir().join(format!("{name}.regs"));
    let full = format!("{header}{dump}");
    if update_mode() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &full).unwrap();
        eprintln!("golden: wrote {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    assert_eq!(
        expected, full,
        "register dump for `{name}` diverged from tests/golden/{name}.regs — \
         if the semantic change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_traces` and review the diff"
    );
}

/// Read a canned `key value` trace; with `UPDATE_GOLDEN=1` (re)generate it
/// first so trace and dump always move together.
fn canned_trace(name: &str, generate: impl Fn() -> Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let path = golden_dir().join(format!("{name}.trace"));
    if update_mode() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        let trace = generate();
        let mut text = String::new();
        for &(k, v) in &trace {
            writeln!(text, "{k} {v}").unwrap();
        }
        std::fs::write(&path, text).unwrap();
        return trace;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing canned trace {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    text.lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            let k = it.next().unwrap().parse().unwrap();
            let v = it.next().unwrap().parse().unwrap();
            (k, v)
        })
        .collect()
}

/// Native-variant guard: the generated-Rust engine is checked against the
/// SAME committed goldens as the default backend — it never re-blesses
/// them. Returns true when the variant should bail out: in update mode
/// (the default-backend test owns regeneration, avoiding write races) or
/// when the in-container `rustc` is unavailable.
fn skip_native_variant(test: &str) -> bool {
    if update_mode() {
        eprintln!("{test}: skipping under UPDATE_GOLDEN — default-backend test regenerates");
        return true;
    }
    if !rustc_available() {
        eprintln!("{test}: skipping — rustc not available on PATH");
        return true;
    }
    false
}

fn netcache_golden(backend: Backend) {
    let mut opts = NetCacheOptions::paper_default();
    opts.cms.max_rows = 3;
    opts.kvs.max_slices = Some(4);
    let src = netcache::source(&opts);
    let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).expect("compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    let names = netcache::runtime_config(&opts);
    let mut switch = Switch::build(&c.concrete, &program).expect("sim builds");
    switch.set_backend(backend);
    let cfg = NetCacheConfig {
        cache_table: names.cache_table,
        hit_action: names.hit_action,
        hit_flag_meta: names.hit_flag_meta,
        min_meta: names.min_meta,
        slice_meta: names.slice_meta,
        idx_meta: names.idx_meta,
        value_meta: names.value_meta,
        kv_register: names.kv_register,
        cms_register: names.cms_register,
        key_header: names.key_header,
        promote_threshold: 4,
        epoch_packets: 50_000,
    };
    let mut rt = NetCacheRuntime::new(switch, cfg).expect("runtime init");

    let trace = canned_trace("netcache", || {
        zipf_trace(500, 1.1, 4_000, 11).packets.iter().map(|p| (p.key, p.value)).collect()
    });
    for &(k, v) in &trace {
        rt.process(k, v).expect("simulation");
    }

    let s = rt.stats();
    let header = format!(
        "# NetCache golden: {} packets, {} hits, {} promotions, {} cached keys\n",
        s.packets,
        s.hits,
        s.promotions,
        rt.cached_keys()
    );
    check_golden("netcache", &header, &dump_registers(rt.switch()));
}

/// NetCache end to end: CMS popularity tracking, control-plane promotion
/// into the cache table, value serving from the key-value register — the
/// register dump captures sketch counters *and* the promoted hot set.
#[test]
fn netcache_register_state_matches_golden() {
    netcache_golden(Backend::default());
}

/// The generated-Rust engine replays the same canned trace and must land
/// on byte-identical register state vs the committed golden.
#[test]
fn netcache_native_matches_same_golden() {
    if skip_native_variant("netcache_native_matches_same_golden") {
        return;
    }
    netcache_golden(Backend::Native);
}

fn heavy_hitter_golden(backend: Backend) {
    let opts = PrecisionOptions { max_stages: 3, min_slots: 64 };
    let src = precision::source(&opts);
    let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).expect("compiles");
    let program = p4all_lang::parse(&src).expect("parses");
    let mut sw = Switch::build(&c.concrete, &program).expect("sim builds");
    sw.set_backend(backend);

    let trace = canned_trace("heavy_hitter", || {
        // Keys offset by 1 because 0 marks an empty tracker slot.
        zipf_trace(300, 1.1, 5_000, 21).packets.iter().map(|p| (p.key + 1, 0)).collect()
    });
    let packets: Vec<_> =
        trace.iter().map(|&(k, _)| sw.make_packet(&[("key", k)]).unwrap()).collect();
    let stats = sw.run_trace(&packets, 1);
    assert_eq!(stats.dropped, 0, "tracker trace must not fault");

    let header = format!("# heavy-hitter golden: {} packets, 0 dropped\n", stats.packets);
    check_golden("heavy_hitter", &header, &dump_registers(&sw));
}

/// PRECISION-style heavy-hitter tracker replayed through `run_trace`:
/// the dump pins per-stage key/count register contents (which flows were
/// admitted into which stage) — the part of the pipeline most sensitive
/// to hash or placement drift.
#[test]
fn heavy_hitter_register_state_matches_golden() {
    heavy_hitter_golden(Backend::default());
}

/// Same trace, same golden, native engine — `run_trace` at 1 thread takes
/// the generated-code path.
#[test]
fn heavy_hitter_native_matches_same_golden() {
    if skip_native_variant("heavy_hitter_native_matches_same_golden") {
        return;
    }
    heavy_hitter_golden(Backend::Native);
}

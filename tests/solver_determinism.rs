//! Determinism of the elastic compiler: compiling the same NetCache
//! program twice at the same thread count must produce byte-identical
//! layouts and generated P4 — including with the parallel solver, whose
//! deterministic round mode makes the search a pure function of
//! (model, options, threads) rather than of thread scheduling.

use p4all_core::{CompileOptions, Compilation, Compiler};
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;

fn compile_netcache(threads: usize) -> Compilation {
    let mut opts = NetCacheOptions::default();
    opts.cms.max_rows = 2;
    opts.kvs.max_slices = Some(3);
    let src = netcache::source(&opts);
    let target = presets::paper_eval(1 << 14);
    Compiler::with_options(target, CompileOptions::default().with_threads(threads))
        .compile(&src)
        .expect("netcache compiles")
}

fn assert_identical(a: &Compilation, b: &Compilation, what: &str) {
    assert_eq!(
        a.layout.symbol_values, b.layout.symbol_values,
        "{what}: symbolic values differ between runs"
    );
    assert_eq!(
        a.layout.render(),
        b.layout.render(),
        "{what}: rendered layouts differ between runs"
    );
    assert_eq!(a.p4_text, b.p4_text, "{what}: generated P4 differs between runs");
    assert_eq!(
        a.solve_stats.nodes, b.solve_stats.nodes,
        "{what}: deterministic mode must explore identical trees"
    );
    assert_eq!(a.solve_stats.lp_solves, b.solve_stats.lp_solves, "{what}: LP counts differ");
}

#[test]
fn netcache_layout_is_deterministic_sequential() {
    let a = compile_netcache(1);
    let b = compile_netcache(1);
    assert_identical(&a, &b, "threads=1");
    assert_eq!(a.solve_stats.telemetry.threads, 1);
}

#[test]
fn netcache_layout_is_deterministic_parallel() {
    let a = compile_netcache(2);
    let b = compile_netcache(2);
    assert_identical(&a, &b, "threads=2");
    assert_eq!(a.solve_stats.telemetry.threads, 2);
    assert!(a.solve_stats.telemetry.deterministic);
}

#[test]
fn netcache_parallel_objective_matches_sequential() {
    // Thread counts may explore different trees, but the optimum — and
    // with deterministic tie-breaking, the layout itself — must agree.
    let seq = compile_netcache(1);
    let par = compile_netcache(2);
    assert!(
        (seq.layout.objective - par.layout.objective).abs() < 1e-6,
        "objective diverged: {} (1t) vs {} (2t)",
        seq.layout.objective,
        par.layout.objective
    );
}

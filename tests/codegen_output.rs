//! Integration: shape of the generated P4 text and the structured
//! concrete program.

use p4all_core::Compiler;
use p4all_pisa::presets;

const CMS: &str = r#"
    symbolic int rows;
    symbolic int cols;
    assume rows >= 2 && rows <= 2;
    assume cols >= 8 && cols <= 8;
    optimize rows * cols;
    header pkt { bit<32> key; }
    struct metadata {
        bit<32>[rows] index;
        bit<32>[rows] count;
        bit<32> min;
    }
    register<bit<32>>[cols][rows] cms;
    action incr()[int i] {
        meta.index[i] = hash(hdr.key, cols);
        cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        meta.count[i] = cms[i][meta.index[i]];
    }
    action set_min()[int i] { meta.min = meta.count[i]; }
    control sketch() { apply { for (i < rows) { incr()[i]; } } }
    control minimum() {
        apply {
            for (i < rows) {
                if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
            }
        }
    }
    control Main() { apply { sketch.apply(); minimum.apply(); } }
"#;

#[test]
fn generated_p4_contains_every_expected_artifact() {
    let c = Compiler::new(presets::paper_eval(1 << 14)).compile(CMS).unwrap();
    let p4 = &c.p4_text;

    // Registers: both instances, concrete sizes, stage pragmas.
    assert!(p4.contains("register<bit<32>>(8) cms_0;"), "{p4}");
    assert!(p4.contains("register<bit<32>>(8) cms_1;"), "{p4}");
    // Metadata arrays expanded to scalars.
    assert!(p4.contains("bit<32> index_0;"));
    assert!(p4.contains("bit<32> index_1;"));
    assert!(p4.contains("bit<32> min;"));
    // Hash calls resolved to the concrete range.
    assert!(p4.contains("HashAlgorithm.crc32, 8"), "{p4}");
    // Guards materialized.
    assert!(p4.contains("if (meta.count[0] < meta.min || meta.min == 0)"), "{p4}");
    // Stage pragmas and labels.
    assert!(p4.contains("@stage(0)"));
    assert!(p4.contains("// incr[0]"));
    assert!(p4.contains("// set_min[1]"));
}

#[test]
fn concrete_program_structure() {
    let c = Compiler::new(presets::paper_eval(1 << 14)).compile(CMS).unwrap();
    let cp = &c.concrete;
    assert_eq!(cp.num_actions(), 4);
    assert_eq!(cp.registers.len(), 2);
    let r0 = cp.register("cms", 0).unwrap();
    assert_eq!(r0.cells, 8);
    assert_eq!(r0.elem_bits, 32);
    // Metadata array count resolved to the live iteration count.
    let index_field = cp.metadata.iter().find(|m| m.name == "index").unwrap();
    assert_eq!(index_field.count, Some(2));
    // Stage ordering: every incr strictly before its set_min.
    let stage_of = |label: &str| -> usize {
        cp.stages
            .iter()
            .enumerate()
            .find_map(|(s, acts)| acts.iter().find(|a| a.label == label).map(|_| s))
            .unwrap_or_else(|| panic!("{label} not placed"))
    };
    assert!(stage_of("incr[0]") < stage_of("set_min[0]"));
    assert!(stage_of("incr[1]") < stage_of("set_min[1]"));
    assert_ne!(stage_of("set_min[0]"), stage_of("set_min[1]"));
}

#[test]
fn loc_of_generated_exceeds_elastic_source() {
    let c = Compiler::new(presets::paper_eval(1 << 14)).compile(CMS).unwrap();
    // Unrolling repeats actions; the concrete text must mention both
    // iterations of each action body.
    assert_eq!(c.p4_text.matches("HashAlgorithm").count(), 2);
    assert_eq!(c.p4_text.matches("// set_min").count(), 2);
}

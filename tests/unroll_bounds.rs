//! Integration: unroll upper-bound behaviour on richer programs than the
//! unit tests cover — nested elastic loops and multi-loop symbolics.

use p4all_core::bounds::{all_upper_bounds, DEFAULT_MAX_UNROLL};
use p4all_core::elaborate::elaborate;
use p4all_pisa::presets;

#[test]
fn nested_loops_bound_conservatively() {
    // outer x inner grid of register touches; bounding one loop holds the
    // other at a single iteration (§4.2's conservative rule).
    let src = r#"
        symbolic int outer;
        symbolic int inner;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[outer] oidx; bit<32>[inner] iidx; bit<32> acc; }
        register<bit<32>>[16][outer] big;
        register<bit<32>>[16][inner] small;
        action touch_outer()[int i] {
            meta.oidx[i] = hash(hdr.key, 16);
            big[i][meta.oidx[i]] = big[i][meta.oidx[i]] + 1;
        }
        action fold()[int j] {
            meta.acc = meta.acc + small[j][0];
        }
        control Main() {
            apply {
                for (i < outer) {
                    touch_outer()[i];
                    for (j < inner) { fold()[j]; }
                }
            }
        }
    "#;
    let program = std::sync::Arc::new(p4all_lang::parse(src).unwrap());
    let info = elaborate(&program).unwrap();
    let target = presets::paper_example(); // S = 3, (F+L)*S = 12
    let bounds = all_upper_bounds(&info, &target, DEFAULT_MAX_UNROLL).unwrap();
    // fold accumulates into meta.acc: same-action iterations commute ->
    // exclusion chain -> path grows with inner; on 3 stages inner <= 3.
    assert!(bounds["inner"] <= 3, "inner bound too large: {}", bounds["inner"]);
    // touch_outer iterations are independent; the ALU criterion stops them:
    // each costs 2 ALUs + one inner fold per unroll probe.
    assert!(bounds["outer"] >= 1);
    assert!(bounds["outer"] <= 6, "outer bound too large: {}", bounds["outer"]);
}

#[test]
fn one_symbolic_bounding_two_loops_uses_both() {
    // The same symbolic bounds two loops whose bodies together form a
    // chain: incr (loop 1) feeds a guarded reduce (loop 2), like the CMS.
    let src = r#"
        symbolic int n;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[n] v; bit<32> best; }
        register<bit<32>>[8][n] store;
        action put()[int i] {
            meta.v[i] = hash(hdr.key, 8);
            store[i][meta.v[i]] = store[i][meta.v[i]] + 1;
        }
        action keep()[int i] { meta.best = meta.v[i]; }
        control fill() { apply { for (i < n) { put()[i]; } } }
        control reduce() {
            apply { for (i < n) { if (meta.v[i] < meta.best) { keep()[i]; } } }
        }
        control Main() { apply { fill.apply(); reduce.apply(); } }
    "#;
    let program = std::sync::Arc::new(p4all_lang::parse(src).unwrap());
    let info = elaborate(&program).unwrap();
    // Figure 9 geometry: put_i -> keep_i plus keep-keep exclusions; on S
    // stages the chain caps n at S - 1.
    for stages in [3usize, 5, 8] {
        let mut target = presets::paper_eval(1 << 14);
        target.stages = stages;
        let bounds = all_upper_bounds(&info, &target, DEFAULT_MAX_UNROLL).unwrap();
        assert_eq!(
            bounds["n"],
            stages - 1,
            "bound at S={stages} should be S-1, got {}",
            bounds["n"]
        );
    }
}

#[test]
fn compiled_iterations_never_exceed_upper_bound() {
    let src = r#"
        symbolic int n;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[n] v; bit<32> best; }
        register<bit<32>>[8][n] store;
        action put()[int i] {
            meta.v[i] = hash(hdr.key, 8);
            store[i][meta.v[i]] = store[i][meta.v[i]] + 1;
        }
        action keep()[int i] { meta.best = meta.v[i]; }
        control fill() { apply { for (i < n) { put()[i]; } } }
        control reduce() {
            apply { for (i < n) { if (meta.v[i] < meta.best) { keep()[i]; } } }
        }
        control Main() { apply { fill.apply(); reduce.apply(); } }
    "#;
    let target = presets::paper_eval(1 << 14);
    let c = p4all_core::Compiler::new(target).compile(src).unwrap();
    let n = c.layout.symbol_values["n"] as usize;
    assert!(n <= c.upper_bounds["n"], "{n} > bound {}", c.upper_bounds["n"]);
    assert!(n >= 1);
}

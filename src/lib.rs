//! Root package of the P4All reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The substance lives in the member crates:
//!
//! - [`p4all_lang`] — the elastic P4 dialect frontend;
//! - [`p4all_core`] — the elastic compiler (dependency analysis, unroll
//!   bounds, ILP generation, code generation);
//! - [`p4all_ilp`] — the exact MILP solver backing the compiler;
//! - [`p4all_pisa`] — the PISA target model and layout validator;
//! - [`p4all_sim`] — the behavioral pipeline simulator;
//! - [`p4all_elastic`] — reusable elastic modules and the benchmark apps;
//! - [`p4all_workloads`] — synthetic traffic generation.

pub use p4all_core;
pub use p4all_elastic;
pub use p4all_ilp;
pub use p4all_lang;
pub use p4all_pisa;
pub use p4all_sim;
pub use p4all_workloads;

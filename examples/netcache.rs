//! End-to-end NetCache: compile the elastic program, run it in the
//! behavioral simulator against skewed and uniform workloads, and report
//! cache hit rates (the experiment behind Figure 4).
//!
//! ```sh
//! cargo run --example netcache --release
//! ```

use p4all_core::Compiler;
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;
use p4all_sim::{NetCacheConfig, NetCacheRuntime, Switch};
use p4all_workloads::{uniform_trace, zipf_trace, Trace};

fn build(opts: &NetCacheOptions) -> (NetCacheRuntime, u64, u64) {
    let target = presets::paper_eval(1 << 15);
    let src = netcache::source(opts);
    let c = Compiler::new(target).compile(&src).expect("NetCache compiles");
    let program = p4all_lang::parse(&src).expect("source parses");
    let names = netcache::runtime_config(opts);
    let switch = Switch::build(&c.concrete, &program).expect("simulator builds");
    let cfg = NetCacheConfig {
        cache_table: names.cache_table,
        hit_action: names.hit_action,
        hit_flag_meta: names.hit_flag_meta,
        min_meta: names.min_meta,
        slice_meta: names.slice_meta,
        idx_meta: names.idx_meta,
        value_meta: names.value_meta,
        kv_register: names.kv_register,
        cms_register: names.cms_register,
        key_header: names.key_header,
        promote_threshold: 4,
        epoch_packets: 50_000,
    };
    let rt = NetCacheRuntime::new(switch, cfg).expect("runtime init");
    let cms = c.layout.symbol_values["cms_rows"] * c.layout.symbol_values["cms_cols"];
    let kv = c.layout.symbol_values["kv_slices"] * c.layout.symbol_values["kv_cols"];
    (rt, cms, kv)
}

fn run(rt: &mut NetCacheRuntime, trace: &Trace) -> f64 {
    for p in &trace.packets {
        rt.process(p.key, p.value).expect("simulation");
    }
    rt.stats().hit_rate()
}

fn main() {
    let mut opts = NetCacheOptions::paper_default();
    opts.cms.max_rows = 3;
    opts.kvs.max_slices = Some(4);

    println!("compiling NetCache with utility: {}", opts.utility());
    let (mut rt, cms, kv) = build(&opts);
    println!("layout: {cms} CMS counters, {kv} key-value slots\n");

    let zipf = zipf_trace(10_000, 0.99, 200_000, 7);
    let hit_zipf = run(&mut rt, &zipf);
    let s = rt.stats();
    println!(
        "Zipf(0.99) over 10k keys, 200k requests: hit rate {:.1}% ({} promotions, {} cached)",
        100.0 * hit_zipf,
        s.promotions,
        rt.cached_keys()
    );

    let (mut rt2, _, _) = build(&opts);
    let uni = uniform_trace(10_000, 200_000, 7);
    let hit_uni = run(&mut rt2, &uni);
    println!("uniform over 10k keys, 200k requests: hit rate {:.1}%", 100.0 * hit_uni);

    println!(
        "\ncaching pays off under skew: {:.1}% vs {:.1}% — the elastic store sized itself \
         to the hot set without any manual tuning.",
        100.0 * hit_zipf,
        100.0 * hit_uni
    );
}

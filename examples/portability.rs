//! Portability: one elastic program, three targets.
//!
//! The same P4All source compiles onto a small edge switch, the paper's
//! evaluation target, and a Tofino-like production profile — stretching to
//! a different size on each, with zero source changes. This is the paper's
//! portability claim (§8) made concrete.
//!
//! ```sh
//! cargo run --example portability --release
//! ```

use p4all_core::Compiler;
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;

fn main() {
    let mut opts = NetCacheOptions::paper_default();
    opts.cms.max_rows = 3;
    opts.kvs.max_slices = Some(4);
    let src = netcache::source(&opts);

    println!("{:<22} {:>5} {:>12} {:>9} {:>9} {:>12}", "target", "S", "M/stage", "cms", "kv_items", "compile_s");
    for target in [
        presets::small_switch(),
        presets::paper_eval(1 << 16),
        presets::tofino_like(),
    ] {
        match Compiler::new(target.clone()).compile(&src) {
            Ok(c) => {
                let cms = format!(
                    "{}x{}",
                    c.layout.symbol_values["cms_rows"], c.layout.symbol_values["cms_cols"]
                );
                let kv =
                    c.layout.symbol_values["kv_slices"] * c.layout.symbol_values["kv_cols"];
                println!(
                    "{:<22} {:>5} {:>12} {:>9} {:>9} {:>12.3}",
                    target.name,
                    target.stages,
                    target.memory_bits,
                    cms,
                    kv,
                    c.timings.total.as_secs_f64()
                );
            }
            Err(e) => println!("{:<22} failed: {e}", target.name),
        }
    }
    println!("\nsame source, three layouts — elasticity is what makes the module portable.");
}

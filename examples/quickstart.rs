//! Quickstart: compile the paper's elastic count-min sketch and inspect
//! what the compiler decided.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use p4all_core::Compiler;
use p4all_pisa::presets;

const CMS: &str = r#"
    symbolic int rows;
    symbolic int cols;
    assume rows >= 1 && rows <= 4;
    assume cols >= 16;
    optimize rows * cols;

    header pkt { bit<32> key; }

    struct metadata {
        bit<32>[rows] index;
        bit<32>[rows] count;
        bit<32> min;
    }

    register<bit<32>>[cols][rows] cms;

    action incr()[int i] {
        meta.index[i] = hash(hdr.key, cols);
        cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        meta.count[i] = cms[i][meta.index[i]];
    }
    action set_min()[int i] { meta.min = meta.count[i]; }

    control sketch() { apply { for (i < rows) { incr()[i]; } } }
    control minimum() {
        apply {
            for (i < rows) {
                if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
            }
        }
    }
    control Main() { apply { sketch.apply(); minimum.apply(); } }
"#;

fn main() {
    // The §4 worked-example target: 3 stages, 2048 bits per stage, 2+2 ALUs.
    let target = presets::paper_example();
    println!("target: {target}\n");

    let compilation = Compiler::new(target).compile(CMS).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });

    println!("== unroll upper bounds (§4.2) ==");
    for (sym, k) in &compilation.upper_bounds {
        println!("  {sym} <= {k}");
    }
    println!("\n== chosen layout ==");
    print!("{}", compilation.layout.render());
    println!(
        "\nILP: {} | solved in {:.3}s ({} B&B nodes, {} LP solves)",
        compilation.ilp_stats,
        compilation.timings.solve.as_secs_f64(),
        compilation.solve_stats.nodes,
        compilation.solve_stats.lp_solves
    );
    println!("\n== generated P4 ==\n{}", compilation.p4_text);
}

//! Heavy-hitter monitoring with the elastic PRECISION-style tracker:
//! compile, simulate a skewed flow trace, and score the reported heavy
//! hitters against ground truth.
//!
//! ```sh
//! cargo run --example heavy_hitter --release
//! ```

use p4all_core::Compiler;
use p4all_elastic::apps::precision::{self, PrecisionOptions};
use p4all_pisa::presets;
use p4all_sim::Switch;
use p4all_workloads::{precision_recall, top_k, zipf_trace};

fn main() {
    let opts = PrecisionOptions { max_stages: 3, min_slots: 64 };
    let src = precision::source(&opts);
    let target = presets::paper_eval(1 << 15);
    let c = Compiler::new(target).compile(&src).expect("compiles");
    let stages = c.layout.symbol_values["prec_stages"];
    let slots = c.layout.symbol_values["prec_slots"];
    println!("tracker stretched to {stages} stages x {slots} slots\n");

    let program = p4all_lang::parse(&src).expect("parses");
    let mut sw = Switch::build(&c.concrete, &program).expect("sim builds");

    // Skewed flow trace; keys are offset by 1 because 0 marks empty slots.
    // Batched replay through the bytecode backend: build the input PHVs
    // once, then push the whole trace through the pipeline.
    let trace = zipf_trace(5_000, 1.1, 100_000, 21);
    let packets: Vec<_> = trace
        .packets
        .iter()
        .map(|p| sw.make_packet(&[("key", p.key + 1)]).unwrap())
        .collect();
    let stats = sw.run_trace(&packets, 1);
    assert_eq!(stats.dropped, 0);
    println!(
        "replayed {} packets at {:.0} pkts/sec ({:?} backend)",
        stats.packets,
        stats.pkts_per_sec(),
        sw.backend()
    );

    // Report: all tracked keys with counts, from the key/count registers.
    let mut reported: Vec<(u64, u64)> = Vec::new();
    for inst in 0..sw.register_instances("prec_keys") {
        let cells = sw.register_cells("prec_keys", inst).unwrap();
        for cell in 0..cells {
            let key = sw.read_register("prec_keys", inst, cell).unwrap();
            if key != 0 {
                let count = sw.read_register("prec_counts", inst, cell).unwrap();
                reported.push((key - 1, count));
            }
        }
    }
    reported.sort_by_key(|&(_, count)| std::cmp::Reverse(count));

    let k = 20;
    let truth = top_k(&trace, k);
    let truth_keys: Vec<u64> = truth.iter().map(|&(key, _)| key).collect();
    let reported_topk: Vec<u64> = reported.iter().take(k).map(|&(key, _)| key).collect();
    let (p, r) = precision_recall(&reported_topk, &truth_keys);

    println!("top-{k} heavy hitters:  precision {:.2}  recall {:.2}", p, r);
    println!("\n   key   reported   true");
    let true_counts = trace.true_counts();
    for &(key, cnt) in reported.iter().take(10) {
        println!("{key:>6}  {cnt:>9}  {:>5}", true_counts.get(&key).copied().unwrap_or(0));
    }
}

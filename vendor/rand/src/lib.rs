//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no route to crates.io, so the workspace vendors
//! the exact slice of `rand` it consumes: a seedable [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] extension trait with
//! `gen` and `gen_range`, and [`SeedableRng::seed_from_u64`]. Statistical
//! quality matches the upstream generator family (xoshiro256++ is the
//! rand_xoshiro reference algorithm); streams are NOT bit-compatible with
//! upstream `StdRng` (ChaCha12), which no test in this workspace relies on
//! — only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can be sampled from raw 64-bit words ("standard"
/// distribution in upstream terms: full range for integers, `[0, 1)` for
/// floats, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi]` (inclusive). Requires `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Unbiased via rejection (Lemire-style threshold).
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((lo as $wide).wrapping_add((v % span) as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}
sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + OneStep> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::down(self.end))
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// One-step decrement used to close half-open integer ranges.
pub trait OneStep: Copy {
    fn down(self) -> Self;
}

macro_rules! one_step {
    ($($t:ty),*) => {$(impl OneStep for $t { fn down(self) -> Self { self - 1 } })*};
}
one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl OneStep for f64 {
    fn down(self) -> Self {
        self // [lo, hi) for floats is served by the scaled draw directly
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (mirrors `rand::SeedableRng` for the one entry
/// point the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state expanded from the `u64` seed with SplitMix64 (the reference
    /// seeding procedure from the xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // The all-zero state is a fixed point; SplitMix64 cannot emit
            // four zero words in a row, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..=17);
            assert!((3..=17).contains(&v));
            let w = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0u64..97);
            assert!(u < 97);
        }
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}

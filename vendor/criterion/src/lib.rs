//! # criterion (offline shim)
//!
//! Drop-in subset of the criterion 0.5 API, vendored because this build
//! environment has no route to crates.io. It keeps the workspace's bench
//! targets compiling and producing useful wall-clock numbers:
//! warm-up, a fixed number of timed samples, and a `median (min … max)`
//! report per benchmark, with optional element/byte throughput.
//!
//! It does not do statistical outlier analysis, HTML reports, or
//! baseline comparison — numbers print to stdout and that is all.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (mirrors upstream).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the bench closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times of the collected samples.
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not recorded): one run to populate caches and lazily
        // initialized state.
        std::hint::black_box(f());
        self.times.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

fn render_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{id:<40} <no samples>");
        return;
    }
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  [{per_sec:.0} {unit}/s]")
        })
        .unwrap_or_default();
    println!(
        "{id:<40} {} ({} … {}){rate}",
        render_duration(median),
        render_duration(min),
        render_duration(max)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_id()), &b.times, self.throughput);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into_id()), &b.times, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// The bench context handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, throughput: None, _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.default_sample_size, times: Vec::new() };
        f(&mut b);
        report(id, &b.times, None);
        self
    }
}

/// Bundle bench functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and test filters); this shim
            // runs everything and ignores filters.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3).throughput(Throughput::Elements(1));
            g.bench_function("id", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(ran >= 3, "bench closure must run warmup + samples, ran {ran}");
    }
}

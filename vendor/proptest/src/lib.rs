//! # proptest (offline shim)
//!
//! Drop-in subset of the proptest 1.x API, vendored because this build
//! environment has no route to crates.io. Covers what the workspace's
//! property tests use: the strategy algebra (ranges, `Just`, tuples,
//! `prop_map` / `prop_flat_map` / `prop_recursive`, `prop_oneof!`,
//! `collection::vec`, `any`), the `proptest!` test macro, the
//! `prop_assert*` family, `ProptestConfig::with_cases`, and deterministic
//! replay of `*.proptest-regressions` seed files.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated inputs as-is.
//! - **Deterministic by default.** Case seeds derive from the test name,
//!   so failures reproduce across runs and machines; set `PROPTEST_SEED`
//!   to explore a different stream.
//! - Regression files are replayed by hashing each stored `cc` token into
//!   a seed for this generator (upstream's raw ChaCha seeds cannot map to
//!   the same inputs here).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec` only — all the workspace needs).

    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector whose length is drawn from `size`
    /// (a `usize`, `Range`, or `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted/unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Non-fatal assertion: fails the current case with a message instead of
/// panicking, letting the runner attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n  right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l != r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_proptest(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    file!(),
                    |__rng: &mut $crate::test_runner::TestRng, __inputs: &mut Vec<String>|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError>
                    {
                        $(
                            let $pat = {
                                let __v =
                                    $crate::strategy::Strategy::new_value(&($strat), __rng);
                                __inputs.push(format!(
                                    "{} = {:?}", stringify!($pat), &__v
                                ));
                                __v
                            };
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..=9, y in -4i8..4) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn combinators_compose(
            v in (1usize..=3).prop_flat_map(|n| crate::collection::vec(
                prop_oneof![Just(0u8), Just(1u8), (2u8..=9).prop_map(|x| x)],
                n,
            ))
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&e| e <= 9));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 8, "leaf payload outside its strategy range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..8).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
            if matches!(t, Tree::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never taken");
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 5..=5);
        let a = strat.new_value(&mut crate::test_runner::TestRng::from_seed(3));
        let b = strat.new_value(&mut crate::test_runner::TestRng::from_seed(3));
        assert_eq!(a, b);
    }
}

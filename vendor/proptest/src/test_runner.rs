//! The case runner behind the `proptest!` macro: deterministic per-test
//! RNG, case loop, failure reporting with the generated inputs, and
//! best-effort replay of `*.proptest-regressions` seed files.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error type produced by `prop_assert!` family macros.
pub type TestCaseError = String;

/// Per-`proptest!` block configuration (subset of upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies. Wraps the vendored [`StdRng`]; a newtype so
/// strategy code does not depend on which generator backs it.
pub struct TestRng {
    pub rng: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

/// FNV-1a, used to derive stable seeds from test names and stored
/// regression lines.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locate `<file stem>.proptest-regressions` next to the test source.
/// `file!()` paths are relative to the workspace root while tests run
/// from the crate root, so walk up a few directories before giving up.
fn regression_file(source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    let mut base = std::env::current_dir().ok()?;
    for _ in 0..4 {
        let candidate = base.join(&rel);
        if candidate.is_file() {
            return Some(candidate);
        }
        // Also try just the file name in case the test runs from the
        // directory that holds the sources.
        if let Some(name) = rel.file_name() {
            let flat = base.join("tests").join(name);
            if flat.is_file() {
                return Some(flat);
            }
        }
        base = base.parent()?.to_path_buf();
    }
    None
}

/// Parse `cc <hex...>` lines into replay seeds.
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let Some(path) = regression_file(source_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            l.strip_prefix("cc ").map(|rest| {
                let token = rest.split_whitespace().next().unwrap_or("");
                fnv1a(token.as_bytes())
            })
        })
        .collect()
}

/// Run one property: stored regression seeds first, then `config.cases`
/// fresh cases from a seed derived deterministically from the test name
/// (override with `PROPTEST_SEED` for exploration).
///
/// The case closure returns `Err(message)` for `prop_assert!` failures and
/// is expected to push a rendering of its generated inputs into the
/// provided vector so failures can be reported without shrinking.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, source_file: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
{
    let fail = |kind: &str, case_no: String, inputs: &[String], msg: &str| -> ! {
        panic!(
            "proptest {kind} for `{test_name}` (case {case_no})\n  inputs:\n    {}\n  {msg}",
            if inputs.is_empty() { "<none generated>".to_string() } else { inputs.join("\n    ") }
        )
    };

    let mut run_one = |seed: u64, kind: &str, case_no: String| {
        let mut rng = TestRng::from_seed(seed);
        let mut inputs = Vec::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng, &mut inputs)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => fail(kind, case_no, &inputs, &msg),
            Err(payload) => {
                // The body panicked (e.g. an `unwrap`): surface the inputs
                // that triggered it, then let the panic propagate.
                eprintln!(
                    "proptest `{test_name}` panicked (case {case_no}, seed {seed})\n  inputs:\n    {}",
                    if inputs.is_empty() {
                        "<none generated>".to_string()
                    } else {
                        inputs.join("\n    ")
                    }
                );
                std::panic::resume_unwind(payload);
            }
        }
    };

    for (i, seed) in regression_seeds(source_file).into_iter().enumerate() {
        run_one(seed, "regression replay failed", format!("regression #{i}"));
    }

    let base_seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => fnv1a(test_name.as_bytes()),
    };
    for case_no in 0..config.cases {
        run_one(
            base_seed.wrapping_add(case_no as u64),
            "case failed",
            format!("{case_no}/{}", config.cases),
        );
    }
}

//! Value-generation strategies: the subset of proptest's `Strategy`
//! algebra the workspace uses (ranges, `Just`, tuples, map/flat-map,
//! unions, bounded recursion, boxing).
//!
//! Shrinking is intentionally not implemented — on failure the runner
//! reports the raw generated input instead of a minimized one.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for producing random values of one type.
pub trait Strategy {
    type Value: Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then a strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive values: `recurse` receives the strategy for the
    /// previous depth level and wraps it one level deeper; generation
    /// mixes leaves back in at every level so depth stays bounded by
    /// `depth` applications.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // One part leaves to two parts recursion keeps expected size
            // modest while still exercising full depth regularly.
            cur = Union::with_weights(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        cur
    }

    /// Type-erase (cheaply clonable via `Rc`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view over [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy; clones share the underlying recipe.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        Union::with_weights(choices.into_iter().map(|c| (1, c)).collect())
    }

    pub fn with_weights(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! of zero strategies");
        let total = choices.iter().map(|(w, _)| *w).sum();
        Union { choices, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, s) in &self.choices {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ------------------------------------------------------------- ranges

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full value space of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

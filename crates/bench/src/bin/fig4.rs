//! Figure 4 — NetCache quality (cache hit rate) across resource
//! combinations of the count-min sketch and the key-value store.
//!
//! For each pinned CMS shape `(rows, cols)` the key-value store stretches
//! to fill whatever the ILP can still place (`optimize kv_items`); the
//! compiled program then serves a Zipf key-request trace end to end in the
//! behavioral simulator, measuring the cache hit rate. The final row
//! reports the configuration the ILP itself picks under the paper's
//! utility `0.4*(rows*cols) + 0.6*kv_items` — Figure 4's starred optimum.

use p4all_bench::{bench_netcache_options, build_netcache, emit_tsv, run_netcache};
use p4all_pisa::presets;
use p4all_workloads::zipf_trace;

fn main() {
    // Six stages with 32 Kb each: tight enough that every count-min row
    // displaces key-value capacity — the tradeoff Figure 4 plots.
    let mut target = presets::paper_eval(1 << 15);
    target.stages = 6;
    let trace = zipf_trace(10_000, 0.99, 200_000, 4);
    let threshold = 4;
    let epoch = 50_000;

    let mut rows_out = Vec::new();
    for cms_rows in [1u64, 2, 3] {
        for cms_cols in [64u64, 256, 1024] {
            let mut opts = bench_netcache_options();
            opts.kvs.max_slices = None; // let the store take every free stage
            opts.cms.min_rows = cms_rows;
            opts.cms.max_rows = cms_rows;
            opts.cms.min_cols = cms_cols;
            opts.cms.max_cols = Some(cms_cols);
            // Stretch only the store.
            opts.cms_weight = 0.0;
            opts.kv_weight = 1.0;
            match build_netcache(&opts, &target, threshold, epoch) {
                Ok((mut rt, c)) => {
                    let kv_items = c.layout.symbol_values["kv_slices"]
                        * c.layout.symbol_values["kv_cols"];
                    let hit = run_netcache(&mut rt, &trace);
                    rows_out.push(format!(
                        "{cms_rows}\t{cms_cols}\t{kv_items}\t{:.4}",
                        hit
                    ));
                    eprintln!(
                        "cms {cms_rows}x{cms_cols}: kv_items={kv_items} hit_rate={hit:.4}"
                    );
                }
                Err(e) => {
                    rows_out.push(format!("{cms_rows}\t{cms_cols}\t-\t- ({e})"));
                }
            }
        }
    }

    // The ILP's own choice under two utilities: the paper's 0.4/0.6 split
    // and a cache-leaning 0.1/0.9 split (the utility is the programmer's
    // quality model — §6.2 notes its choice is theirs to tune).
    for (mark, cms_w, kv_w) in [("*", 0.4, 0.6), ("+", 0.1, 0.9)] {
        let mut opts = bench_netcache_options();
        opts.kvs.max_slices = None;
        opts.cms_weight = cms_w;
        opts.kv_weight = kv_w;
        match build_netcache(&opts, &target, threshold, epoch) {
            Ok((mut rt, c)) => {
                let r = c.layout.symbol_values["cms_rows"];
                let w = c.layout.symbol_values["cms_cols"];
                let kv =
                    c.layout.symbol_values["kv_slices"] * c.layout.symbol_values["kv_cols"];
                let hit = run_netcache(&mut rt, &trace);
                rows_out.push(format!("{r}{mark}\t{w}{mark}\t{kv}\t{hit:.4}"));
                eprintln!(
                    "ILP optimum ({cms_w}/{kv_w}): cms {r}x{w}, kv_items={kv}, hit_rate={hit:.4}"
                );
            }
            Err(e) => eprintln!("ILP-optimal compile failed: {e}"),
        }
    }

    emit_tsv(
        "fig4_netcache_quality",
        "cms_rows\tcms_cols\tkv_items\thit_rate",
        &rows_out,
    );
}

//! ILP solver benchmark: warm-started dual simplex vs the all-cold
//! historical search, single-threaded, on the four evaluation apps and
//! the Figure-12 memory sweep. Writes `BENCH_ilp.json` with per-app
//! cold/warm solve times, node counts, and pivot counts, plus the sweep's
//! cross-solve warm-start acceptance.
//!
//! ```sh
//! cargo run --release --bin ilpbench            # median-of-3, writes BENCH_ilp.json
//! cargo run --release --bin ilpbench -- --smoke # 1 rep, compares against the
//!                                               # committed BENCH_ilp.json (CI gate)
//! ```
//!
//! In `--smoke` mode the harness runs the same workload once and **fails**
//! (exit 1) when the total warm solve time regresses more than 20% against
//! the committed baseline — the CI tripwire for accidental de-optimization
//! of the warm path.

use std::fmt::Write as _;
use std::time::Instant;

use p4all_bench::bench_netcache_options;
use p4all_core::{CompileCtx, CompileOptions, Compilation, TenantProgram};
use p4all_ilp::SolveStatus;
use p4all_elastic::apps::{conquest, lpm, netcache, precision, sketchlearn, vlan};
use p4all_lang::Tenant;
use p4all_pisa::{presets, TargetSpec};

/// One measured solve: wall time plus the solver-work counters that
/// explain it.
#[derive(Clone, Copy, Default)]
struct Sample {
    solve_s: f64,
    nodes: usize,
    lp_solves: usize,
    pivots: usize,
    warm_lps: usize,
    fallbacks: usize,
    cuts_applied: usize,
    strong_branch_lps: usize,
    objective: f64,
}

impl Sample {
    fn of(c: &Compilation) -> Sample {
        Sample {
            solve_s: c.timings.solve.as_secs_f64(),
            nodes: c.solve_stats.nodes,
            lp_solves: c.solve_stats.lp_solves,
            pivots: c.solve_stats.telemetry.total_pivots(),
            warm_lps: c.solve_stats.telemetry.total_warm_solves(),
            fallbacks: c.solve_stats.telemetry.total_cold_fallbacks(),
            cuts_applied: c.solve_stats.telemetry.cuts.applied,
            strong_branch_lps: c.solve_stats.telemetry.cuts.strong_branch_lps,
            objective: c.layout.objective,
        }
    }

    fn add(&mut self, s: &Sample) {
        self.solve_s += s.solve_s;
        self.nodes += s.nodes;
        self.lp_solves += s.lp_solves;
        self.pivots += s.pivots;
        self.warm_lps += s.warm_lps;
        self.fallbacks += s.fallbacks;
        self.cuts_applied += s.cuts_applied;
        self.strong_branch_lps += s.strong_branch_lps;
        self.objective += s.objective;
    }
}

fn options(warm: bool) -> CompileOptions {
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.warm_lp = warm;
    o
}

/// Compile `src` on a fresh context and return the solve sample.
fn solve_once(src: &str, target: &TargetSpec, warm: bool) -> Sample {
    let mut ctx = CompileCtx::new(options(warm));
    let c = ctx.compile(src, target).expect("bench app must compile");
    Sample::of(&c)
}

/// The three-tenant joint workload (the `examples/p4all/` bounds):
/// NetCache weight 2 plus the VLAN-filter and LPM-routing co-tenants.
fn joint_tenants() -> Vec<TenantProgram> {
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 2;
    nc.kvs.max_slices = Some(3);
    let vlan_opts = vlan::VlanOptions { max_cells: Some(4096), ..Default::default() };
    let lpm_opts = lpm::LpmOptions { max_cells: Some(4096), ..Default::default() };
    vec![
        TenantProgram::new(Tenant::new("cache", 2.0).unwrap(), netcache::source(&nc)),
        TenantProgram::new(Tenant::new("filter", 1.0).unwrap(), vlan::source(&vlan_opts)),
        TenantProgram::new(Tenant::new("routes", 1.0).unwrap(), lpm::source(&lpm_opts)),
    ]
}

/// One joint compile of the three-tenant workload on a fresh context.
fn solve_joint_once(tenants: &[TenantProgram], target: &TargetSpec, warm: bool) -> Sample {
    let mut ctx = CompileCtx::new(options(warm));
    let jc = ctx.compile_joint(tenants, target).expect("joint bench workload must compile");
    Sample::of(&jc.compilation)
}

/// The scaled synthetic joint workload: the same three tenants with
/// doubled elasticity (CMS up to 4 rows, KVS up to 4 slices, 8192-cell
/// filter/routing tables) on a 128 Kb/stage target. This is the
/// "joint-model scale" row the cut engine targets: the plain no-dive
/// search cannot close it within the node cap, cut-and-branch proves
/// optimality in a few hundred nodes. (Joint models with 4+ distinct
/// tenants or the heavyweight sketch apps do not close under *any*
/// configuration in CI-scale time, so scale comes from elasticity, not
/// tenant count.)
fn scaled_joint_workload() -> Vec<TenantProgram> {
    let mut nc = netcache::NetCacheOptions::default();
    nc.cms.max_rows = 4;
    nc.kvs.max_slices = Some(4);
    let vlan_opts = vlan::VlanOptions { max_cells: Some(8192), ..Default::default() };
    let lpm_opts = lpm::LpmOptions { max_cells: Some(8192), ..Default::default() };
    vec![
        TenantProgram::new(Tenant::new("cache", 2.0).unwrap(), netcache::source(&nc)),
        TenantProgram::new(Tenant::new("filter", 1.0).unwrap(), vlan::source(&vlan_opts)),
        TenantProgram::new(Tenant::new("routes", 1.0).unwrap(), lpm::source(&lpm_opts)),
    ]
}

/// Node cap for the plain (cuts-off) baseline of the cut-engine rows.
/// Without cuts the joint trees do not close in any reasonable budget
/// (the 3-tenant tree passes 150k nodes without proving optimality), so
/// the baseline runs to this cap and its node count is a lower bound.
const PLAIN_NODE_CAP: usize = 5_000;

/// Options for the cut-engine comparison: diving is disabled so the node
/// counts compare the actual search trees, and the cut/pseudocost engine
/// is toggled as one unit. The plain side is capped (see
/// [`PLAIN_NODE_CAP`]); the cuts side keeps the default node budget and
/// is required to prove optimality.
fn cuts_options(on: bool) -> CompileOptions {
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.dive_limit = 0;
    o.solver.cuts = on;
    o.solver.pseudocost = on;
    if !on {
        o.solver.node_limit = PLAIN_NODE_CAP;
    }
    o
}

/// One joint compile on a fresh context with the cut engine on or off.
/// Returns the sample plus whether the solve proved optimality.
fn solve_joint_cuts(
    tenants: &[TenantProgram],
    target: &TargetSpec,
    on: bool,
) -> (Sample, bool) {
    let mut ctx = CompileCtx::new(cuts_options(on));
    let jc = ctx.compile_joint(tenants, target).expect("joint cuts workload must compile");
    let optimal = jc.compilation.solve_stats.status == SolveStatus::Optimal;
    (Sample::of(&jc.compilation), optimal)
}

/// The reference objective for a joint workload: the historical default
/// configuration (diving on), which proves optimality on these models.
fn joint_reference_objective(tenants: &[TenantProgram], target: &TargetSpec) -> f64 {
    let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
    let jc = ctx.compile_joint(tenants, target).expect("joint reference must compile");
    assert_eq!(
        jc.compilation.solve_stats.status,
        SolveStatus::Optimal,
        "joint reference solve must prove optimality"
    );
    jc.compilation.layout.objective
}

/// One full pass over the Figure-12 memory sweep (8 points). Warm mode
/// shares one context so each point's incumbent seeds the next solve;
/// cold mode uses a fresh context per point (the historical behavior:
/// greedy seed only, every LP solved from scratch).
fn sweep_once(src: &str, warm: bool) -> (Sample, usize) {
    let mut totals = Sample::default();
    let mut warm_accepted = 0usize;
    let mut shared = CompileCtx::new(options(true));
    for shift in [13u32, 14, 15, 16, 17, 18, 19, 20] {
        let target = presets::paper_eval(1u64 << shift);
        let c = if warm {
            shared.compile(src, &target)
        } else {
            CompileCtx::new(options(false)).compile(src, &target)
        }
        .expect("sweep point must compile");
        if c.solve_stats.telemetry.warm_start_accepted() {
            warm_accepted += 1;
        }
        totals.add(&Sample::of(&c));
    }
    (totals, warm_accepted)
}

/// Median by solve time (so one scheduler hiccup doesn't skew a row).
fn median(mut v: Vec<(Sample, usize)>) -> (Sample, usize) {
    v.sort_by(|a, b| a.0.solve_s.total_cmp(&b.0.solve_s));
    let mid = v.len() / 2;
    v.swap_remove(mid)
}

/// Extract `"key": <number>` from the hand-rolled baseline JSON.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    let target = presets::paper_eval(1 << 16);
    let t_all = Instant::now();

    let netcache_src = netcache::source(&bench_netcache_options());
    let apps: Vec<(&str, String)> = vec![
        ("NetCache", netcache_src.clone()),
        ("SketchLearn", sketchlearn::source(&Default::default())),
        ("Precision", precision::source(&Default::default())),
        ("ConQuest", conquest::source(&Default::default())),
    ];
    println!(
        "ilpbench: 1-thread cold vs warm-started solves, {reps} rep(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    // Interleave cold/warm reps (like simbench) so a noisy window on a
    // shared box hits both variants and the ratio stays honest.
    let mut rows: Vec<(String, Sample, Sample)> = Vec::new();
    for (name, src) in &apps {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        solve_once(src, &target, false); // untimed warm-up (page cache, allocator)
        for _ in 0..reps {
            cold.push((solve_once(src, &target, false), 0));
            warm.push((solve_once(src, &target, true), 0));
        }
        let (c, _) = median(cold);
        let (w, _) = median(warm);
        assert!(
            (c.objective - w.objective).abs() < 1e-6,
            "{name}: warm objective {} != cold {}",
            w.objective,
            c.objective
        );
        println!(
            "  {name:<12} cold {:>8.3}s ({} nodes, {} pivots)   warm {:>8.3}s ({} nodes, {} pivots, {} warm LPs, {} fallbacks)  {:.2}x",
            c.solve_s, c.nodes, c.pivots, w.solve_s, w.nodes, w.pivots, w.warm_lps, w.fallbacks,
            c.solve_s / w.solve_s.max(1e-9)
        );
        rows.push((name.to_string(), c, w));
    }

    // The multi-tenant joint solve: one ILP whose capacity rows are
    // shared by all three tenants (the CI gate for the joint path).
    let tenants = joint_tenants();
    let mut joint_cold = Vec::new();
    let mut joint_warm = Vec::new();
    solve_joint_once(&tenants, &target, false); // untimed warm-up
    for _ in 0..reps {
        joint_cold.push((solve_joint_once(&tenants, &target, false), 0));
        joint_warm.push((solve_joint_once(&tenants, &target, true), 0));
    }
    let (jc, _) = median(joint_cold);
    let (jw, _) = median(joint_warm);
    assert!(
        (jc.objective - jw.objective).abs() < 1e-6,
        "joint: warm objective {} != cold {}",
        jw.objective,
        jc.objective
    );
    println!(
        "  {:<12} cold {:>8.3}s ({} nodes, {} pivots)   warm {:>8.3}s ({} nodes, {} pivots, {} warm LPs, {} fallbacks)  {:.2}x",
        "joint-3tenant", jc.solve_s, jc.nodes, jc.pivots, jw.solve_s, jw.nodes, jw.pivots,
        jw.warm_lps, jw.fallbacks, jc.solve_s / jw.solve_s.max(1e-9)
    );

    // Cut-and-branch vs plain branch-and-bound on the joint workloads:
    // node counts with diving disabled, so the comparison is between the
    // search trees themselves. Node counts are deterministic at one
    // thread, so each variant runs once. The cuts side must prove
    // optimality and match the historical default configuration's
    // objective; the plain side runs to PLAIN_NODE_CAP (it does not
    // close these trees), so its node count is a lower bound.
    let scaled = scaled_joint_workload();
    let scaled_target = presets::paper_eval(1 << 17);
    let mut cuts_rows: Vec<(&str, Sample, bool, Sample)> = Vec::new();
    for (label, tenants, tgt) in
        [("joint-3tenant", &tenants, &target), ("joint-3tenant-xl", &scaled, &scaled_target)]
    {
        let reference = joint_reference_objective(tenants, tgt);
        let (o, o_opt) = solve_joint_cuts(tenants, tgt, false);
        let (c, c_opt) = solve_joint_cuts(tenants, tgt, true);
        assert!(c_opt, "{label}: cut-and-branch must prove optimality");
        assert!(
            (c.objective - reference).abs() < 1e-6,
            "{label}: cuts objective {} != reference {}",
            c.objective,
            reference
        );
        println!(
            "  {label:<13} plain {:>6}{} nodes ({} LPs)   cuts {:>5} nodes ({} LPs, {} cuts, {} strong-branch LPs)  {:.0}x fewer nodes",
            o.nodes,
            if o_opt { "" } else { "+" },
            o.lp_solves,
            c.nodes,
            c.lp_solves,
            c.cuts_applied,
            c.strong_branch_lps,
            o.nodes as f64 / c.nodes.max(1) as f64
        );
        cuts_rows.push((label, o, o_opt, c));
    }

    let mut sweep_cold = Vec::new();
    let mut sweep_warm = Vec::new();
    for _ in 0..reps {
        sweep_cold.push(sweep_once(&netcache_src, false));
        sweep_warm.push(sweep_once(&netcache_src, true));
    }
    let (sc, _) = median(sweep_cold);
    let (sw, sw_accepted) = median(sweep_warm);
    println!(
        "  {:<12} cold {:>8.3}s ({} nodes, {} pivots)   warm {:>8.3}s ({} nodes, {} pivots, {}/8 points warm-accepted)  {:.2}x",
        "fig12-sweep",
        sc.solve_s,
        sc.nodes,
        sc.pivots,
        sw.solve_s,
        sw.nodes,
        sw.pivots,
        sw_accepted,
        sc.solve_s / sw.solve_s.max(1e-9)
    );

    // The acceptance metric: geometric-mean speedup over NetCache and the
    // sweep (the two workloads the warm path is built for), plus the
    // all-rows geomean for context.
    let speedup = |c: &Sample, w: &Sample| c.solve_s / w.solve_s.max(1e-9);
    let nc = &rows[0];
    let geo_accept = (speedup(&nc.1, &nc.2) * speedup(&sc, &sw)).sqrt();
    let mut log_sum = speedup(&sc, &sw).ln();
    for (_, c, w) in &rows {
        log_sum += speedup(c, w).ln();
    }
    let geo_all = (log_sum / (rows.len() + 1) as f64).exp();
    println!(
        "  geomean speedup: {geo_accept:.2}x (NetCache + sweep), {geo_all:.2}x (all rows)"
    );

    let total_warm_s: f64 =
        rows.iter().map(|(_, _, w)| w.solve_s).sum::<f64>() + jw.solve_s + sw.solve_s;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"apps\": [\n");
    for (i, (name, c, w)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{name}\", \"cold_solve_s\": {:.4}, \"warm_solve_s\": {:.4}, \
             \"speedup\": {:.2}, \"cold_nodes\": {}, \"warm_nodes\": {}, \
             \"cold_lp_solves\": {}, \"warm_lp_solves\": {}, \
             \"cold_pivots\": {}, \"warm_pivots\": {}, \
             \"warm_path_lps\": {}, \"cold_fallbacks\": {}}}",
            c.solve_s,
            w.solve_s,
            speedup(c, w),
            c.nodes,
            w.nodes,
            c.lp_solves,
            w.lp_solves,
            c.pivots,
            w.pivots,
            w.warm_lps,
            w.fallbacks
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"joint_solve\": {{\"workload\": \"NetCache+VLAN+LPM\", \"tenants\": 3, \
         \"cold_solve_s\": {:.4}, \"warm_solve_s\": {:.4}, \"speedup\": {:.2}, \
         \"cold_nodes\": {}, \"warm_nodes\": {}, \"cold_pivots\": {}, \"warm_pivots\": {}}},",
        jc.solve_s,
        jw.solve_s,
        speedup(&jc, &jw),
        jc.nodes,
        jw.nodes,
        jc.pivots,
        jw.pivots
    );
    json.push_str("  \"cut_engine\": [\n");
    for (i, (label, o, o_opt, c)) in cuts_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{label}\", \"plain_nodes\": {}, \"plain_optimal\": {o_opt}, \
             \"cuts_nodes\": {}, \"cuts_lp_solves\": {}, \"cuts_applied\": {}, \
             \"strong_branch_lps\": {}, \"node_reduction\": {:.1}, \"objective\": {:.4}}}",
            o.nodes,
            c.nodes,
            c.lp_solves,
            c.cuts_applied,
            c.strong_branch_lps,
            o.nodes as f64 / c.nodes.max(1) as f64,
            c.objective
        );
        json.push_str(if i + 1 < cuts_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"fig12_sweep\": {{\"points\": 8, \"cold_solve_s\": {:.4}, \"warm_solve_s\": {:.4}, \
         \"speedup\": {:.2}, \"cold_nodes\": {}, \"warm_nodes\": {}, \
         \"cold_pivots\": {}, \"warm_pivots\": {}, \"warm_accepted_points\": {sw_accepted}}},",
        sc.solve_s,
        sw.solve_s,
        speedup(&sc, &sw),
        sc.nodes,
        sw.nodes,
        sc.pivots,
        sw.pivots
    );
    let _ = writeln!(json, "  \"geomean_speedup_netcache_sweep\": {geo_accept:.2},");
    let _ = writeln!(json, "  \"geomean_speedup_all\": {geo_all:.2},");
    let _ = writeln!(json, "  \"total_warm_solve_s\": {total_warm_s:.4}");
    json.push_str("}\n");

    if smoke {
        // CI gate: the same workload must not have gotten slower on the
        // warm path. Compare against the committed full-run baseline.
        match std::fs::read_to_string("BENCH_ilp.json") {
            Ok(baseline) => {
                let base = json_number(&baseline, "total_warm_solve_s")
                    .expect("baseline BENCH_ilp.json lacks total_warm_solve_s");
                let ratio = total_warm_s / base.max(1e-9);
                println!(
                    "smoke: warm total {total_warm_s:.3}s vs baseline {base:.3}s ({ratio:.2}x)"
                );
                if ratio > 1.20 {
                    eprintln!(
                        "FAIL: warm solve time regressed {:.0}% (> 20%) vs committed BENCH_ilp.json",
                        (ratio - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
                // Cut-engine gates: the acceptance bar (>= 2x fewer
                // nodes than the capped plain tree) plus a node-count
                // regression tripwire against the committed baseline.
                for (label, o, _, c) in &cuts_rows {
                    let reduction = o.nodes as f64 / c.nodes.max(1) as f64;
                    println!(
                        "smoke: {label} cut-and-branch {} nodes vs plain {} ({reduction:.1}x)",
                        c.nodes, o.nodes
                    );
                    if reduction < 2.0 {
                        eprintln!(
                            "FAIL: {label} node reduction {reduction:.1}x below the 2x acceptance bar"
                        );
                        std::process::exit(1);
                    }
                    let base_nodes = baseline
                        .find(label)
                        .and_then(|at| json_number(&baseline[at..], "cuts_nodes"));
                    if let Some(b) = base_nodes {
                        if c.nodes as f64 > b * 1.20 {
                            eprintln!(
                                "FAIL: {label} cut-and-branch nodes {} regressed > 20% vs baseline {b}",
                                c.nodes
                            );
                            std::process::exit(1);
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL: no committed BENCH_ilp.json to compare against: {e}");
                std::process::exit(1);
            }
        }
    } else {
        std::fs::write("BENCH_ilp.json", &json).expect("write BENCH_ilp.json");
        println!("\nwrote BENCH_ilp.json ({:.1}s total)", t_all.elapsed().as_secs_f64());
    }
}

//! Figure 13 — effect of the utility function on the optimal layout at a
//! fixed target (1.75 Mb of register memory per stage).
//!
//! Two utilities: `0.4*cms + 0.6*kv` (store-leaning, the paper's default)
//! and `0.6*cms + 0.4*kv` (sketch-leaning). Following §6.2, an `assume`
//! guarantees the store a minimum size in both cases, so flipping the
//! weights changes the *split*, not the store's viability.

use p4all_bench::emit_tsv;
use p4all_core::{CompileOptions, Compiler};
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::presets;

fn configure(mut opts: NetCacheOptions) -> NetCacheOptions {
    opts.cms.max_rows = 4;
    opts.kvs.max_slices = None;
    // The paper reserves 8 Mb for the store; at 128-bit values that is
    // 65536 items. Our simulated target is smaller, so scale the guarantee
    // to 1 Mb -> 8192 items, preserving the mechanism.
    opts.min_kv_items = Some(8192);
    // Weigh memory bits, not item counts, so the 0.4/0.6 weights steer the
    // split directly (see NetCacheOptions::utility_in_bits).
    opts.utility_in_bits = true;
    opts
}

fn main() {
    let target = presets::paper_eval_fig13();
    let mut rows = Vec::new();
    for (label, opts) in [
        ("0.4*cms+0.6*kv", configure(NetCacheOptions::paper_default())),
        ("0.6*cms+0.4*kv", configure(NetCacheOptions::cms_heavy())),
    ] {
        let src = netcache::source(&opts);
        // Solve sequentially and with all cores: same layout either way
        // (the deterministic parallel mode is scheduling-independent), but
        // both solve times land in the table.
        let seq = Compiler::with_options(target.clone(), CompileOptions::default().with_threads(1));
        let par = Compiler::with_options(target.clone(), CompileOptions::default().with_threads(0));
        let par_solve_s = match par.compile(&src) {
            Ok(p) => format!("{:.3}", p.timings.solve.as_secs_f64()),
            Err(_) => "-".to_string(),
        };
        match seq.compile(&src) {
            Ok(c) => {
                let r = c.layout.symbol_values["cms_rows"];
                let w = c.layout.symbol_values["cms_cols"];
                let s = c.layout.symbol_values["kv_slices"];
                let k = c.layout.symbol_values["kv_cols"];
                let total = c.layout.total_memory_bits();
                let pivots = c.solve_stats.telemetry.total_pivots();
                let cuts = c.solve_stats.telemetry.cuts.applied;
                rows.push(format!(
                    "{label}\t{r}\t{w}\t{}\t{s}\t{k}\t{}\t{total}\t{:.1}\t{:.3}\t{par_solve_s}\t{pivots}\t{cuts}",
                    r * w,
                    s * k,
                    c.layout.objective,
                    c.timings.solve.as_secs_f64()
                ));
                eprintln!(
                    "{label}: cms {r}x{w} ({}), kv {s}x{k} ({}), total {total} bits, \
                     utility {:.1}, solve {:.3}s @1t / {par_solve_s}s @Nt, {pivots} pivots",
                    r * w,
                    s * k,
                    c.layout.objective,
                    c.timings.solve.as_secs_f64()
                );
            }
            Err(e) => {
                rows.push(format!("{label}\t-\t-\t-\t-\t-\t-\t-\t- ({e})\t-\t-\t-\t-"));
                eprintln!("{label}: {e}");
            }
        }
    }
    emit_tsv(
        "fig13_utility_functions",
        "utility\tcms_rows\tcms_cols\tcms_counters\tkv_slices\tkv_cols\tkv_items\ttotal_bits\tobjective\tsolve_1t_s\tsolve_nt_s\tlp_pivots\tcuts_applied",
        &rows,
    );
}

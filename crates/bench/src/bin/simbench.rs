//! Simulator throughput benchmark: the bytecode replay engine against the
//! reference interpreter (and, when `rustc` is on PATH, the generated-Rust
//! native engine), single-threaded and sharded, over a Zipf NetCache
//! trace. Writes `BENCH_sim.json` with pkts/sec per configuration, the
//! compiled-vs-interpreter and native-vs-compiled speedups, and the
//! thread scaling curve. `--smoke` additionally gates native ≥ 1x
//! bytecode (exit 1 below), a deliberately loose CI floor — the real
//! target (≥ 5x) is what the full run on a bench host records.
//!
//! ```sh
//! cargo run --release --bin simbench            # 1M-packet trace
//! cargo run --release --bin simbench -- --smoke # 10k packets (CI)
//! ```

use std::fmt::Write as _;

use p4all_bench::{bench_netcache_options, build_netcache_switch, phv_trace};
use p4all_pisa::presets;
use p4all_sim::{Backend, Phv, SimStats, Switch};
use p4all_workloads::zipf_trace;

fn one_pass(sw: &mut Switch, trace: &[Phv], backend: Backend, threads: usize) -> SimStats {
    sw.set_backend(backend);
    let stats = sw.run_trace(trace, threads);
    assert_eq!(stats.dropped, 0, "NetCache trace must not fault");
    stats
}

fn median(mut passes: Vec<SimStats>) -> SimStats {
    passes.sort_by(|a, b| a.pkts_per_sec().total_cmp(&b.pkts_per_sec()));
    let mid = passes.len() / 2;
    passes.swap_remove(mid)
}

/// Measure both single-thread engines with *interleaved* median-of-3
/// passes (interp, compiled, interp, compiled, ...). On a shared box the
/// scheduler can steal cycles for seconds at a time; interleaving puts
/// both engines inside any such window so the reported *ratio* stays
/// honest even when the absolute numbers dip, and the median then
/// discards a stolen pass without favoring either engine's lucky run.
fn measure_pair(sw: &mut Switch, trace: &[Phv]) -> (SimStats, SimStats) {
    // One untimed pass per engine warms caches and faults in the
    // register file.
    one_pass(sw, trace, Backend::Interp, 1);
    one_pass(sw, trace, Backend::Compiled, 1);
    let mut interp = Vec::new();
    let mut compiled = Vec::new();
    for _ in 0..3 {
        interp.push(one_pass(sw, trace, Backend::Interp, 1));
        compiled.push(one_pass(sw, trace, Backend::Compiled, 1));
    }
    (median(interp), median(compiled))
}

fn measure(sw: &mut Switch, trace: &[Phv], backend: Backend, threads: usize) -> SimStats {
    one_pass(sw, trace, backend, threads); // warm
    median((0..3).map(|_| one_pass(sw, trace, backend, threads)).collect())
}

/// Native vs compiled, interleaved for the same reasons as
/// [`measure_pair`]. Returns `None` (with a printed reason) when the
/// native engine can't run here, so the benchmark still completes on
/// hosts without a `rustc`.
fn measure_native(sw: &mut Switch, trace: &[Phv]) -> Option<(SimStats, SimStats)> {
    if !p4all_sim::rustc_available() {
        println!("  native    1 thread :      skipped  (rustc not on PATH)");
        return None;
    }
    if let Err(e) = sw.prepare_native() {
        println!("  native    1 thread :      skipped  ({e})");
        return None;
    }
    one_pass(sw, trace, Backend::Native, 1);
    let mut native = Vec::new();
    let mut compiled = Vec::new();
    for _ in 0..3 {
        native.push(one_pass(sw, trace, Backend::Native, 1));
        compiled.push(one_pass(sw, trace, Backend::Compiled, 1));
    }
    Some((median(native), median(compiled)))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let packets = if smoke { 10_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let target = presets::paper_eval(1 << 15);
    let opts = bench_netcache_options();
    let (mut sw, key) = build_netcache_switch(&opts, &target).expect("netcache builds");
    let trace = zipf_trace(10_000, 0.99, packets, 7);
    let phvs = phv_trace(&sw, &key, &trace);
    println!(
        "simbench: NetCache pipeline, {} stages, {} packets (Zipf 0.99 over 10k keys){}",
        sw.stage_count(),
        packets,
        if smoke { " [smoke]" } else { "" }
    );

    let (interp, compiled) = measure_pair(&mut sw, &phvs);
    println!("  interp    1 thread : {:>12.0} pkts/sec", interp.pkts_per_sec());
    let speedup = compiled.pkts_per_sec() / interp.pkts_per_sec();
    println!(
        "  compiled  1 thread : {:>12.0} pkts/sec  ({speedup:.1}x interp)",
        compiled.pkts_per_sec()
    );

    // Native (generated Rust) vs compiled, with the compiled side
    // re-measured inside the same interleaving window so the ratio is
    // apples to apples.
    let native = measure_native(&mut sw, &phvs).map(|(nat, comp)| {
        let nat_speedup = nat.pkts_per_sec() / comp.pkts_per_sec();
        println!(
            "  native    1 thread : {:>12.0} pkts/sec  ({nat_speedup:.1}x compiled)",
            nat.pkts_per_sec()
        );
        (nat, nat_speedup)
    });

    // Sharded replay at 2/4/8 workers regardless of core count — on a
    // box with fewer cores the scaling column honestly reports ~1x.
    let mut thread_rows = Vec::new();
    for t in [2usize, 4, 8] {
        let s = measure(&mut sw, &phvs, Backend::Compiled, t);
        let scaling = s.pkts_per_sec() / compiled.pkts_per_sec();
        println!(
            "  compiled {t:>2} threads: {:>12.0} pkts/sec  ({scaling:.2}x 1-thread)",
            s.pkts_per_sec()
        );
        thread_rows.push((t, s.pkts_per_sec(), scaling));
    }

    // Where the cycles go: per-stage bytecode cost of the compiled run.
    let total = compiled.total_cost().max(1);
    let per_stage: Vec<String> = compiled
        .stage_cost
        .iter()
        .map(|&c| format!("{:.1}%", 100.0 * c as f64 / total as f64))
        .collect();
    println!("  stage cost split   : {}", per_stage.join(" "));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"packets\": {packets},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"interp_pkts_per_sec\": {:.0},", interp.pkts_per_sec());
    let _ = writeln!(json, "  \"compiled_pkts_per_sec\": {:.0},", compiled.pkts_per_sec());
    let _ = writeln!(json, "  \"speedup_compiled_vs_interp\": {speedup:.2},");
    match &native {
        Some((nat, nat_speedup)) => {
            let _ = writeln!(json, "  \"native_pkts_per_sec\": {:.0},", nat.pkts_per_sec());
            let _ = writeln!(json, "  \"speedup_native_vs_compiled\": {nat_speedup:.2},");
        }
        None => {
            let _ = writeln!(json, "  \"native_pkts_per_sec\": null,");
            let _ = writeln!(json, "  \"speedup_native_vs_compiled\": null,");
        }
    }
    let _ = writeln!(json, "  \"stage_cost\": {:?},", compiled.stage_cost);
    json.push_str("  \"threads\": [\n");
    for (i, (t, pps, scaling)) in thread_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {t}, \"pkts_per_sec\": {pps:.0}, \"scaling_vs_1thread\": {scaling:.2}}}"
        );
        json.push_str(if i + 1 < thread_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");

    // CI floor: generated code must never be slower than the bytecode it
    // replaces. The honest perf claim (≥ 5x) comes from the full run on a
    // bench host; a loaded 1-core CI runner only has to clear 1x.
    if smoke {
        if let Some((_, nat_speedup)) = native {
            if nat_speedup < 1.0 {
                eprintln!(
                    "simbench: FAIL — native engine is slower than bytecode \
                     ({nat_speedup:.2}x, floor 1.0x)"
                );
                std::process::exit(1);
            }
            println!("smoke gate: native {nat_speedup:.2}x compiled (floor 1.0x) — ok");
        }
    }
}

//! Simulator throughput benchmark: the bytecode replay engine against the
//! reference interpreter (and, when `rustc` is on PATH, the generated-Rust
//! native engine), single-threaded and sharded, over a Zipf NetCache
//! trace. Writes `BENCH_sim.json` with pkts/sec per configuration, the
//! compiled-vs-interpreter and native-vs-compiled speedups, and the
//! thread scaling curve. `--smoke` additionally gates native ≥ 1x
//! bytecode (exit 1 below), a deliberately loose CI floor — the real
//! target (≥ 5x) is what the full run on a bench host records.
//!
//! ```sh
//! cargo run --release --bin simbench            # 1M-packet trace
//! cargo run --release --bin simbench -- --smoke # 10k packets (CI)
//! ```

use std::fmt::Write as _;

use p4all_bench::{bench_netcache_options, build_netcache_switch, phv_trace};
use p4all_pisa::presets;
use p4all_sim::{Backend, Phv, SimStats, Switch};
use p4all_workloads::zipf_trace;

fn one_pass(sw: &mut Switch, trace: &[Phv], backend: Backend, threads: usize) -> SimStats {
    sw.set_backend(backend);
    let stats = sw.run_trace(trace, threads);
    assert_eq!(stats.dropped, 0, "NetCache trace must not fault");
    stats
}

fn median(mut passes: Vec<SimStats>) -> SimStats {
    passes.sort_by(|a, b| a.pkts_per_sec().total_cmp(&b.pkts_per_sec()));
    let mid = passes.len() / 2;
    passes.swap_remove(mid)
}

/// Measure both single-thread engines with *interleaved* median-of-3
/// passes (interp, compiled, interp, compiled, ...). On a shared box the
/// scheduler can steal cycles for seconds at a time; interleaving puts
/// both engines inside any such window so the reported *ratio* stays
/// honest even when the absolute numbers dip, and the median then
/// discards a stolen pass without favoring either engine's lucky run.
fn measure_pair(sw: &mut Switch, trace: &[Phv]) -> (SimStats, SimStats) {
    // One untimed pass per engine warms caches and faults in the
    // register file.
    one_pass(sw, trace, Backend::Interp, 1);
    one_pass(sw, trace, Backend::Compiled, 1);
    let mut interp = Vec::new();
    let mut compiled = Vec::new();
    for _ in 0..3 {
        interp.push(one_pass(sw, trace, Backend::Interp, 1));
        compiled.push(one_pass(sw, trace, Backend::Compiled, 1));
    }
    (median(interp), median(compiled))
}

/// SoA batch width for the batched rows: wide enough to amortize the
/// per-batch gather, small enough that a batch's columns stay in L1.
const BATCH_WIDTH: usize = 64;

/// Batched vs scalar bytecode replay, interleaved like [`measure_pair`].
fn measure_batched(sw: &mut Switch, trace: &[Phv]) -> (SimStats, SimStats) {
    sw.set_batch_width(BATCH_WIDTH);
    one_pass(sw, trace, Backend::Compiled, 1); // warm
    sw.set_batch_width(0);
    one_pass(sw, trace, Backend::Compiled, 1);
    let mut batched = Vec::new();
    let mut scalar = Vec::new();
    for _ in 0..3 {
        sw.set_batch_width(BATCH_WIDTH);
        let b = one_pass(sw, trace, Backend::Compiled, 1);
        assert_eq!(
            b.batch_width, BATCH_WIDTH,
            "NetCache must run batched, not the scalar fallback"
        );
        batched.push(b);
        sw.set_batch_width(0);
        scalar.push(one_pass(sw, trace, Backend::Compiled, 1));
    }
    sw.set_batch_width(0);
    (median(batched), median(scalar))
}

/// `threads`-shard replay vs a 1-thread baseline, interleaved in one
/// window so the scaling ratio is immune to the box slowing down between
/// rows (the current batch width applies to both sides). Returns the
/// sharded stats and the within-window scaling factor.
fn measure_scaled(sw: &mut Switch, trace: &[Phv], threads: usize) -> (SimStats, f64) {
    one_pass(sw, trace, Backend::Compiled, 1); // warm
    one_pass(sw, trace, Backend::Compiled, threads);
    let mut base = Vec::new();
    let mut multi = Vec::new();
    for _ in 0..3 {
        base.push(one_pass(sw, trace, Backend::Compiled, 1));
        multi.push(one_pass(sw, trace, Backend::Compiled, threads));
    }
    let (base, multi) = (median(base), median(multi));
    let scaling = multi.pkts_per_sec() / base.pkts_per_sec();
    (multi, scaling)
}

/// Batched-FFI native replay vs per-packet native replay, interleaved.
/// Only called once the scalar native measurement succeeded.
fn measure_native_batched(sw: &mut Switch, trace: &[Phv]) -> (SimStats, SimStats) {
    sw.set_batch_width(BATCH_WIDTH);
    one_pass(sw, trace, Backend::Native, 1); // warm
    sw.set_batch_width(0);
    one_pass(sw, trace, Backend::Native, 1);
    let mut batched = Vec::new();
    let mut scalar = Vec::new();
    for _ in 0..3 {
        sw.set_batch_width(BATCH_WIDTH);
        let b = one_pass(sw, trace, Backend::Native, 1);
        assert_eq!(b.batch_width, BATCH_WIDTH, "native batched entry must run");
        batched.push(b);
        sw.set_batch_width(0);
        scalar.push(one_pass(sw, trace, Backend::Native, 1));
    }
    sw.set_batch_width(0);
    (median(batched), median(scalar))
}

/// Native vs compiled, interleaved for the same reasons as
/// [`measure_pair`]. Returns `None` (with a printed reason) when the
/// native engine can't run here, so the benchmark still completes on
/// hosts without a `rustc`.
fn measure_native(sw: &mut Switch, trace: &[Phv]) -> Option<(SimStats, SimStats)> {
    if !p4all_sim::rustc_available() {
        println!("  native    1 thread :      skipped  (rustc not on PATH)");
        return None;
    }
    if let Err(e) = sw.prepare_native() {
        println!("  native    1 thread :      skipped  ({e})");
        return None;
    }
    one_pass(sw, trace, Backend::Native, 1);
    let mut native = Vec::new();
    let mut compiled = Vec::new();
    for _ in 0..3 {
        native.push(one_pass(sw, trace, Backend::Native, 1));
        compiled.push(one_pass(sw, trace, Backend::Compiled, 1));
    }
    Some((median(native), median(compiled)))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let packets = if smoke { 10_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let target = presets::paper_eval(1 << 15);
    let opts = bench_netcache_options();
    let (mut sw, key) = build_netcache_switch(&opts, &target).expect("netcache builds");
    let trace = zipf_trace(10_000, 0.99, packets, 7);
    let phvs = phv_trace(&sw, &key, &trace);
    println!(
        "simbench: NetCache pipeline, {} stages, {} packets (Zipf 0.99 over 10k keys){}",
        sw.stage_count(),
        packets,
        if smoke { " [smoke]" } else { "" }
    );

    let (interp, compiled) = measure_pair(&mut sw, &phvs);
    println!("  interp    1 thread : {:>12.0} pkts/sec", interp.pkts_per_sec());
    let speedup = compiled.pkts_per_sec() / interp.pkts_per_sec();
    println!(
        "  compiled  1 thread : {:>12.0} pkts/sec  ({speedup:.1}x interp)",
        compiled.pkts_per_sec()
    );

    // Batched SoA execution vs the scalar bytecode loop, the compiled
    // side re-measured inside the same interleaving window.
    let (batched, batched_base) = measure_batched(&mut sw, &phvs);
    let batched_speedup = batched.pkts_per_sec() / batched_base.pkts_per_sec();
    println!(
        "  batched   1 thread : {:>12.0} pkts/sec  ({batched_speedup:.2}x compiled, width {BATCH_WIDTH})",
        batched.pkts_per_sec()
    );

    // Native (generated Rust) vs compiled, with the compiled side
    // re-measured inside the same interleaving window so the ratio is
    // apples to apples.
    let native = measure_native(&mut sw, &phvs).map(|(nat, comp)| {
        let nat_speedup = nat.pkts_per_sec() / comp.pkts_per_sec();
        println!(
            "  native    1 thread : {:>12.0} pkts/sec  ({nat_speedup:.1}x compiled)",
            nat.pkts_per_sec()
        );
        (nat, nat_speedup)
    });

    // Batched FFI (`p4n_run_batch`) vs per-packet native calls.
    let native_batched = native.as_ref().map(|_| {
        let (nb, nb_base) = measure_native_batched(&mut sw, &phvs);
        let nb_speedup = nb.pkts_per_sec() / nb_base.pkts_per_sec();
        println!(
            "  nat-batch 1 thread : {:>12.0} pkts/sec  ({nb_speedup:.2}x native, width {BATCH_WIDTH})",
            nb.pkts_per_sec()
        );
        (nb, nb_speedup)
    });

    // Sharded replay at 2/4/8 requested workers regardless of core count
    // — `run_trace` caps the shard count at `available_parallelism`, so
    // on a small box the scaling column honestly reports ~1x. Batched
    // rows use the same shards with SoA workers.
    let mut thread_rows = Vec::new();
    for t in [2usize, 4, 8] {
        let (s, scaling) = measure_scaled(&mut sw, &phvs, t);
        sw.set_batch_width(BATCH_WIDTH);
        let (b, b_scaling) = measure_scaled(&mut sw, &phvs, t);
        sw.set_batch_width(0);
        println!(
            "  compiled {t:>2} threads: {:>12.0} pkts/sec  ({scaling:.2}x 1-thread) | batched {:>12.0} pkts/sec ({b_scaling:.2}x)",
            s.pkts_per_sec(),
            b.pkts_per_sec()
        );
        thread_rows.push((t, s.pkts_per_sec(), scaling, b.pkts_per_sec(), b_scaling));
    }

    // Where the cycles go: per-stage bytecode cost of the compiled run.
    let total = compiled.total_cost().max(1);
    let per_stage: Vec<String> = compiled
        .stage_cost
        .iter()
        .map(|&c| format!("{:.1}%", 100.0 * c as f64 / total as f64))
        .collect();
    println!("  stage cost split   : {}", per_stage.join(" "));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"packets\": {packets},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"interp_pkts_per_sec\": {:.0},", interp.pkts_per_sec());
    let _ = writeln!(json, "  \"compiled_pkts_per_sec\": {:.0},", compiled.pkts_per_sec());
    let _ = writeln!(json, "  \"speedup_compiled_vs_interp\": {speedup:.2},");
    let _ = writeln!(json, "  \"batch_width\": {BATCH_WIDTH},");
    let _ = writeln!(json, "  \"batched_pkts_per_sec\": {:.0},", batched.pkts_per_sec());
    let _ = writeln!(json, "  \"speedup_batched_vs_compiled\": {batched_speedup:.2},");
    match &native_batched {
        Some((nb, nb_speedup)) => {
            let _ =
                writeln!(json, "  \"native_batched_pkts_per_sec\": {:.0},", nb.pkts_per_sec());
            let _ = writeln!(json, "  \"speedup_native_batched_vs_native\": {nb_speedup:.2},");
        }
        None => {
            let _ = writeln!(json, "  \"native_batched_pkts_per_sec\": null,");
            let _ = writeln!(json, "  \"speedup_native_batched_vs_native\": null,");
        }
    }
    match &native {
        Some((nat, nat_speedup)) => {
            let _ = writeln!(json, "  \"native_pkts_per_sec\": {:.0},", nat.pkts_per_sec());
            let _ = writeln!(json, "  \"speedup_native_vs_compiled\": {nat_speedup:.2},");
        }
        None => {
            let _ = writeln!(json, "  \"native_pkts_per_sec\": null,");
            let _ = writeln!(json, "  \"speedup_native_vs_compiled\": null,");
        }
    }
    let _ = writeln!(json, "  \"stage_cost\": {:?},", compiled.stage_cost);
    json.push_str("  \"threads\": [\n");
    for (i, (t, pps, scaling, bpps, bscaling)) in thread_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {t}, \"pkts_per_sec\": {pps:.0}, \"scaling_vs_1thread\": {scaling:.2}, \"batched_pkts_per_sec\": {bpps:.0}, \"batched_scaling_vs_1thread\": {bscaling:.2}}}"
        );
        json.push_str(if i + 1 < thread_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");

    // CI floors. The honest perf claims (native ≥ 5x, batched win, ≥3x at
    // 4 threads) come from the full run on a bench host; a loaded 1-core
    // CI runner only has to clear 1x — batching and the shard cap must
    // never make replay *slower* than the scalar sequential path.
    if smoke {
        if let Some((_, nat_speedup)) = native {
            if nat_speedup < 1.0 {
                eprintln!(
                    "simbench: FAIL — native engine is slower than bytecode \
                     ({nat_speedup:.2}x, floor 1.0x)"
                );
                std::process::exit(1);
            }
            println!("smoke gate: native {nat_speedup:.2}x compiled (floor 1.0x) — ok");
        }
        // Allow a 5% measurement-noise band on the batched floor: the
        // gate exists to catch a batched path that *regresses* scalar
        // throughput, not scheduler jitter on a shared runner.
        if batched_speedup < 0.95 {
            eprintln!(
                "simbench: FAIL — batched replay is slower than scalar \
                 ({batched_speedup:.2}x, floor 1.0x)"
            );
            std::process::exit(1);
        }
        println!("smoke gate: batched {batched_speedup:.2}x compiled (floor 1.0x) — ok");
        // The shard-count cap means an oversubscribed request must never
        // fall below the sequential path (same noise band).
        if let Some((_, _, scaling, ..)) = thread_rows.iter().find(|r| r.0 == 8) {
            if *scaling < 0.95 {
                eprintln!(
                    "simbench: FAIL — 8-thread request degrades below sequential \
                     ({scaling:.2}x, floor 1.0x)"
                );
                std::process::exit(1);
            }
            println!("smoke gate: 8-thread request {scaling:.2}x sequential (floor 1.0x) — ok");
        }
    }
}

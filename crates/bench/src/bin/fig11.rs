//! Figure 11 — the application table: lines of code (hand-written P4 vs
//! P4All), compile time, and ILP size (variables, constraints) for
//! NetCache, SketchLearn, PRECISION, and ConQuest.

use p4all_bench::{bench_netcache_options, emit_tsv};
use p4all_core::{loc, Compiler};
use p4all_elastic::apps::{conquest, netcache, precision, sketchlearn};
use p4all_elastic::baselines;
use p4all_pisa::presets;

fn main() {
    let target = presets::paper_eval(1 << 16);
    let apps: Vec<(&str, String, String)> = vec![
        (
            "NetCache",
            netcache::source(&bench_netcache_options()),
            baselines::netcache_p4(),
        ),
        (
            "SketchLearn",
            sketchlearn::source(&Default::default()),
            baselines::sketchlearn_p4(),
        ),
        (
            "Precision",
            precision::source(&Default::default()),
            baselines::precision_p4(),
        ),
        (
            "ConQuest",
            conquest::source(&Default::default()),
            baselines::conquest_p4(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, elastic_src, baseline_src) in apps {
        let compiler = Compiler::new(target.clone());
        match compiler.compile(&elastic_src) {
            Ok(c) => {
                rows.push(format!(
                    "{name}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{:?}",
                    loc(&baseline_src),
                    loc(&elastic_src),
                    loc(&c.p4_text),
                    c.timings.total.as_secs_f64(),
                    c.ilp_stats.num_vars,
                    c.ilp_stats.num_constraints,
                    c.solve_stats.status,
                ));
                eprintln!(
                    "{name}: P4 {} LoC, P4All {} LoC, compile {:.3}s, ILP ({}, {})",
                    loc(&baseline_src),
                    loc(&elastic_src),
                    c.timings.total.as_secs_f64(),
                    c.ilp_stats.num_vars,
                    c.ilp_stats.num_constraints
                );
            }
            Err(e) => {
                rows.push(format!("{name}\t{}\t{}\t-\t-\t-\t-\t{e}", loc(&baseline_src), loc(&elastic_src)));
                eprintln!("{name}: compile failed: {e}");
            }
        }
    }
    emit_tsv(
        "fig11_applications",
        "app\tp4_loc\tp4all_loc\tgenerated_loc\tcompile_s\tilp_vars\tilp_constraints\tstatus",
        &rows,
    );
}

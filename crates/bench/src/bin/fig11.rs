//! Figure 11 — the application table: lines of code (hand-written P4 vs
//! P4All), compile time, and ILP size (variables, constraints) for
//! NetCache, SketchLearn, PRECISION, and ConQuest.
//!
//! Each app is compiled twice — with the sequential solver
//! (`threads = 1`) and with all available cores (`threads = 0`) — so the
//! table records both solve times for the scaling note in EXPERIMENTS.md.
//! Both compiles share one [`CompileCtx`] per app: the thread count only
//! affects the solve pass, so the second compile reuses the cached front
//! half (parse → elaborate → bounds → unroll → depgraph) and re-runs just
//! encode + solve. The per-pass split of the sequential compile is
//! printed for each app.

use p4all_bench::{bench_netcache_options, emit_tsv};
use p4all_core::{loc, CompileCtx, CompileOptions};
use p4all_elastic::apps::{conquest, netcache, precision, sketchlearn};
use p4all_elastic::baselines;
use p4all_pisa::presets;

fn main() {
    let target = presets::paper_eval(1 << 16);
    let apps: Vec<(&str, String, String)> = vec![
        (
            "NetCache",
            netcache::source(&bench_netcache_options()),
            baselines::netcache_p4(),
        ),
        (
            "SketchLearn",
            sketchlearn::source(&Default::default()),
            baselines::sketchlearn_p4(),
        ),
        (
            "Precision",
            precision::source(&Default::default()),
            baselines::precision_p4(),
        ),
        (
            "ConQuest",
            conquest::source(&Default::default()),
            baselines::conquest_p4(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, elastic_src, baseline_src) in apps {
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(0));
        let par_result = ctx.compile(&elastic_src, &target);
        // Same source, same target: the sequential compile below reuses the
        // cached front half and only re-runs encode + solve with 1 thread.
        ctx.options = CompileOptions::default().with_threads(1);
        match ctx.compile(&elastic_src, &target) {
            Ok(c) => {
                let threads = c
                    .solve_stats
                    .telemetry
                    .threads
                    .max(1);
                let (par_solve_s, par_threads) = match &par_result {
                    Ok(p) => (
                        format!("{:.3}", p.timings.solve.as_secs_f64()),
                        p.solve_stats.telemetry.threads,
                    ),
                    Err(_) => ("-".to_string(), threads),
                };
                let pivots = c.solve_stats.telemetry.total_pivots();
                let warm_lps = c.solve_stats.telemetry.total_warm_solves();
                let cuts = c.solve_stats.telemetry.cuts.applied;
                let pc_updates = c.solve_stats.telemetry.cuts.pseudocost_updates;
                rows.push(format!(
                    "{name}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{par_solve_s}\t{par_threads}\t{}\t{}\t{pivots}\t{warm_lps}\t{cuts}\t{pc_updates}\t{:?}",
                    loc(&baseline_src),
                    loc(&elastic_src),
                    loc(&c.p4_text),
                    c.timings.total.as_secs_f64(),
                    c.timings.solve.as_secs_f64(),
                    c.ilp_stats.num_vars,
                    c.ilp_stats.num_constraints,
                    c.solve_stats.status,
                ));
                eprintln!(
                    "{name}: P4 {} LoC, P4All {} LoC, compile {:.3}s \
                     (solve {:.3}s @1t, {par_solve_s}s @{par_threads}t), ILP ({}, {}), \
                     {pivots} pivots ({warm_lps} warm LPs), {} front pass(es) cached",
                    loc(&baseline_src),
                    loc(&elastic_src),
                    c.timings.total.as_secs_f64(),
                    c.timings.solve.as_secs_f64(),
                    c.ilp_stats.num_vars,
                    c.ilp_stats.num_constraints,
                    c.trace.cache_hits(),
                );
                eprintln!("{}", c.trace.render());
            }
            Err(e) => {
                rows.push(format!(
                    "{name}\t{}\t{}\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t{e}",
                    loc(&baseline_src),
                    loc(&elastic_src)
                ));
                eprintln!("{name}: compile failed: {e}");
            }
        }
    }
    emit_tsv(
        "fig11_applications",
        "app\tp4_loc\tp4all_loc\tgenerated_loc\tcompile_s\tsolve_1t_s\tsolve_nt_s\tnt_threads\tilp_vars\tilp_constraints\tlp_pivots\twarm_lps\tcuts_applied\tpseudocost_updates\tstatus",
        &rows,
    );
}

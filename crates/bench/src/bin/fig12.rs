//! Figure 12 — sizes of the NetCache data structures as per-stage memory
//! grows. The ILP should stretch both structures, with the key-value store
//! taking the larger share (its items are 128-bit values vs the sketch's
//! 32-bit counters, and the utility weighs it 0.6 vs 0.4).
//!
//! All eight sweep points share one [`CompileCtx`]: the front half of the
//! pipeline (parse → elaborate → bounds → unroll → depgraph) does not
//! depend on the target's memory size, so only the first point pays for
//! it — the rest re-run just ILP encode + solve (the per-pass split is
//! printed for each point). The shared context also threads each point's
//! incumbent into the next solve's warm start (the `warm_accepted`
//! column records whether the seed survived re-validation).

use p4all_bench::{bench_netcache_options, emit_tsv};
use p4all_core::{CompileCtx, CompileOptions};
use p4all_elastic::apps::netcache;
use p4all_pisa::presets;

fn main() {
    let opts = bench_netcache_options();
    let src = netcache::source(&opts);
    let mut ctx = CompileCtx::new(CompileOptions::default());
    let mut rows = Vec::new();
    for shift in [13u32, 14, 15, 16, 17, 18, 19, 20] {
        let mem = 1u64 << shift;
        let target = presets::paper_eval(mem);
        match ctx.compile(&src, &target) {
            Ok(c) => {
                let r = c.layout.symbol_values["cms_rows"];
                let w = c.layout.symbol_values["cms_cols"];
                let s = c.layout.symbol_values["kv_slices"];
                let k = c.layout.symbol_values["kv_cols"];
                let cms_bits: u64 = c
                    .layout
                    .registers
                    .iter()
                    .filter(|x| x.reg == "cms")
                    .map(|x| x.bits())
                    .sum();
                let kv_bits: u64 = c
                    .layout
                    .registers
                    .iter()
                    .filter(|x| x.reg == "kvs")
                    .map(|x| x.bits())
                    .sum();
                let warm = c.solve_stats.telemetry.warm_start_accepted();
                let pivots = c.solve_stats.telemetry.total_pivots();
                rows.push(format!(
                    "{mem}\t{r}\t{w}\t{}\t{s}\t{k}\t{}\t{cms_bits}\t{kv_bits}\t{}\t{pivots}",
                    r * w,
                    s * k,
                    warm as u8
                ));
                eprintln!(
                    "M={mem}: cms {r}x{w} ({} counters, {cms_bits}b), kv {s}x{k} ({} items, {kv_bits}b) \
                     [warm_accepted={warm}, {pivots} pivots, {} front pass(es) cached]",
                    r * w,
                    s * k,
                    c.trace.cache_hits(),
                );
                eprintln!("{}", c.trace.render());
            }
            Err(e) => {
                rows.push(format!("{mem}\t-\t-\t-\t-\t-\t-\t-\t- ({e})\t-\t-"));
                eprintln!("M={mem}: {e}");
            }
        }
    }
    emit_tsv(
        "fig12_elastic_stretch",
        "mem_bits_per_stage\tcms_rows\tcms_cols\tcms_counters\tkv_slices\tkv_cols\tkv_items\tcms_bits\tkv_bits\twarm_accepted\tlp_pivots",
        &rows,
    );
}

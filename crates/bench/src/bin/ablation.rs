//! Ablation — ILP vs greedy first-fit allocation (§6.1's
//! "competitive with hand-optimized code" claim, quantified).
//!
//! For each application, both allocators place the same unrolled program
//! on the same target; utilities are evaluated at each allocator's chosen
//! symbolic values. The ILP must never lose; the gap is the value of exact
//! optimization.

use p4all_bench::{bench_netcache_options, emit_tsv};
use p4all_core::{evaluate_utility, Compiler};
use p4all_elastic::apps::{conquest, netcache, precision, sketchlearn};
use p4all_pisa::presets;

fn main() {
    let target = presets::paper_eval(1 << 16);
    let apps: Vec<(&str, String)> = vec![
        ("NetCache", netcache::source(&bench_netcache_options())),
        ("SketchLearn", sketchlearn::source(&Default::default())),
        ("Precision", precision::source(&Default::default())),
        ("ConQuest", conquest::source(&Default::default())),
    ];

    let mut rows = Vec::new();
    for (name, src) in apps {
        let compiler = Compiler::new(target.clone());
        let program = p4all_lang::parse(&src).expect("app sources parse");
        let utility = program.optimize.clone().expect("apps declare a utility");
        let ilp = compiler.compile(&src);
        let greedy = compiler.compile_greedy(&src);
        match (ilp, greedy) {
            (Ok(c), Ok(g)) => {
                let u_ilp = evaluate_utility(&utility, &c.layout.symbol_values).unwrap_or(0.0);
                let u_greedy = evaluate_utility(&utility, &g.symbol_values).unwrap_or(0.0);
                assert!(
                    u_ilp >= u_greedy - 1e-9,
                    "{name}: ILP ({u_ilp}) lost to greedy ({u_greedy})"
                );
                let gap = if u_ilp > 0.0 { 100.0 * (u_ilp - u_greedy) / u_ilp } else { 0.0 };
                rows.push(format!("{name}\t{u_ilp:.1}\t{u_greedy:.1}\t{gap:.1}%"));
                eprintln!("{name}: ILP {u_ilp:.1} vs greedy {u_greedy:.1} (gap {gap:.1}%)");
            }
            (i, g) => {
                let why = format!(
                    "ilp: {}, greedy: {}",
                    i.err().map(|e| e.to_string()).unwrap_or_else(|| "ok".into()),
                    g.err().map(|e| e.to_string()).unwrap_or_else(|| "ok".into())
                );
                rows.push(format!("{name}\t-\t-\t- ({why})"));
                eprintln!("{name}: {why}");
            }
        }
    }
    emit_tsv("ablation_ilp_vs_greedy", "app\tilp_utility\tgreedy_utility\tgap", &rows);
}

//! # p4all-bench — shared harness for the evaluation reproduction
//!
//! Helpers used by the figure binaries (`fig4`, `fig11`, `fig12`, `fig13`,
//! `ablation`) and the criterion benches: app compilation shortcuts, the
//! NetCache simulation loop, and TSV result emission.

use std::io::Write as _;
use std::path::Path;

use p4all_core::{Compilation, Compiler};
use p4all_elastic::apps::netcache::{self, NetCacheOptions};
use p4all_pisa::TargetSpec;
use p4all_sim::{NetCacheConfig, NetCacheRuntime, Phv, Switch};
use p4all_workloads::Trace;

/// Convert the app's naming bundle into the simulator's runtime config.
pub fn netcache_sim_config(
    opts: &NetCacheOptions,
    promote_threshold: u64,
    epoch_packets: usize,
) -> NetCacheConfig {
    let names = netcache::runtime_config(opts);
    NetCacheConfig {
        cache_table: names.cache_table,
        hit_action: names.hit_action,
        hit_flag_meta: names.hit_flag_meta,
        min_meta: names.min_meta,
        slice_meta: names.slice_meta,
        idx_meta: names.idx_meta,
        value_meta: names.value_meta,
        kv_register: names.kv_register,
        cms_register: names.cms_register,
        key_header: names.key_header,
        promote_threshold,
        epoch_packets,
    }
}

/// Harness error: a typed compile failure or a simulator-setup message.
pub type BenchError = Box<dyn std::error::Error>;

/// Compile NetCache and wrap it in its runtime.
pub fn build_netcache(
    opts: &NetCacheOptions,
    target: &TargetSpec,
    promote_threshold: u64,
    epoch_packets: usize,
) -> Result<(NetCacheRuntime, Compilation), BenchError> {
    let src = netcache::source(opts);
    let c = Compiler::new(target.clone()).compile(&src)?;
    let program = p4all_lang::parse(&src)?;
    let switch = Switch::build(&c.concrete, &program)
        .map_err(|e| format!("simulator build failed: {e}"))?;
    let rt =
        NetCacheRuntime::new(switch, netcache_sim_config(opts, promote_threshold, epoch_packets))
            .map_err(|e| format!("runtime init failed: {e}"))?;
    Ok((rt, c))
}

/// Compile NetCache and return the bare switch (no control-plane runtime)
/// plus its key-header name — the setup for raw pipeline throughput work
/// via [`Switch::run_trace`].
pub fn build_netcache_switch(
    opts: &NetCacheOptions,
    target: &TargetSpec,
) -> Result<(Switch, String), BenchError> {
    let src = netcache::source(opts);
    let c = Compiler::new(target.clone()).compile(&src)?;
    let program = p4all_lang::parse(&src)?;
    let switch = Switch::build(&c.concrete, &program)
        .map_err(|e| format!("simulator build failed: {e}"))?;
    Ok((switch, netcache::runtime_config(opts).key_header))
}

/// Pre-build the PHV inputs for a workload trace (replay-ready form for
/// [`Switch::run_trace`], so trace construction stays out of the timing).
pub fn phv_trace(sw: &Switch, key_header: &str, trace: &Trace) -> Vec<Phv> {
    trace
        .packets
        .iter()
        .map(|p| sw.make_packet(&[(key_header, p.key)]).expect("trace packet builds"))
        .collect()
}

/// Run a trace through a NetCache runtime; returns the final hit rate.
pub fn run_netcache(rt: &mut NetCacheRuntime, trace: &Trace) -> f64 {
    for p in &trace.packets {
        rt.process(p.key, p.value).expect("simulation must not fault");
    }
    rt.stats().hit_rate()
}

/// Write TSV rows to `results/<name>.tsv` (best effort) and echo to stdout.
pub fn emit_tsv(name: &str, header: &str, rows: &[String]) {
    println!("# {name}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.tsv"))) {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
        }
    }
}

/// NetCache options sized so bench-harness ILPs stay small while leaving
/// the interesting dimensions elastic.
pub fn bench_netcache_options() -> NetCacheOptions {
    let mut opts = NetCacheOptions::default();
    opts.cms.max_rows = 3;
    opts.kvs.max_slices = Some(4);
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_pisa::presets;
    use p4all_workloads::zipf_trace;

    #[test]
    fn netcache_harness_end_to_end() {
        let opts = bench_netcache_options();
        let target = presets::paper_eval(1 << 15);
        let (mut rt, c) = build_netcache(&opts, &target, 4, 0).unwrap();
        assert!(c.layout.symbol_values["kv_slices"] >= 1);
        let trace = zipf_trace(2_000, 1.1, 20_000, 42);
        let hit_rate = run_netcache(&mut rt, &trace);
        assert!(hit_rate > 0.1, "Zipf trace should produce hits, got {hit_rate}");
    }

    /// The benchmark's NetCache program must stay eligible for SoA batch
    /// execution — `simbench`'s `batched_pkts_per_sec` row (and its CI
    /// smoke gate) silently measures the scalar fallback otherwise.
    #[test]
    fn netcache_bench_program_is_batch_safe() {
        let opts = bench_netcache_options();
        let target = presets::paper_eval(1 << 15);
        let (sw, _) = build_netcache_switch(&opts, &target).unwrap();
        assert!(sw.batch_safe(), "NetCache bench program must admit batched replay");
    }
}

//! Criterion bench: packet throughput of the behavioral simulator running
//! the compiled NetCache pipeline — the end-to-end runtime loop, plus the
//! raw `run_trace` replay engine across backends and thread counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use p4all_bench::{bench_netcache_options, build_netcache, build_netcache_switch, phv_trace};
use p4all_pisa::presets;
use p4all_sim::Backend;
use p4all_workloads::zipf_trace;

fn bench_netcache_sim(c: &mut Criterion) {
    let target = presets::paper_eval(1 << 15);
    let opts = bench_netcache_options();
    let (mut rt, _) = build_netcache(&opts, &target, 4, 0).expect("netcache builds");
    let trace = zipf_trace(5_000, 1.0, 10_000, 99);

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("netcache_pipeline", |b| {
        b.iter(|| {
            for p in &trace.packets {
                let r = rt.process(p.key, p.value).expect("sim");
                std::hint::black_box(r);
            }
        })
    });
    group.finish();
}

/// Backend × thread-count matrix over `Switch::run_trace`: the reference
/// interpreter vs the bytecode engine, then the bytecode engine sharded
/// across every available core.
fn bench_sim_throughput(c: &mut Criterion) {
    let target = presets::paper_eval(1 << 15);
    let opts = bench_netcache_options();
    let (mut sw, key) = build_netcache_switch(&opts, &target).expect("netcache builds");
    let trace = zipf_trace(5_000, 0.99, 20_000, 7);
    let phvs = phv_trace(&sw, &key, &trace);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(phvs.len() as u64));
    sw.set_backend(Backend::Interp);
    group.bench_function("interp/1thread", |b| {
        b.iter(|| std::hint::black_box(sw.run_trace(&phvs, 1)))
    });
    sw.set_backend(Backend::Compiled);
    group.bench_function("compiled/1thread", |b| {
        b.iter(|| std::hint::black_box(sw.run_trace(&phvs, 1)))
    });
    if cores > 1 {
        group.bench_function(format!("compiled/{cores}threads"), |b| {
            b.iter(|| std::hint::black_box(sw.run_trace(&phvs, cores)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_netcache_sim, bench_sim_throughput);
criterion_main!(benches);

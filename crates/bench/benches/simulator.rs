//! Criterion bench: packet throughput of the behavioral simulator running
//! the compiled NetCache pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use p4all_bench::{bench_netcache_options, build_netcache};
use p4all_pisa::presets;
use p4all_workloads::zipf_trace;

fn bench_netcache_sim(c: &mut Criterion) {
    let target = presets::paper_eval(1 << 15);
    let opts = bench_netcache_options();
    let (mut rt, _) = build_netcache(&opts, &target, 4, 0).expect("netcache builds");
    let trace = zipf_trace(5_000, 1.0, 10_000, 99);

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("netcache_pipeline", |b| {
        b.iter(|| {
            for p in &trace.packets {
                let r = rt.process(p.key, p.value).expect("sim");
                std::hint::black_box(r);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_netcache_sim);
criterion_main!(benches);

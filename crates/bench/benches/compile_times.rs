//! Criterion bench: end-to-end compile time per application (the compile
//! time column of Figure 11, measured rather than one-shot).

use criterion::{criterion_group, criterion_main, Criterion};

use p4all_bench::bench_netcache_options;
use p4all_core::Compiler;
use p4all_elastic::apps::{conquest, netcache, precision, sketchlearn};
use p4all_pisa::presets;

fn bench_compiles(c: &mut Criterion) {
    let target = presets::paper_eval(1 << 16);
    let apps: Vec<(&str, String)> = vec![
        ("netcache", netcache::source(&bench_netcache_options())),
        ("sketchlearn", sketchlearn::source(&Default::default())),
        ("precision", precision::source(&Default::default())),
        ("conquest", conquest::source(&Default::default())),
    ];
    let mut group = c.benchmark_group("compile_times");
    group.sample_size(10);
    for (name, src) in apps {
        let compiler = Compiler::new(target.clone());
        group.bench_function(name, |b| {
            b.iter(|| {
                let c = compiler.compile(std::hint::black_box(&src)).expect("compiles");
                std::hint::black_box(c.layout.objective)
            })
        });
    }
    group.finish();
}

fn bench_frontend_only(c: &mut Criterion) {
    let src = netcache::source(&bench_netcache_options());
    c.bench_function("parse_netcache", |b| {
        b.iter(|| p4all_lang::parse(std::hint::black_box(&src)).expect("parses"))
    });
}

criterion_group!(benches, bench_compiles, bench_frontend_only);
criterion_main!(benches);

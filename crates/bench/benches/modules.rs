//! Criterion bench: the Rust reference data structures (sanity substrate —
//! these are the ground-truth implementations the simulator is validated
//! against).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use p4all_elastic::modules::bloom::BloomFilter;
use p4all_elastic::modules::cms::CountMinSketch;
use p4all_elastic::modules::hashtable::MultiStageHashTable;

fn bench_cms(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_cms");
    group.throughput(Throughput::Elements(1));
    let mut cms = CountMinSketch::new(4, 4096);
    let mut k = 0u64;
    group.bench_function("insert", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(cms.insert(k % 10_000))
        })
    });
    group.bench_function("estimate", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(cms.estimate(k % 10_000))
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_bloom");
    group.throughput(Throughput::Elements(1));
    let mut bf = BloomFilter::new(4, 1 << 16);
    let mut k = 0u64;
    group.bench_function("insert", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            bf.insert(k % 50_000);
        })
    });
    group.bench_function("contains", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(bf.contains(k % 50_000))
        })
    });
    group.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_hashtable");
    group.throughput(Throughput::Elements(1));
    let mut ht = MultiStageHashTable::new(3, 4096);
    let mut k = 0u64;
    group.bench_function("observe", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(ht.observe(k % 9_999 + 1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cms, bench_bloom, bench_hashtable);
criterion_main!(benches);

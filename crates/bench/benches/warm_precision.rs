//! Tracking benchmark for the Precision warm-solve regression.
//!
//! `BENCH_ilp.json` records Precision as the one evaluation app where the
//! warm-started dual simplex *loses* to the cold path (0.44x: the warm
//! solve explores 27 branch-and-bound nodes and 41 LP solves where the
//! cold solve closes at the root with 5). This bench keeps both variants
//! measurable side by side so the eventual fix has a number to move;
//! `tests/warm_start_regression.rs` holds the red/green assertions.

use criterion::{criterion_group, criterion_main, Criterion};

use p4all_core::{CompileCtx, CompileOptions};
use p4all_elastic::apps::precision;
use p4all_pisa::presets;

fn options(warm_lp: bool) -> CompileOptions {
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.warm_lp = warm_lp;
    o
}

fn bench_precision_solves(c: &mut Criterion) {
    let src = precision::source(&Default::default());
    let target = presets::paper_eval(1 << 16);
    let mut group = c.benchmark_group("warm_precision");
    group.sample_size(10);
    for (name, warm_lp) in [("cold", false), ("warm", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ctx = CompileCtx::new(options(warm_lp));
                let out = ctx.compile(&src, &target).expect("precision compiles");
                std::hint::black_box(out.solve_stats.nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precision_solves);
criterion_main!(benches);

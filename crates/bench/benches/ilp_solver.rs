//! Criterion bench: MILP solver scaling on two instance families —
//! knapsacks (pure binaries) and stage-placement chains (the compiler's
//! actual structure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use p4all_ilp::{solve, solve_with, LinExpr, Model, Sense, SolveOptions, SolveStatus};

fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut cap = LinExpr::zero();
    let mut obj = LinExpr::zero();
    for i in 0..n {
        let x = m.binary(format!("x{i}"));
        cap += LinExpr::term(x, ((i * 7 + 3) % 11 + 1) as f64);
        obj += LinExpr::term(x, ((i * 5 + 2) % 13 + 1) as f64);
    }
    m.le("cap", cap, (3 * n) as f64);
    m.set_objective(obj, Sense::Maximize);
    m
}

/// A placement chain: `n` actions, each strictly after the previous, over
/// `stages` stages, maximizing placements (mirrors the compiler's
/// precedence structure).
fn placement_chain(n: usize, stages: usize) -> Model {
    let mut m = Model::new();
    let xs: Vec<Vec<_>> = (0..n)
        .map(|a| (0..stages).map(|s| m.binary(format!("x{a}_{s}"))).collect())
        .collect();
    let mut obj = LinExpr::zero();
    for a in 0..n {
        let placed = LinExpr::sum(xs[a].iter().map(|&v| LinExpr::from(v)));
        m.le(format!("once{a}"), placed.clone(), 1.0);
        obj += placed;
        if a > 0 {
            for s in 0..stages {
                let mut earlier = LinExpr::zero();
                for &prev in &xs[a - 1][..s] {
                    earlier += LinExpr::from(prev);
                }
                m.le(format!("prec{a}_{s}"), LinExpr::from(xs[a][s]) - earlier, 0.0);
            }
        }
    }
    m.set_objective(obj, Sense::Maximize);
    m
}

fn bench_knapsacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_knapsack");
    group.sample_size(10);
    for n in [10usize, 20, 30] {
        let m = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let out = solve(m).expect("solve");
                assert_eq!(out.status, SolveStatus::Optimal);
                std::hint::black_box(out.nodes)
            })
        });
    }
    group.finish();
}

fn bench_placements(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_placement_chain");
    group.sample_size(10);
    for (n, stages) in [(6usize, 8usize), (10, 12), (12, 16)] {
        let m = placement_chain(n, stages);
        group.bench_with_input(
            BenchmarkId::new("chain", format!("{n}x{stages}")),
            &m,
            |b, m| {
                b.iter(|| {
                    let out = solve(m).expect("solve");
                    assert_eq!(out.status, SolveStatus::Optimal);
                    std::hint::black_box(out.lp_solves)
                })
            },
        );
    }
    group.finish();
}

/// Thread scaling on the hardest placement chain: sequential (1 thread)
/// vs all cores, in both parallel modes. On a single-core container the
/// interesting number is the synchronization overhead, not a speedup; on
/// multi-core hardware this is the 1t-vs-Nt column for EXPERIMENTS.md.
fn bench_thread_scaling(c: &mut Criterion) {
    let m = placement_chain(10, 12);
    let auto = SolveOptions::default().effective_threads();
    let mut group = c.benchmark_group("ilp_threads");
    group.sample_size(10);
    let configs = [
        ("1t_sequential", 1usize, true),
        ("nt_deterministic", auto, true),
        ("nt_free", auto, false),
    ];
    for (label, threads, deterministic) in configs {
        let opts = SolveOptions { threads, deterministic, ..SolveOptions::default() };
        group.bench_with_input(BenchmarkId::new(label, threads), &m, |b, m| {
            b.iter(|| {
                let out = solve_with(m, &opts).expect("solve");
                assert_eq!(out.status, SolveStatus::Optimal);
                std::hint::black_box(out.nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knapsacks, bench_placements, bench_thread_scaling);
criterion_main!(benches);

//! Built-in target specifications.
//!
//! The paper evaluates against the Barefoot Tofino; since that design is
//! proprietary, its target specification (like the paper's own, §5) is an
//! approximation built from public product documentation plus the concrete
//! parameter values the paper states for each experiment.

use crate::target::{AluCostModel, TargetSpec};

/// The worked example of §4: `S = 3`, `M = 2048` bits per stage,
/// `F = L = 2`, `P = 4096` bits. Used by the compiler's unit tests to
/// mirror Figure 9's unrolling walkthrough.
pub fn paper_example() -> TargetSpec {
    TargetSpec {
        name: "paper-example".into(),
        stages: 3,
        memory_bits: 2048,
        stateful_alus: 2,
        stateless_alus: 2,
        phv_bits: 4096,
        phv_fixed_bits: 0,
        alu_costs: AluCostModel::tofino_like(),
    }
}

/// The evaluation target of §6.2 (Figure 12): ten stages, four stateful
/// ALUs, 100 stateless ALUs, 4096-bit PHV, with per-stage memory `M`
/// supplied by the caller (the Figure 12 sweep varies it).
pub fn paper_eval(memory_bits: u64) -> TargetSpec {
    TargetSpec {
        name: format!("paper-eval-{memory_bits}b"),
        stages: 10,
        memory_bits,
        stateful_alus: 4,
        stateless_alus: 100,
        phv_bits: 4096,
        phv_fixed_bits: 512,
        alu_costs: AluCostModel::tofino_like(),
    }
}

/// Figure 13's fixed operating point: 1.75 Mb of register memory per stage.
pub fn paper_eval_fig13() -> TargetSpec {
    paper_eval(1_750_000)
}

/// A Tofino-like production target: 12 stages, 1.3 MB of SRAM per stage
/// usable as register memory, 4 stateful ALUs, generous stateless budget,
/// 4 Kb PHV.
pub fn tofino_like() -> TargetSpec {
    TargetSpec {
        name: "tofino-like".into(),
        stages: 12,
        memory_bits: 10_400_000, // 1.3 MB
        stateful_alus: 4,
        stateless_alus: 128,
        phv_bits: 4096,
        phv_fixed_bits: 768,
        alu_costs: AluCostModel::tofino_like(),
    }
}

/// A deliberately small "edge" target for portability experiments: few
/// stages, little memory. Elastic programs should still compile here, just
/// with smaller structures.
pub fn small_switch() -> TargetSpec {
    TargetSpec {
        name: "small-switch".into(),
        stages: 6,
        memory_bits: 262_144, // 32 KB
        stateful_alus: 2,
        stateless_alus: 16,
        phv_bits: 2048,
        phv_fixed_bits: 256,
        alu_costs: AluCostModel::tofino_like(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for t in [paper_example(), paper_eval(1 << 20), paper_eval_fig13(), tofino_like(), small_switch()] {
            t.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn eval_preset_matches_paper_parameters() {
        let t = paper_eval(1_000_000);
        assert_eq!(t.stages, 10);
        assert_eq!(t.stateful_alus, 4);
        assert_eq!(t.stateless_alus, 100);
        assert_eq!(t.phv_bits, 4096);
        assert_eq!(t.memory_bits, 1_000_000);
    }

    #[test]
    fn fig13_memory_is_1_75_mb() {
        assert_eq!(paper_eval_fig13().memory_bits, 1_750_000);
    }
}

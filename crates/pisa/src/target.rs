//! PISA target specification.
//!
//! Figure 3 of the paper defines a generic PISA model by five parameters:
//!
//! | symbol | meaning                                         |
//! |--------|-------------------------------------------------|
//! | `S`    | number of pipeline stages                       |
//! | `M`    | register memory per stage (bits)                |
//! | `F`    | stateful ALUs per stage                         |
//! | `L`    | stateless ALUs per stage                        |
//! | `P`    | packet header vector size (bits)                |
//!
//! plus two functions `H_f(a)` / `H_l(a)` giving the number of stateful and
//! stateless ALUs an action `a` needs on this target. Actions in the P4All
//! compiler are sequences of primitive operations, so the cost functions are
//! expressed per [`PrimitiveOp`] and summed.

use std::fmt;

/// Primitive data-plane operations that actions are composed of. The target
/// charges each of them a (stateful, stateless) ALU cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveOp {
    /// Compute a hash of header/metadata fields into a metadata field.
    Hash,
    /// Read a register cell into metadata.
    RegisterRead,
    /// Write a metadata/constant value into a register cell.
    RegisterWrite,
    /// Read-modify-write on a register cell (e.g. increment). PISA stateful
    /// ALUs perform this in one shot.
    RegisterRmw,
    /// Pure metadata/header arithmetic or move.
    MetaWrite,
    /// Comparison feeding a branch (gateway) condition.
    Compare,
    /// Match-action table lookup dispatch.
    TableMatch,
}

impl PrimitiveOp {
    /// All primitive operations (for exhaustive iteration in tests).
    pub const ALL: [PrimitiveOp; 7] = [
        PrimitiveOp::Hash,
        PrimitiveOp::RegisterRead,
        PrimitiveOp::RegisterWrite,
        PrimitiveOp::RegisterRmw,
        PrimitiveOp::MetaWrite,
        PrimitiveOp::Compare,
        PrimitiveOp::TableMatch,
    ];
}

/// Target-specific ALU cost model: the `H_f` / `H_l` functions of the paper,
/// factored over primitive operations.
#[derive(Debug, Clone, PartialEq)]
pub struct AluCostModel {
    hash: (u32, u32),
    register_read: (u32, u32),
    register_write: (u32, u32),
    register_rmw: (u32, u32),
    meta_write: (u32, u32),
    compare: (u32, u32),
    table_match: (u32, u32),
}

impl AluCostModel {
    /// Cost model of a Tofino-like target: register accesses occupy one
    /// stateful ALU, hashing and header manipulation occupy stateless ALUs.
    pub fn tofino_like() -> Self {
        AluCostModel {
            hash: (0, 1),
            register_read: (1, 0),
            register_write: (1, 0),
            register_rmw: (1, 0),
            meta_write: (0, 1),
            compare: (0, 1),
            table_match: (0, 1),
        }
    }

    /// `(H_f, H_l)` of one primitive.
    pub fn cost(&self, op: PrimitiveOp) -> (u32, u32) {
        match op {
            PrimitiveOp::Hash => self.hash,
            PrimitiveOp::RegisterRead => self.register_read,
            PrimitiveOp::RegisterWrite => self.register_write,
            PrimitiveOp::RegisterRmw => self.register_rmw,
            PrimitiveOp::MetaWrite => self.meta_write,
            PrimitiveOp::Compare => self.compare,
            PrimitiveOp::TableMatch => self.table_match,
        }
    }

    /// `H_f(a)`: stateful ALUs needed by an action made of `ops`.
    pub fn stateful_cost<'a, I: IntoIterator<Item = &'a PrimitiveOp>>(&self, ops: I) -> u32 {
        ops.into_iter().map(|&op| self.cost(op).0).sum()
    }

    /// `H_l(a)`: stateless ALUs needed by an action made of `ops`.
    pub fn stateless_cost<'a, I: IntoIterator<Item = &'a PrimitiveOp>>(&self, ops: I) -> u32 {
        ops.into_iter().map(|&op| self.cost(op).1).sum()
    }
}

/// A PISA target: Figure 3 parameters plus the ALU cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// Human-readable target name (appears in diagnostics and reports).
    pub name: String,
    /// `S`: number of pipeline stages.
    pub stages: usize,
    /// `M`: register memory per stage, in bits.
    pub memory_bits: u64,
    /// `F`: stateful ALUs per stage.
    pub stateful_alus: u32,
    /// `L`: stateless ALUs per stage.
    pub stateless_alus: u32,
    /// `P`: packet header vector size, in bits.
    pub phv_bits: u64,
    /// PHV bits consumed by fixed (inelastic) headers/metadata; elastic
    /// structures may use `phv_bits - phv_fixed_bits` (the paper's
    /// `P - P_fixed`).
    pub phv_fixed_bits: u64,
    /// ALU cost functions `H_f` / `H_l`.
    pub alu_costs: AluCostModel,
}

impl TargetSpec {
    /// Total ALUs on the target: `(F + L) * S` — the budget used by the
    /// loop-unrolling criterion (2) in §4.2.
    pub fn total_alus(&self) -> u64 {
        (self.stateful_alus as u64 + self.stateless_alus as u64) * self.stages as u64
    }

    /// PHV bits available to elastic structures.
    pub fn phv_elastic_bits(&self) -> u64 {
        self.phv_bits.saturating_sub(self.phv_fixed_bits)
    }

    /// Validate internal consistency of the spec itself.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages == 0 {
            return Err(format!("target {}: zero pipeline stages", self.name));
        }
        if self.memory_bits == 0 {
            return Err(format!("target {}: zero register memory", self.name));
        }
        if self.stateful_alus == 0 {
            return Err(format!("target {}: zero stateful ALUs", self.name));
        }
        if self.phv_fixed_bits > self.phv_bits {
            return Err(format!(
                "target {}: fixed PHV use {} exceeds PHV size {}",
                self.name, self.phv_fixed_bits, self.phv_bits
            ));
        }
        Ok(())
    }
}

impl fmt::Display for TargetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: S={} M={}b F={} L={} P={}b",
            self.name, self.stages, self.memory_bits, self.stateful_alus, self.stateless_alus,
            self.phv_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_sums_over_ops() {
        let cm = AluCostModel::tofino_like();
        let ops = [PrimitiveOp::Hash, PrimitiveOp::RegisterRmw, PrimitiveOp::MetaWrite];
        assert_eq!(cm.stateful_cost(&ops), 1);
        assert_eq!(cm.stateless_cost(&ops), 2);
    }

    #[test]
    fn all_primitives_have_nonzero_total_cost() {
        let cm = AluCostModel::tofino_like();
        for op in PrimitiveOp::ALL {
            let (f, l) = cm.cost(op);
            assert!(f + l > 0, "{op:?} is free, which would break unroll bounds");
        }
    }

    #[test]
    fn total_alus_formula() {
        let t = crate::presets::paper_example();
        // S=3, F=2, L=2 -> 12
        assert_eq!(t.total_alus(), 12);
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let mut t = crate::presets::paper_example();
        t.stages = 0;
        assert!(t.validate().is_err());
        let mut t = crate::presets::paper_example();
        t.phv_fixed_bits = t.phv_bits + 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn display_is_compact() {
        let t = crate::presets::paper_example();
        let s = format!("{t}");
        assert!(s.contains("S=3"));
        assert!(s.contains("M=2048b"));
    }
}

//! Per-stage resource accounting and layout validation.
//!
//! The compiler's ILP encodes the resource constraints of Figure 10; this
//! module provides an *independent* accounting of a finished layout so that
//! integration tests can re-check every compiled program against the target
//! without trusting the ILP encoding.

use std::fmt;

use crate::target::TargetSpec;

/// Resources consumed inside one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageUsage {
    pub memory_bits: u64,
    pub stateful_alus: u32,
    pub stateless_alus: u32,
}

impl StageUsage {
    /// Accumulate another usage record into this one.
    pub fn absorb(&mut self, other: StageUsage) {
        self.memory_bits += other.memory_bits;
        self.stateful_alus += other.stateful_alus;
        self.stateless_alus += other.stateless_alus;
    }

    /// True if nothing is used.
    pub fn is_empty(&self) -> bool {
        *self == StageUsage::default()
    }
}

/// Resources consumed by a whole pipeline layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineUsage {
    pub stages: Vec<StageUsage>,
    /// PHV bits used by elastic metadata (compared against `P - P_fixed`).
    pub phv_elastic_bits: u64,
}

impl PipelineUsage {
    /// Empty usage for an `n`-stage pipeline.
    pub fn new(n: usize) -> Self {
        PipelineUsage { stages: vec![StageUsage::default(); n], phv_elastic_bits: 0 }
    }

    /// Total register memory across stages.
    pub fn total_memory_bits(&self) -> u64 {
        self.stages.iter().map(|s| s.memory_bits).sum()
    }

    /// Index of the last non-empty stage, if any.
    pub fn last_used_stage(&self) -> Option<usize> {
        self.stages.iter().rposition(|s| !s.is_empty())
    }
}

/// One way a layout oversteps the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceViolation {
    TooManyStages { used: usize, available: usize },
    MemoryOverflow { stage: usize, used: u64, available: u64 },
    StatefulAluOverflow { stage: usize, used: u32, available: u32 },
    StatelessAluOverflow { stage: usize, used: u32, available: u32 },
    PhvOverflow { used: u64, available: u64 },
}

impl fmt::Display for ResourceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceViolation::TooManyStages { used, available } => {
                write!(f, "layout uses {used} stages but target has {available}")
            }
            ResourceViolation::MemoryOverflow { stage, used, available } => {
                write!(f, "stage {stage}: {used} bits of register memory > {available}")
            }
            ResourceViolation::StatefulAluOverflow { stage, used, available } => {
                write!(f, "stage {stage}: {used} stateful ALUs > {available}")
            }
            ResourceViolation::StatelessAluOverflow { stage, used, available } => {
                write!(f, "stage {stage}: {used} stateless ALUs > {available}")
            }
            ResourceViolation::PhvOverflow { used, available } => {
                write!(f, "PHV: {used} elastic bits > {available} available")
            }
        }
    }
}

/// Check a pipeline usage record against a target. Returns every violation
/// (not just the first) so error reports are actionable.
pub fn validate(usage: &PipelineUsage, spec: &TargetSpec) -> Result<(), Vec<ResourceViolation>> {
    let mut violations = Vec::new();
    if usage.stages.len() > spec.stages {
        // Only a violation if an overflowing stage is actually used.
        if usage.last_used_stage().is_some_and(|last| last >= spec.stages) {
            violations.push(ResourceViolation::TooManyStages {
                used: usage.last_used_stage().unwrap() + 1,
                available: spec.stages,
            });
        }
    }
    for (i, s) in usage.stages.iter().enumerate() {
        if s.memory_bits > spec.memory_bits {
            violations.push(ResourceViolation::MemoryOverflow {
                stage: i,
                used: s.memory_bits,
                available: spec.memory_bits,
            });
        }
        if s.stateful_alus > spec.stateful_alus {
            violations.push(ResourceViolation::StatefulAluOverflow {
                stage: i,
                used: s.stateful_alus,
                available: spec.stateful_alus,
            });
        }
        if s.stateless_alus > spec.stateless_alus {
            violations.push(ResourceViolation::StatelessAluOverflow {
                stage: i,
                used: s.stateless_alus,
                available: spec.stateless_alus,
            });
        }
    }
    if usage.phv_elastic_bits > spec.phv_elastic_bits() {
        violations.push(ResourceViolation::PhvOverflow {
            used: usage.phv_elastic_bits,
            available: spec.phv_elastic_bits(),
        });
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::paper_example;

    #[test]
    fn empty_usage_always_fits() {
        let spec = paper_example();
        let usage = PipelineUsage::new(spec.stages);
        assert!(validate(&usage, &spec).is_ok());
    }

    #[test]
    fn memory_overflow_reported_per_stage() {
        let spec = paper_example(); // M = 2048
        let mut usage = PipelineUsage::new(3);
        usage.stages[1].memory_bits = 4096;
        let errs = validate(&usage, &spec).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], ResourceViolation::MemoryOverflow { stage: 1, .. }));
    }

    #[test]
    fn alu_overflows_reported() {
        let spec = paper_example(); // F = L = 2
        let mut usage = PipelineUsage::new(3);
        usage.stages[0].stateful_alus = 3;
        usage.stages[2].stateless_alus = 5;
        let errs = validate(&usage, &spec).unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn phv_overflow_uses_elastic_budget() {
        let mut spec = paper_example();
        spec.phv_fixed_bits = 4000; // leaves 96 elastic bits
        let mut usage = PipelineUsage::new(3);
        usage.phv_elastic_bits = 100;
        let errs = validate(&usage, &spec).unwrap_err();
        assert!(matches!(errs[0], ResourceViolation::PhvOverflow { available: 96, .. }));
    }

    #[test]
    fn extra_empty_stages_are_tolerated() {
        let spec = paper_example(); // 3 stages
        let mut usage = PipelineUsage::new(5);
        usage.stages[2].memory_bits = 1; // last used stage is within budget
        assert!(validate(&usage, &spec).is_ok());
    }

    #[test]
    fn used_stage_beyond_target_rejected() {
        let spec = paper_example();
        let mut usage = PipelineUsage::new(5);
        usage.stages[4].stateful_alus = 1;
        let errs = validate(&usage, &spec).unwrap_err();
        assert!(matches!(errs[0], ResourceViolation::TooManyStages { used: 5, available: 3 }));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = StageUsage { memory_bits: 10, stateful_alus: 1, stateless_alus: 2 };
        a.absorb(StageUsage { memory_bits: 5, stateful_alus: 1, stateless_alus: 0 });
        assert_eq!(a, StageUsage { memory_bits: 15, stateful_alus: 2, stateless_alus: 2 });
    }

    #[test]
    fn last_used_stage() {
        let mut usage = PipelineUsage::new(4);
        assert_eq!(usage.last_used_stage(), None);
        usage.stages[2].stateless_alus = 1;
        assert_eq!(usage.last_used_stage(), Some(2));
    }
}

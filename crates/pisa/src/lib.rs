//! # p4all-pisa — PISA target model
//!
//! A declarative model of a Protocol Independent Switch Architecture
//! pipeline, following Figure 3 of *Elastic Switch Programming with P4All*
//! (HotNets 2020): stage count `S`, per-stage register memory `M`, stateful
//! and stateless ALU counts `F`/`L`, PHV size `P`, and the target's ALU
//! cost functions `H_f`/`H_l`.
//!
//! The crate also provides per-stage resource accounting and an independent
//! layout validator used by the compiler's integration tests, plus preset
//! specifications (the paper's worked example, the §6 evaluation target,
//! and a Tofino-like production profile).

pub mod presets;
pub mod resources;
pub mod target;

pub use resources::{validate, PipelineUsage, ResourceViolation, StageUsage};
pub use target::{AluCostModel, PrimitiveOp, TargetSpec};

//! The committed regression corpus.
//!
//! Every shrunk divergence is written to `tests/fuzz-corpus/` as a pair:
//!
//! - `<kind>-<seed>.p4all` — the minimized source (with a comment header
//!   for humans);
//! - `<kind>-<seed>.meta` — line-oriented replay coordinates: target,
//!   trace seed and length, installed table entries, and optionally a
//!   `known-issue:` marker.
//!
//! The deterministic replay test (`crates/fuzzgen/tests/corpus_replay.rs`)
//! runs every pair through the full oracle forever: a case without a
//! marker must stay clean (the bug it once caught is fixed and must not
//! return); a case *with* a marker must still reproduce its recorded
//! divergence class — if it stops reproducing, the marker is stale and
//! the test demands its removal, so the corpus can never silently rot.

use std::fs;
use std::path::{Path, PathBuf};

use crate::gen::{EntrySpec, FuzzCase, TargetChoice};
use crate::oracle::{run_case, Divergence, OracleOptions, Outcome};

/// One loaded corpus case.
#[derive(Debug)]
pub struct CorpusEntry {
    /// File stem (shared by the `.p4all` / `.meta` pair).
    pub stem: String,
    pub case: FuzzCase,
    /// The divergence class recorded when the case was committed.
    pub kind: String,
    /// Present when the divergence is a documented known issue that is
    /// *expected* to still reproduce.
    pub known_issue: Option<String>,
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("")
}

/// Write a (shrunk) divergent case into `dir`. Returns the `.p4all` path.
pub fn save(dir: &Path, case: &FuzzCase, d: &Divergence) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let stem = format!("{}-{:016x}", d.kind, case.seed);
    let src_path = dir.join(format!("{stem}.p4all"));
    let source = format!(
        "// fuzzgen corpus case — kind: {}\n// seed {} on target {}, trace {}x{}\n\n{}",
        d.kind,
        case.seed,
        case.target.as_str(),
        case.trace_seed,
        case.trace_len,
        case.source()
    );
    fs::write(&src_path, source)?;

    let mut meta = String::new();
    meta.push_str(&format!("kind: {}\n", d.kind));
    meta.push_str(&format!("seed: {}\n", case.seed));
    meta.push_str(&format!("trace_seed: {}\n", case.trace_seed));
    meta.push_str(&format!("trace_len: {}\n", case.trace_len));
    meta.push_str(&format!("target: {}\n", case.target.as_str()));
    for e in &case.entries {
        meta.push_str(&format!("entry: {} {} {}", e.table, e.key, e.action));
        for (n, v) in &e.data {
            meta.push_str(&format!(" {n}={v}"));
        }
        meta.push('\n');
    }
    meta.push_str(&format!("detail: {}\n", first_line(&d.detail)));
    fs::write(dir.join(format!("{stem}.meta")), meta)?;
    Ok(src_path)
}

/// Load every `.meta`/`.p4all` pair in `dir` (sorted by stem for
/// deterministic test order). A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut stems: Vec<String> = match fs::read_dir(dir) {
        Err(_) => return Ok(Vec::new()),
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".meta").map(str::to_string)
            })
            .collect(),
    };
    stems.sort();
    stems.iter().map(|stem| load_entry(dir, stem)).collect()
}

fn load_entry(dir: &Path, stem: &str) -> Result<CorpusEntry, String> {
    let meta_path = dir.join(format!("{stem}.meta"));
    let meta = fs::read_to_string(&meta_path)
        .map_err(|e| format!("{}: {e}", meta_path.display()))?;
    let src_path = dir.join(format!("{stem}.p4all"));
    let src =
        fs::read_to_string(&src_path).map_err(|e| format!("{}: {e}", src_path.display()))?;
    let program = p4all_lang::parse(&src)
        .map_err(|e| format!("{}: {}", src_path.display(), e.render(&src)))?;

    let mut kind = None;
    let mut seed = None;
    let mut trace_seed = None;
    let mut trace_len = None;
    let mut target = None;
    let mut entries = Vec::new();
    let mut known_issue = None;
    for line in meta.lines() {
        let Some((key, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match key {
            "kind" => kind = Some(value.to_string()),
            "seed" => seed = value.parse::<u64>().ok(),
            "trace_seed" => trace_seed = value.parse::<u64>().ok(),
            "trace_len" => trace_len = value.parse::<usize>().ok(),
            "target" => target = TargetChoice::parse(value),
            "known-issue" => known_issue = Some(value.to_string()),
            "entry" => {
                let mut parts = value.split_whitespace();
                let (Some(table), Some(key), Some(action)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("{stem}.meta: malformed entry line `{line}`"));
                };
                let key = key
                    .parse::<u64>()
                    .map_err(|_| format!("{stem}.meta: bad entry key in `{line}`"))?;
                let data = parts
                    .map(|kv| {
                        let (n, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("{stem}.meta: bad entry datum `{kv}`"))?;
                        let v = v
                            .parse::<u64>()
                            .map_err(|_| format!("{stem}.meta: bad entry value `{kv}`"))?;
                        Ok((n.to_string(), v))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                entries.push(EntrySpec {
                    table: table.to_string(),
                    key,
                    action: action.to_string(),
                    data,
                });
            }
            _ => {}
        }
    }
    let missing = |what: &str| format!("{stem}.meta: missing `{what}:` line");
    let kind = kind.ok_or_else(|| missing("kind"))?;
    // A kind the oracle can no longer produce means the case is
    // unreplayable — fail loudly, naming the file, instead of letting the
    // case pass vacuously forever.
    if !crate::oracle::KNOWN_KINDS.contains(&kind.as_str()) {
        return Err(format!(
            "{stem}.meta: unknown divergence kind `{kind}` — the oracle no longer \
             produces this class (known kinds: {})",
            crate::oracle::KNOWN_KINDS.join(", ")
        ));
    }
    Ok(CorpusEntry {
        stem: stem.to_string(),
        case: FuzzCase {
            seed: seed.ok_or_else(|| missing("seed"))?,
            program,
            target: target.ok_or_else(|| missing("target"))?,
            entries,
            trace_seed: trace_seed.ok_or_else(|| missing("trace_seed"))?,
            trace_len: trace_len.ok_or_else(|| missing("trace_len"))?,
        },
        kind,
        known_issue,
    })
}

/// What a corpus replay established.
#[derive(Debug, PartialEq, Eq)]
pub enum ReplayStatus {
    /// The case ran clean (or was skipped on solver budget): the bug it
    /// once caught stays fixed.
    Pass,
    /// A `known-issue:` case reproduced its recorded divergence class, as
    /// expected.
    KnownIssueStillPresent,
}

/// Replay one corpus entry through the full oracle and check it against
/// its expectations. `Err` carries a human-actionable message.
pub fn replay(entry: &CorpusEntry, opts: &OracleOptions) -> Result<ReplayStatus, String> {
    let outcome = run_case(&entry.case, opts);
    match (&entry.known_issue, outcome) {
        (None, Outcome::Divergence(d)) => Err(format!(
            "corpus case `{}` regressed: {} — {}",
            entry.stem,
            d.kind,
            first_line(&d.detail)
        )),
        (None, _) => Ok(ReplayStatus::Pass),
        (Some(_), Outcome::Divergence(d)) if d.kind == entry.kind => {
            Ok(ReplayStatus::KnownIssueStillPresent)
        }
        (Some(_), Outcome::Divergence(d)) => Err(format!(
            "known issue `{}` changed class: recorded {}, now {} — {}",
            entry.stem,
            entry.kind,
            d.kind,
            first_line(&d.detail)
        )),
        (Some(_), other) => Err(format!(
            "known issue `{}` no longer reproduces (outcome {:?}) — it appears fixed; \
             remove the `known-issue:` line from {}.meta so the case guards against regression",
            entry.stem, other, entry.stem
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn save_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("fuzzgen-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let case = generate(42, 16);
        let d = Divergence { kind: "sim-registers".into(), detail: "for the test".into() };
        save(&dir, &case, &d).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        let e = &loaded[0];
        assert_eq!(e.kind, "sim-registers");
        assert_eq!(e.case.seed, case.seed);
        assert_eq!(e.case.trace_seed, case.trace_seed);
        assert_eq!(e.case.trace_len, case.trace_len);
        assert_eq!(e.case.target, case.target);
        assert_eq!(e.case.entries, case.entries);
        assert_eq!(
            e.case.program.strip_spans(),
            case.program.strip_spans(),
            "corpus source must parse back to the saved AST"
        );
        assert!(e.known_issue.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_kind_is_rejected_naming_the_file() {
        let dir = std::env::temp_dir().join(format!("fuzzgen-corpus-badkind-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let case = generate(43, 16);
        let d = Divergence { kind: "sim-registers".into(), detail: "x".into() };
        let src = save(&dir, &case, &d).unwrap();
        let stem = src.file_stem().unwrap().to_str().unwrap().to_string();
        let meta_path = dir.join(format!("{stem}.meta"));
        let meta = fs::read_to_string(&meta_path).unwrap();
        fs::write(&meta_path, meta.replace("kind: sim-registers", "kind: sim-retired")).unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.contains(&format!("{stem}.meta")), "error must name the file: {err}");
        assert!(err.contains("sim-retired"), "error must name the bad kind: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("fuzzgen-corpus-definitely-missing");
        assert!(load_dir(&dir).unwrap().is_empty());
    }
}

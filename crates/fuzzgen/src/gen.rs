//! Seeded generation of well-formed random P4All programs.
//!
//! The generator builds [`Program`] ASTs directly (never source text), so
//! every emitted program is well-formed *by construction*: symbolic roles
//! stay disjoint (count symbolics only bound loops, instance counts, and
//! metadata arrays; size symbolics only size register cells and hash
//! ranges), every declared symbolic is used, every action touches at most
//! one register, controls are declared before use with the entry control
//! last, and all names are unique. Source text is derived through the
//! pretty-printer, which the round-trip property (phase 0 of the oracle)
//! holds to `parse(print(p)) == p` modulo spans.
//!
//! A program is a random mix of four block families, glued by `Main`:
//!
//! - **sketch** — the paper's elastic count-min shape: `rows{k}` ×
//!   `cols{k}` register matrix, hash+RMW update loop, optional guarded
//!   min-scan;
//! - **accumulator** — a fixed-size register with hashed-slot or
//!   fixed-cell read-modify-write (the delta-sum merge workhorse);
//! - **arith** — chains of metadata assignments over random expression
//!   trees, with `/ hdr.d` as an injectable runtime fault;
//! - **table** — an exact-match table with action data bound to metadata
//!   and control-plane-installed entries.
//!
//! Traces are generated with a *prefix property*: packet `i` consumes a
//! fixed number of RNG draws, so truncating a trace during shrinking
//! preserves the packets that remain.

use p4all_lang::ast::*;
use p4all_lang::printer::print_program;
use p4all_lang::Span;
use p4all_pisa::{presets, TargetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which preset target a case compiles against. Stored by name in corpus
/// metadata so a shrunk case replays on the exact same budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetChoice {
    /// 3 tiny stages — exercises the infeasible path.
    PaperExample,
    /// 10 stages, 8 Kb per stage.
    PaperEval13,
    /// 10 stages, 32 Kb per stage — roomy, mostly feasible.
    PaperEval15,
    /// 6 mid-size stages.
    SmallSwitch,
}

impl TargetChoice {
    pub fn to_spec(self) -> TargetSpec {
        match self {
            TargetChoice::PaperExample => presets::paper_example(),
            TargetChoice::PaperEval13 => presets::paper_eval(1 << 13),
            TargetChoice::PaperEval15 => presets::paper_eval(1 << 15),
            TargetChoice::SmallSwitch => presets::small_switch(),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            TargetChoice::PaperExample => "paper_example",
            TargetChoice::PaperEval13 => "paper_eval_13",
            TargetChoice::PaperEval15 => "paper_eval_15",
            TargetChoice::SmallSwitch => "small_switch",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "paper_example" => Some(TargetChoice::PaperExample),
            "paper_eval_13" => Some(TargetChoice::PaperEval13),
            "paper_eval_15" => Some(TargetChoice::PaperEval15),
            "small_switch" => Some(TargetChoice::SmallSwitch),
            _ => None,
        }
    }
}

/// One control-plane entry to install before replay (both backends get
/// identical copies).
#[derive(Debug, Clone, PartialEq)]
pub struct EntrySpec {
    pub table: String,
    pub key: u64,
    pub action: String,
    pub data: Vec<(String, u64)>,
}

/// Everything needed to reproduce one fuzz sample: the program AST, the
/// target, the control-plane state, and the trace coordinates.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    pub seed: u64,
    pub program: Program,
    pub target: TargetChoice,
    pub entries: Vec<EntrySpec>,
    pub trace_seed: u64,
    pub trace_len: usize,
}

impl FuzzCase {
    /// The program as source text (the pretty-printer output).
    pub fn source(&self) -> String {
        print_program(&self.program)
    }
}

/// Header fields every generated program carries (never shrunk, so traces
/// stay replayable on any shrunk descendant of a case).
pub const HEADER_FIELDS: [(&str, u32); 4] = [("key", 32), ("val", 32), ("d", 32), ("aux", 16)];

/// A random trace: per packet `[key, val, d, aux]`, with `d == 0` possible
/// (division faults) at roughly 1-in-5.
pub fn gen_trace(trace_seed: u64, len: usize) -> Vec<[u64; 4]> {
    let mut rng = StdRng::seed_from_u64(trace_seed);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0u64..24);
            let v = rng.gen_range(0u64..1000);
            let d = rng.gen_range(0u64..5);
            let a = rng.gen_range(0u64..256);
            [k, v, d, a]
        })
        .collect()
}

/// A multi-tenant fuzz sample: 2–3 independently generated programs, each
/// wrapped as a weighted tenant and compiled jointly into one pipeline.
///
/// Sub-cases are ordinary [`generate`] outputs; their own target and trace
/// coordinates are superseded by the joint ones here (all tenants replay
/// the same trace, each through its own namespaced header fields).
#[derive(Debug, Clone)]
pub struct JointFuzzCase {
    pub seed: u64,
    /// `(tenant name, utility weight, sub-case)`.
    pub tenants: Vec<(String, f64, FuzzCase)>,
    pub target: TargetChoice,
    pub trace_seed: u64,
    pub trace_len: usize,
}

/// Generate one joint case from a seed. Pure, like [`generate`], and
/// salted so joint case `i` does not reuse single case `i`'s programs.
pub fn generate_joint(seed: u64, trace_len: usize) -> JointFuzzCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a6f_696e_745f_7031);
    let n = rng.gen_range(2usize..=3);
    // Joint pipelines need headroom, so bias toward the roomy presets;
    // the tight ones stay in rotation to exercise the infeasible path.
    let target = match rng.gen_range(0u32..8) {
        0 => TargetChoice::PaperExample,
        1 | 2 => TargetChoice::PaperEval13,
        _ => TargetChoice::PaperEval15,
    };
    const WEIGHTS: [f64; 4] = [0.5, 1.0, 2.0, 3.0];
    let tenants = ["ta", "tb", "tc"][..n]
        .iter()
        .map(|name| {
            let sub_seed = rng.gen::<u64>();
            let weight = WEIGHTS[rng.gen_range(0usize..WEIGHTS.len())];
            (name.to_string(), weight, generate(sub_seed, trace_len))
        })
        .collect();
    let trace_seed = rng.gen::<u64>();
    JointFuzzCase { seed, tenants, target, trace_seed, trace_len }
}

// ------------------------------------------------------- AST shorthands

fn sp() -> Span {
    Span::default()
}

fn int(v: u64) -> Expr {
    Expr::Int(v)
}

fn hdr(f: &str) -> Expr {
    Expr::Header { field: f.into() }
}

fn meta(f: &str) -> Expr {
    Expr::Meta { field: f.into(), index: None }
}

fn meta_at(f: &str, idx: Expr) -> Expr {
    Expr::Meta { field: f.into(), index: Some(Box::new(idx)) }
}

fn ivar() -> Expr {
    Expr::IndexVar("i".into())
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Binary { op, lhs: Box::new(a), rhs: Box::new(b) }
}

fn reg_read(reg: &str, instance: Option<Expr>, cell: Expr) -> Expr {
    Expr::RegisterRead { reg: reg.into(), instance: instance.map(Box::new), cell: Box::new(cell) }
}

fn assign(lhs: LValue, rhs: Expr) -> Stmt {
    Stmt::Assign { lhs, rhs, span: sp() }
}

fn call(name: &str, index: Option<Expr>) -> Stmt {
    Stmt::CallAction { name: name.into(), index, span: sp() }
}

fn apply_control(name: &str) -> Stmt {
    Stmt::ApplyControl { name: name.into(), span: sp() }
}

// ------------------------------------------------------------ generator

/// Generate one fuzz case from a seed. Pure: the same seed always yields
/// the identical case (byte-identical source, entries, and trace).
pub fn generate(seed: u64, trace_len: usize) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = match rng.gen_range(0u32..8) {
        0 => TargetChoice::PaperExample,
        1 | 2 => TargetChoice::PaperEval13,
        3..=5 => TargetChoice::PaperEval15,
        _ => TargetChoice::SmallSwitch,
    };

    let mut p = Program {
        headers: vec![HeaderDecl {
            name: "pkt".into(),
            fields: HEADER_FIELDS.iter().map(|&(n, b)| (n.to_string(), b)).collect(),
            span: sp(),
        }],
        ..Program::default()
    };

    let mut n_sketch = rng.gen_range(0usize..=2);
    let n_acc = rng.gen_range(0usize..=2);
    let n_arith = rng.gen_range(0usize..=2);
    let with_table = rng.gen_bool(0.5);
    if n_sketch + n_acc + n_arith == 0 && !with_table {
        n_sketch = 1;
    }

    let mut main_body = Vec::new();
    let mut opt_terms: Vec<Expr> = Vec::new();
    // Scalar metadata fields already *written* by the time later blocks
    // run — legal leaves for arith expression trees.
    let mut scalar_pool: Vec<String> = Vec::new();
    let mut entries = Vec::new();

    if with_table {
        gen_table(&mut rng, &mut p, &mut main_body, &mut scalar_pool, &mut entries);
    }
    for k in 0..n_sketch {
        gen_sketch(&mut rng, k, &mut p, &mut main_body, &mut opt_terms, &mut scalar_pool);
    }
    for k in 0..n_acc {
        gen_acc(&mut rng, k, &mut p, &mut main_body);
    }
    for k in 0..n_arith {
        gen_arith(&mut rng, k, &mut p, &mut main_body, &mut scalar_pool);
    }

    p.optimize = opt_terms.into_iter().reduce(|a, b| bin(BinOp::Add, a, b));
    p.controls.push(ControlDecl { name: "Main".into(), body: main_body, span: sp() });

    let trace_seed = rng.gen::<u64>();
    FuzzCase { seed, program: p, target, entries, trace_seed, trace_len }
}

/// The elastic count-min shape: `rows{k}` hash+RMW chains over a
/// `cols{k}`-wide register matrix, plus an optional guarded min-scan that
/// leaves the estimate in `sk{k}_min`.
fn gen_sketch(
    rng: &mut StdRng,
    k: usize,
    p: &mut Program,
    main_body: &mut Vec<Stmt>,
    opt_terms: &mut Vec<Expr>,
    scalar_pool: &mut Vec<String>,
) {
    let rows = format!("rows{k}");
    let cols = format!("cols{k}");
    let reg = format!("sk{k}");
    let idx = format!("sk{k}_idx");
    let cnt = format!("sk{k}_cnt");
    let min = format!("sk{k}_min");

    let rows_hi = rng.gen_range(2u64..=3);
    let cols_lo = [8u64, 16, 32][rng.gen_range(0usize..3)];

    p.symbolics.push(SymbolicDecl { name: rows.clone(), span: sp() });
    p.symbolics.push(SymbolicDecl { name: cols.clone(), span: sp() });
    p.assumes.push(Assume {
        expr: bin(
            BinOp::And,
            bin(BinOp::Ge, Expr::Symbolic(rows.clone()), int(1)),
            bin(BinOp::Le, Expr::Symbolic(rows.clone()), int(rows_hi)),
        ),
        span: sp(),
    });
    let cols_bound = bin(BinOp::Ge, Expr::Symbolic(cols.clone()), int(cols_lo));
    p.assumes.push(Assume {
        expr: if rng.gen_bool(0.5) {
            bin(
                BinOp::And,
                cols_bound,
                bin(BinOp::Le, Expr::Symbolic(cols.clone()), int(cols_lo * 4)),
            )
        } else {
            cols_bound
        },
        span: sp(),
    });

    p.metadata.push(MetaField {
        name: idx.clone(),
        bits: 32,
        count: Some(Size::Symbolic(rows.clone())),
        span: sp(),
    });
    p.metadata.push(MetaField {
        name: cnt.clone(),
        bits: 32,
        count: Some(Size::Symbolic(rows.clone())),
        span: sp(),
    });
    p.registers.push(RegisterDecl {
        name: reg.clone(),
        elem_bits: 32,
        cells: Size::Symbolic(cols.clone()),
        instances: Some(Size::Symbolic(rows.clone())),
        span: sp(),
    });

    // hash inputs: always the key, sometimes salted with aux.
    let mut hash_inputs = vec![hdr("key")];
    if rng.gen_bool(0.3) {
        hash_inputs.push(hdr("aux"));
    }
    let delta = if rng.gen_bool(0.7) { int(1) } else { hdr("val") };
    let cell = meta_at(&idx, ivar());
    p.actions.push(ActionDecl {
        name: format!("sk{k}_incr"),
        indexed: true,
        index_param: Some("i".into()),
        body: vec![
            Stmt::HashAssign {
                lhs: LValue::Meta { field: idx.clone(), index: Some(ivar()) },
                inputs: hash_inputs,
                range: Size::Symbolic(cols.clone()),
                span: sp(),
            },
            assign(
                LValue::Register {
                    reg: reg.clone(),
                    instance: Some(ivar()),
                    cell: Box::new(cell.clone()),
                },
                bin(BinOp::Add, reg_read(&reg, Some(ivar()), cell.clone()), delta),
            ),
            assign(
                LValue::Meta { field: cnt.clone(), index: Some(ivar()) },
                reg_read(&reg, Some(ivar()), cell),
            ),
        ],
        span: sp(),
    });
    p.controls.push(ControlDecl {
        name: format!("sk{k}_upd"),
        body: vec![Stmt::For {
            var: "i".into(),
            bound: Size::Symbolic(rows.clone()),
            body: vec![call(&format!("sk{k}_incr"), Some(ivar()))],
            span: sp(),
        }],
        span: sp(),
    });
    main_body.push(apply_control(&format!("sk{k}_upd")));

    if rng.gen_bool(0.6) {
        p.metadata.push(MetaField { name: min.clone(), bits: 32, count: None, span: sp() });
        p.actions.push(ActionDecl {
            name: format!("sk{k}_take"),
            indexed: true,
            index_param: Some("i".into()),
            body: vec![assign(
                LValue::Meta { field: min.clone(), index: None },
                meta_at(&cnt, ivar()),
            )],
            span: sp(),
        });
        p.controls.push(ControlDecl {
            name: format!("sk{k}_scan"),
            body: vec![Stmt::For {
                var: "i".into(),
                bound: Size::Symbolic(rows.clone()),
                body: vec![Stmt::If {
                    cond: bin(
                        BinOp::Or,
                        bin(BinOp::Lt, meta_at(&cnt, ivar()), meta(&min)),
                        bin(BinOp::Eq, meta(&min), int(0)),
                    ),
                    then_body: vec![call(&format!("sk{k}_take"), Some(ivar()))],
                    else_body: vec![],
                    span: sp(),
                }],
                span: sp(),
            }],
            span: sp(),
        });
        main_body.push(apply_control(&format!("sk{k}_scan")));
        scalar_pool.push(min);
    }

    let w = rng.gen_range(1u64..=4);
    let term = bin(BinOp::Mul, Expr::Symbolic(rows), Expr::Symbolic(cols));
    opt_terms.push(if w == 1 { term } else { bin(BinOp::Mul, int(w), term) });
}

/// A fixed-size accumulator register: hashed-slot or fixed-cell RMW,
/// called straight from `Main`.
fn gen_acc(rng: &mut StdRng, k: usize, p: &mut Program, main_body: &mut Vec<Stmt>) {
    let reg = format!("acc{k}");
    let cells = [8u64, 16, 64][rng.gen_range(0usize..3)];
    let elem_bits = if rng.gen_bool(0.5) { 32 } else { 64 };
    p.registers.push(RegisterDecl {
        name: reg.clone(),
        elem_bits,
        cells: Size::Const(cells),
        instances: None,
        span: sp(),
    });
    let delta = if rng.gen_bool(0.5) { hdr("val") } else { int(rng.gen_range(1u64..8)) };
    let body = if rng.gen_bool(0.6) {
        let slot = format!("acc{k}_slot");
        p.metadata.push(MetaField { name: slot.clone(), bits: 32, count: None, span: sp() });
        let cell = meta(&slot);
        vec![
            Stmt::HashAssign {
                lhs: LValue::Meta { field: slot.clone(), index: None },
                inputs: vec![hdr("key")],
                range: Size::Const(cells),
                span: sp(),
            },
            assign(
                LValue::Register { reg: reg.clone(), instance: None, cell: Box::new(cell.clone()) },
                bin(BinOp::Add, reg_read(&reg, None, cell), delta),
            ),
        ]
    } else {
        let cell = int(rng.gen_range(0u64..cells));
        vec![assign(
            LValue::Register { reg: reg.clone(), instance: None, cell: Box::new(cell.clone()) },
            bin(BinOp::Add, reg_read(&reg, None, cell), delta),
        )]
    };
    p.actions.push(ActionDecl {
        name: format!("acc{k}_add"),
        indexed: false,
        index_param: None,
        body,
        span: sp(),
    });
    main_body.push(call(&format!("acc{k}_add"), None));
}

/// A chain of metadata assignments over random expression trees; the
/// whole chain is optionally guarded by a header-dependent branch in
/// `Main`.
fn gen_arith(
    rng: &mut StdRng,
    k: usize,
    p: &mut Program,
    main_body: &mut Vec<Stmt>,
    scalar_pool: &mut Vec<String>,
) {
    let n_terms = rng.gen_range(1usize..=3);
    let mut stmts_in_main = Vec::new();
    for j in 0..n_terms {
        let t = format!("t{k}_{j}");
        p.metadata.push(MetaField { name: t.clone(), bits: 32, count: None, span: sp() });
        let rhs = gen_expr(rng, 2, scalar_pool);
        let body_stmt = assign(LValue::Meta { field: t.clone(), index: None }, rhs);
        let body = if rng.gen_bool(0.3) {
            vec![Stmt::If {
                cond: gen_cond(rng, scalar_pool),
                then_body: vec![body_stmt],
                else_body: if rng.gen_bool(0.5) {
                    vec![assign(
                        LValue::Meta { field: t.clone(), index: None },
                        gen_leaf(rng, scalar_pool),
                    )]
                } else {
                    vec![]
                },
                span: sp(),
            }]
        } else {
            vec![body_stmt]
        };
        p.actions.push(ActionDecl {
            name: format!("t{k}_mix{j}"),
            indexed: false,
            index_param: None,
            body,
            span: sp(),
        });
        stmts_in_main.push(call(&format!("t{k}_mix{j}"), None));
        scalar_pool.push(t);
    }
    p.controls.push(ControlDecl {
        name: format!("t{k}_chain"),
        body: stmts_in_main,
        span: sp(),
    });
    let apply = apply_control(&format!("t{k}_chain"));
    if rng.gen_bool(0.25) {
        main_body.push(Stmt::If {
            cond: bin(BinOp::Lt, hdr("aux"), int(rng.gen_range(16u64..256))),
            then_body: vec![apply],
            else_body: vec![],
            span: sp(),
        });
    } else {
        main_body.push(apply);
    }
}

/// A leaf for arith trees: a header field, an already-written scalar
/// metadata field, or a constant.
fn gen_leaf(rng: &mut StdRng, pool: &[String]) -> Expr {
    match rng.gen_range(0u32..5) {
        0 => hdr("key"),
        1 => hdr("val"),
        2 => hdr("aux"),
        3 if !pool.is_empty() => meta(&pool[rng.gen_range(0usize..pool.len())]),
        _ => int(rng.gen_range(0u64..1000)),
    }
}

/// A random arithmetic expression tree of bounded depth. Division appears
/// with a constant divisor or `hdr.d` — the latter is the fault injector
/// (traces include `d == 0`, which must drop the packet identically on
/// both backends).
fn gen_expr(rng: &mut StdRng, depth: u32, pool: &[String]) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return gen_leaf(rng, pool);
    }
    let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div][rng.gen_range(0usize..4)];
    let lhs = gen_expr(rng, depth - 1, pool);
    let rhs = if op == BinOp::Div {
        if rng.gen_bool(0.3) {
            hdr("d")
        } else {
            int(rng.gen_range(1u64..16))
        }
    } else {
        gen_expr(rng, depth - 1, pool)
    };
    bin(op, lhs, rhs)
}

/// A boolean guard: one comparison, or two glued with `&&`/`||`.
fn gen_cond(rng: &mut StdRng, pool: &[String]) -> Expr {
    let cmp = |rng: &mut StdRng, pool: &[String]| {
        let op = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne]
            [rng.gen_range(0usize..6)];
        let lhs = gen_leaf(rng, pool);
        let rhs = gen_leaf(rng, pool);
        bin(op, lhs, rhs)
    };
    let first = cmp(rng, pool);
    if rng.gen_bool(0.3) {
        let op = if rng.gen_bool(0.5) { BinOp::And } else { BinOp::Or };
        let second = cmp(rng, pool);
        bin(op, first, second)
    } else {
        first
    }
}

/// An exact-match table keyed on `hdr.key` with action data (`tbl_boost`)
/// bound by installed entries, plus the entries themselves.
fn gen_table(
    rng: &mut StdRng,
    p: &mut Program,
    main_body: &mut Vec<Stmt>,
    scalar_pool: &mut Vec<String>,
    entries: &mut Vec<EntrySpec>,
) {
    for (name, bits) in [("tbl_boost", 32u32), ("tbl_flag", 8), ("tbl_acc", 32)] {
        p.metadata.push(MetaField { name: name.into(), bits, count: None, span: sp() });
    }
    p.actions.push(ActionDecl {
        name: "tbl_mark".into(),
        indexed: false,
        index_param: None,
        body: vec![
            assign(LValue::Meta { field: "tbl_flag".into(), index: None }, int(1)),
            assign(
                LValue::Meta { field: "tbl_acc".into(), index: None },
                bin(BinOp::Add, meta("tbl_acc"), meta("tbl_boost")),
            ),
        ],
        span: sp(),
    });
    p.actions.push(ActionDecl {
        name: "tbl_skip".into(),
        indexed: false,
        index_param: None,
        body: vec![assign(LValue::Meta { field: "tbl_flag".into(), index: None }, int(0))],
        span: sp(),
    });
    p.tables.push(TableDecl {
        name: "watch".into(),
        keys: vec![hdr("key")],
        actions: vec!["tbl_mark".into(), "tbl_skip".into()],
        size: 64,
        default_action: Some("tbl_skip".into()),
        span: sp(),
    });
    main_body.push(Stmt::ApplyTable { name: "watch".into(), span: sp() });
    scalar_pool.push("tbl_acc".into());

    let n = rng.gen_range(0usize..8);
    let mut keys: Vec<u64> = Vec::new();
    for _ in 0..n {
        let k = rng.gen_range(0u64..24);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for k in keys {
        entries.push(EntrySpec {
            table: "watch".into(),
            key: k,
            action: "tbl_mark".into(),
            data: vec![("tbl_boost".into(), rng.gen_range(1u64..50))],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20u64 {
            let a = generate(seed, 32);
            let b = generate(seed, 32);
            assert_eq!(a.source(), b.source(), "seed {seed}");
            assert_eq!(a.entries, b.entries, "seed {seed}");
            assert_eq!(a.trace_seed, b.trace_seed, "seed {seed}");
            assert_eq!(gen_trace(a.trace_seed, 32), gen_trace(b.trace_seed, 32));
        }
    }

    #[test]
    fn traces_have_the_prefix_property() {
        let long = gen_trace(7, 64);
        let short = gen_trace(7, 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn generated_programs_parse_back_to_the_same_ast() {
        for seed in 0..50u64 {
            let case = generate(seed, 8);
            let src = case.source();
            let parsed = p4all_lang::parse(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {}\n{src}", e.render(&src)));
            assert_eq!(
                parsed.strip_spans(),
                case.program.strip_spans(),
                "seed {seed} round-trip mismatch\n{src}"
            );
        }
    }

    #[test]
    fn joint_generation_is_deterministic_and_distinct_from_single() {
        for seed in 0..10u64 {
            let a = generate_joint(seed, 16);
            let b = generate_joint(seed, 16);
            assert!((2..=3).contains(&a.tenants.len()), "seed {seed}");
            assert_eq!(a.tenants.len(), b.tenants.len(), "seed {seed}");
            for ((na, wa, ca), (nb, wb, cb)) in a.tenants.iter().zip(&b.tenants) {
                assert_eq!(na, nb);
                assert_eq!(wa, wb);
                assert_eq!(ca.source(), cb.source(), "seed {seed}");
                assert_eq!(ca.entries, cb.entries, "seed {seed}");
            }
            assert_eq!(a.trace_seed, b.trace_seed);
            // The salt keeps joint tenant programs decorrelated from the
            // single-program case at the same seed.
            let single = generate(seed, 16);
            assert_ne!(a.tenants[0].2.source(), single.source(), "seed {seed}");
        }
    }

    #[test]
    fn target_choice_name_round_trips() {
        for t in [
            TargetChoice::PaperExample,
            TargetChoice::PaperEval13,
            TargetChoice::PaperEval15,
            TargetChoice::SmallSwitch,
        ] {
            assert_eq!(TargetChoice::parse(t.as_str()), Some(t));
        }
        assert_eq!(TargetChoice::parse("nope"), None);
    }
}

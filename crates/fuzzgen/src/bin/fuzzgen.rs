//! The fuzzing driver.
//!
//! Generates `--samples` cases from consecutive seeds, runs the full
//! four-way oracle on each (reference interpreter, bytecode engine,
//! generated-Rust native engine, sharded replay), shrinks any
//! divergence, and (optionally)
//! commits the minimized case to the corpus directory. Deterministic:
//! the same `--seed`/`--samples` pair always examines the same cases, so
//! a reported seed replays alone via `--samples 1 --seed <seed>`.
//!
//! Exit codes: `0` all clean, `1` divergences found, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use p4all_fuzzgen::{
    generate, generate_joint, merged_case, run_case, run_joint_case, shrink, Outcome,
    OracleOptions,
};

struct Args {
    samples: u64,
    joint_samples: u64,
    seed: u64,
    trace_len: usize,
    corpus_dir: PathBuf,
    save_corpus: bool,
    do_shrink: bool,
    cross_checks: bool,
    native: bool,
    max_divergences: usize,
    shrink_budget: usize,
    time_limit_s: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            samples: 200,
            joint_samples: 25,
            seed: 1,
            trace_len: 48,
            corpus_dir: PathBuf::from("tests/fuzz-corpus"),
            save_corpus: false,
            do_shrink: true,
            cross_checks: true,
            native: true,
            max_divergences: 5,
            shrink_budget: 300,
            time_limit_s: 10,
        }
    }
}

const USAGE: &str = "\
usage: fuzzgen [options]
  --samples N          number of single-program cases to run (default 200)
  --joint N            number of 2-3-tenant joint cases to run after the
                       single-program samples (default 25)
  --seed S             base seed; case i uses seed S+i (default 1)
  --trace-len L        packets per replay trace (default 48)
  --corpus-dir DIR     where to write shrunk cases (default tests/fuzz-corpus)
  --save-corpus        write shrunk divergent cases into the corpus dir
  --no-shrink          report divergences without minimizing them
  --no-cross           skip the warm/cold and 1/4-thread solver cross-checks
  --no-native          skip the generated-Rust native engine (three-way oracle)
  --max-divergences M  stop after M distinct divergent samples (default 5)
  --shrink-budget B    oracle runs per shrink (default 300)
  --time-limit S       per-solve wall clock cap in seconds (default 10)
  --help               this text";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--samples" => args.samples = val("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?,
            "--joint" => args.joint_samples = val("--joint")?.parse().map_err(|e| format!("--joint: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--trace-len" => args.trace_len = val("--trace-len")?.parse().map_err(|e| format!("--trace-len: {e}"))?,
            "--corpus-dir" => args.corpus_dir = PathBuf::from(val("--corpus-dir")?),
            "--save-corpus" => args.save_corpus = true,
            "--no-shrink" => args.do_shrink = false,
            "--no-cross" => args.cross_checks = false,
            "--no-native" => args.native = false,
            "--max-divergences" => {
                args.max_divergences = val("--max-divergences")?.parse().map_err(|e| format!("--max-divergences: {e}"))?
            }
            "--shrink-budget" => {
                args.shrink_budget = val("--shrink-budget")?.parse().map_err(|e| format!("--shrink-budget: {e}"))?
            }
            "--time-limit" => {
                args.time_limit_s = val("--time-limit")?.parse().map_err(|e| format!("--time-limit: {e}"))?
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzzgen: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut native = args.native;
    if native && !p4all_sim::rustc_available() {
        eprintln!("fuzzgen: rustc not found on PATH — native backend checks skipped (three-way oracle)");
        native = false;
    }
    let opts = OracleOptions {
        time_limit: Duration::from_secs(args.time_limit_s),
        cross_checks: args.cross_checks,
        native,
        ..OracleOptions::default()
    };

    let mut tally = Tally::default();
    for i in 0..args.samples {
        let seed = args.seed.wrapping_add(i);
        let case = generate(seed, args.trace_len);
        let target = case.target.as_str();
        let outcome = run_case(&case, &opts);
        if handle(outcome, seed, "seed", target, Some(&case), &args, &opts, &mut tally) {
            break;
        }
    }
    // The multi-tenant pass: joint-specific kinds (`joint-*`) are
    // reported by seed only; divergences from the shared machinery shrink
    // and save as ordinary cases over the *merged* program, which replays
    // through the standard corpus path.
    if tally.divergences < args.max_divergences {
        for i in 0..args.joint_samples {
            let seed = args.seed.wrapping_add(i);
            let case = generate_joint(seed, args.trace_len);
            let target = case.target.as_str();
            let outcome = run_joint_case(&case, &opts);
            let merged = match outcome.divergence() {
                Some(d) if !d.kind.starts_with("joint-") => merged_case(&case).ok(),
                _ => None,
            };
            if handle(outcome, seed, "joint seed", target, merged.as_ref(), &args, &opts, &mut tally)
            {
                break;
            }
        }
    }

    println!(
        "fuzzgen: {} samples + {} joint from seed {}: {} feasible, {} infeasible, {} skipped, {} divergent",
        args.samples,
        args.joint_samples,
        args.seed,
        tally.clean_feasible,
        tally.clean_infeasible,
        tally.skipped,
        tally.divergences
    );
    if tally.divergences > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Default)]
struct Tally {
    clean_feasible: u64,
    clean_infeasible: u64,
    skipped: u64,
    divergences: usize,
}

/// Record one oracle outcome; on divergence, shrink and save when a
/// shrinkable single-program form of the case is available. Returns true
/// when the divergence budget is exhausted and the run should stop.
#[allow(clippy::too_many_arguments)]
fn handle(
    outcome: Outcome,
    seed: u64,
    label: &str,
    target: &str,
    shrinkable: Option<&p4all_fuzzgen::FuzzCase>,
    args: &Args,
    opts: &OracleOptions,
    tally: &mut Tally,
) -> bool {
    match outcome {
        Outcome::Clean { feasible: true } => tally.clean_feasible += 1,
        Outcome::Clean { feasible: false } => tally.clean_infeasible += 1,
        Outcome::Skipped { reason } => {
            tally.skipped += 1;
            eprintln!("{label} {seed}: skipped ({reason})");
        }
        Outcome::Divergence(d) => {
            tally.divergences += 1;
            eprintln!("== divergence at {label} {seed} (target {target}) ==");
            eprintln!("kind: {}", d.kind);
            eprintln!("{}", d.detail);
            let Some(case) = shrinkable else {
                eprintln!("replay with the fuzzgen --joint path at this seed");
                return tally.divergences >= args.max_divergences;
            };
            let (final_case, final_div) = if args.do_shrink {
                let s = shrink(case, &d, opts, args.shrink_budget);
                eprintln!(
                    "shrunk in {} oracle runs to {} source lines, trace {} packets:",
                    s.oracle_runs,
                    s.case.source().lines().count(),
                    s.case.trace_len
                );
                eprintln!("{}", s.case.source());
                (s.case, s.divergence)
            } else {
                (case.clone(), d)
            };
            if args.save_corpus {
                match p4all_fuzzgen::save(&args.corpus_dir, &final_case, &final_div) {
                    Ok(path) => eprintln!("saved to {}", path.display()),
                    Err(e) => eprintln!("failed to save corpus case: {e}"),
                }
            }
            if tally.divergences >= args.max_divergences {
                eprintln!("stopping after {} divergences", tally.divergences);
                return true;
            }
        }
    }
    false
}

//! Greedy delta-debugging over fuzz cases.
//!
//! A candidate edit is *accepted* when the oracle still reports the same
//! bug class ([`Divergence::same_bug`]); the loop restarts from the
//! smaller case until a full sweep yields no accepted edit or the oracle
//! budget runs out. Edits, most aggressive first:
//!
//! 1. truncate the trace (traces have a prefix property, see
//!    [`crate::gen::gen_trace`]);
//! 2. drop a whole non-entry control (with its `apply` sites);
//! 3. drop a table (with its `apply` sites and installed entries);
//! 4. remove a single statement anywhere (recursively, so a `for` or
//!    `if` subtree counts as one removable node);
//! 5. pin a symbolic to a small constant via a replacement `assume`;
//! 6. drop installed table entries.
//!
//! After every structural edit a mark-and-sweep GC removes newly
//! unreferenced actions, tables, registers, metadata fields, symbolics,
//! their `assume`s, and unreachable controls, and rebuilds the `optimize`
//! expression from the surviving symbolics — so every candidate is again
//! well-formed by construction and the final artifact is minimal enough
//! to read.

use std::collections::BTreeSet;

use p4all_lang::ast::*;
use p4all_lang::Span;

use crate::gen::FuzzCase;
use crate::oracle::{run_case, Divergence, OracleOptions, Outcome};

/// The result of a shrink run: the smallest case still exhibiting the
/// original bug class, its (re-confirmed) divergence, and the number of
/// oracle runs spent.
#[derive(Debug)]
pub struct ShrinkOutcome {
    pub case: FuzzCase,
    pub divergence: Divergence,
    pub oracle_runs: usize,
}

/// Shrink `case` while preserving `bug`'s class. `budget` caps the number
/// of oracle runs (each runs the full compile + replay pipeline).
pub fn shrink(
    case: &FuzzCase,
    bug: &Divergence,
    opts: &OracleOptions,
    budget: usize,
) -> ShrinkOutcome {
    let mut best = case.clone();
    let mut best_div = bug.clone();
    let mut runs = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if runs >= budget {
                break 'outer;
            }
            runs += 1;
            if let Outcome::Divergence(d2) = run_case(&cand, opts) {
                if bug.same_bug(&d2) {
                    best = cand;
                    best_div = d2;
                    continue 'outer;
                }
            }
        }
        break; // full sweep, nothing accepted
    }
    ShrinkOutcome { case: best, divergence: best_div, oracle_runs: runs }
}

/// All single-edit candidates for one round, most aggressive first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let p = &case.program;

    // 1. Trace truncation.
    if case.trace_len > 1 {
        let mut c = case.clone();
        c.trace_len /= 2;
        out.push(c);
        if case.trace_len > 2 {
            let mut c = case.clone();
            c.trace_len = 1;
            out.push(c);
        }
    }

    // 2. Drop a non-entry control.
    if p.controls.len() > 1 {
        for j in 0..p.controls.len() - 1 {
            let name = p.controls[j].name.clone();
            let mut c = case.clone();
            c.program.controls.remove(j);
            strip_applies(&mut c.program, &name, true);
            gc(&mut c);
            out.push(c);
        }
    }

    // 3. Drop a table.
    for t in &p.tables {
        let name = t.name.clone();
        let mut c = case.clone();
        c.program.tables.retain(|x| x.name != name);
        strip_applies(&mut c.program, &name, false);
        gc(&mut c);
        out.push(c);
    }

    // 4. Remove one statement (any position, subtrees count as one node).
    for ci in 0..p.controls.len() {
        for n in 0..count_stmts(&p.controls[ci].body) {
            let mut c = case.clone();
            let mut target = n as isize;
            c.program.controls[ci].body = remove_nth(&p.controls[ci].body, &mut target);
            gc(&mut c);
            out.push(c);
        }
    }
    for ai in 0..p.actions.len() {
        for n in 0..count_stmts(&p.actions[ai].body) {
            let mut c = case.clone();
            let mut target = n as isize;
            c.program.actions[ai].body = remove_nth(&p.actions[ai].body, &mut target);
            gc(&mut c);
            out.push(c);
        }
    }

    // 5. Pin a symbolic to a constant.
    for s in &p.symbolics {
        for v in [1u64, 2, 8] {
            let mut c = case.clone();
            c.program.assumes.retain(|a| {
                let mut syms = Vec::new();
                a.expr.symbolics(&mut syms);
                !syms.contains(&s.name)
            });
            c.program.assumes.push(Assume {
                expr: Expr::Binary {
                    op: BinOp::Eq,
                    lhs: Box::new(Expr::Symbolic(s.name.clone())),
                    rhs: Box::new(Expr::Int(v)),
                },
                span: Span::default(),
            });
            out.push(c);
        }
    }

    // 6. Drop table entries.
    if !case.entries.is_empty() {
        let mut c = case.clone();
        c.entries.clear();
        out.push(c);
        if case.entries.len() > 1 {
            let mut c = case.clone();
            c.entries.truncate(case.entries.len() / 2);
            out.push(c);
        }
    }

    out
}

// ------------------------------------------------------- statement edits

/// Count every statement node (recursive; an `if`/`for` and each nested
/// statement are separate positions).
fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::If { then_body, else_body, .. } => {
                    count_stmts(then_body) + count_stmts(else_body)
                }
                Stmt::For { body, .. } => count_stmts(body),
                _ => 0,
            }
        })
        .sum()
}

/// Rebuild `stmts` with the `target`-th preorder node (and its subtree)
/// removed. The counter decrements at every visited node; once negative,
/// the walk just clones.
fn remove_nth(stmts: &[Stmt], target: &mut isize) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if *target == 0 {
            *target -= 1;
            continue; // drop this node and everything under it
        }
        *target -= 1;
        let kept = match s {
            Stmt::If { cond, then_body, else_body, span } => Stmt::If {
                cond: cond.clone(),
                then_body: remove_nth(then_body, target),
                else_body: remove_nth(else_body, target),
                span: *span,
            },
            Stmt::For { var, bound, body, span } => Stmt::For {
                var: var.clone(),
                bound: bound.clone(),
                body: remove_nth(body, target),
                span: *span,
            },
            other => other.clone(),
        };
        out.push(kept);
    }
    out
}

/// Remove every `name.apply()` site — control applies when `control` is
/// true, table applies otherwise — from all control bodies.
fn strip_applies(p: &mut Program, name: &str, control: bool) {
    for c in &mut p.controls {
        c.body = retain_stmts(&c.body, &|s: &Stmt| match s {
            Stmt::ApplyControl { name: n, .. } => !(control && n == name),
            Stmt::ApplyTable { name: n, .. } => control || n != name,
            _ => true,
        });
    }
}

/// Recursive `retain` over a statement tree (keeps structure, filters
/// nodes at every depth).
fn retain_stmts(stmts: &[Stmt], keep: &impl Fn(&Stmt) -> bool) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if !keep(s) {
            continue;
        }
        let kept = match s {
            Stmt::If { cond, then_body, else_body, span } => Stmt::If {
                cond: cond.clone(),
                then_body: retain_stmts(then_body, keep),
                else_body: retain_stmts(else_body, keep),
                span: *span,
            },
            Stmt::For { var, bound, body, span } => Stmt::For {
                var: var.clone(),
                bound: bound.clone(),
                body: retain_stmts(body, keep),
                span: *span,
            },
            other => other.clone(),
        };
        out.push(kept);
    }
    out
}

// --------------------------------------------------------------- the GC

fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then_body, else_body, .. } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Meta { index: Some(i), .. } => walk_expr(i, f),
        Expr::RegisterRead { instance, cell, .. } => {
            if let Some(i) = instance {
                walk_expr(i, f);
            }
            walk_expr(cell, f);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        _ => {}
    }
}

/// Every expression directly held by one statement (not recursing into
/// nested statements — pair with [`walk_stmts`]).
fn stmt_exprs(s: &Stmt) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn lvalue<'a>(l: &'a LValue, out: &mut Vec<&'a Expr>) {
        match l {
            LValue::Meta { index: Some(i), .. } => out.push(i),
            LValue::Register { instance, cell, .. } => {
                if let Some(i) = instance {
                    out.push(i);
                }
                out.push(cell);
            }
            _ => {}
        }
    }
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            lvalue(lhs, &mut out);
            out.push(rhs);
        }
        Stmt::HashAssign { lhs, inputs, .. } => {
            lvalue(lhs, &mut out);
            out.extend(inputs.iter());
        }
        Stmt::If { cond, .. } => out.push(cond),
        Stmt::CallAction { index: Some(i), .. } => out.push(i),
        _ => {}
    }
    out
}

/// Mark-and-sweep over one case: drop everything unreachable from the
/// entry control, then re-anchor `assume`s and `optimize` to the
/// surviving symbolics and filter installed entries to surviving
/// tables/actions/metadata.
pub fn gc(case: &mut FuzzCase) {
    let p = &mut case.program;
    let Some(entry) = p.controls.last().map(|c| c.name.clone()) else {
        return;
    };

    // Reachable controls (transitively from the entry).
    let mut live_controls: BTreeSet<String> = BTreeSet::new();
    let mut frontier = vec![entry];
    while let Some(name) = frontier.pop() {
        if !live_controls.insert(name.clone()) {
            continue;
        }
        if let Some(c) = p.controls.iter().find(|c| c.name == name) {
            walk_stmts(&c.body, &mut |s| {
                if let Stmt::ApplyControl { name, .. } = s {
                    frontier.push(name.clone());
                }
            });
        }
    }
    p.controls.retain(|c| live_controls.contains(&c.name));

    // Tables applied by live controls; actions called by live controls or
    // listed by live tables.
    let mut live_tables = BTreeSet::new();
    let mut live_actions = BTreeSet::new();
    for c in &p.controls {
        walk_stmts(&c.body, &mut |s| match s {
            Stmt::ApplyTable { name, .. } => {
                live_tables.insert(name.clone());
            }
            Stmt::CallAction { name, .. } => {
                live_actions.insert(name.clone());
            }
            _ => {}
        });
    }
    p.tables.retain(|t| live_tables.contains(&t.name));
    for t in &p.tables {
        live_actions.extend(t.actions.iter().cloned());
        if let Some(d) = &t.default_action {
            live_actions.insert(d.clone());
        }
    }
    p.actions.retain(|a| live_actions.contains(&a.name));

    // Registers and metadata referenced by live actions/controls/tables.
    let mut live_regs = BTreeSet::new();
    let mut live_meta = BTreeSet::new();
    fn collect_expr(e: &Expr, regs: &mut BTreeSet<String>, meta: &mut BTreeSet<String>) {
        walk_expr(e, &mut |e| match e {
            Expr::RegisterRead { reg, .. } => {
                regs.insert(reg.clone());
            }
            Expr::Meta { field, .. } => {
                meta.insert(field.clone());
            }
            _ => {}
        });
    }
    {
        let mut on_stmt = |s: &Stmt| {
            if let Stmt::Assign { lhs, .. } | Stmt::HashAssign { lhs, .. } = s {
                match lhs {
                    LValue::Meta { field, .. } => {
                        live_meta.insert(field.clone());
                    }
                    LValue::Register { reg, .. } => {
                        live_regs.insert(reg.clone());
                    }
                    _ => {}
                }
            }
            for e in stmt_exprs(s) {
                collect_expr(e, &mut live_regs, &mut live_meta);
            }
        };
        for a in &p.actions {
            walk_stmts(&a.body, &mut on_stmt);
        }
        for c in &p.controls {
            walk_stmts(&c.body, &mut on_stmt);
        }
    }
    for t in &p.tables {
        for k in &t.keys {
            collect_expr(k, &mut live_regs, &mut live_meta);
        }
    }
    p.registers.retain(|r| live_regs.contains(&r.name));
    p.metadata.retain(|m| live_meta.contains(&m.name));

    // A symbolic is alive only through a *structural* role (array extent,
    // loop bound, hash range) — one referenced solely by assumes or
    // optimize is dead, because elaboration requires every symbolic to
    // play a structural role.
    let structural: BTreeSet<String> = {
        let mut set = BTreeSet::new();
        for m in &p.metadata {
            if let Some(n) = m.count.as_ref().and_then(|s| s.symbolic_name()) {
                set.insert(n.to_string());
            }
        }
        for r in &p.registers {
            if let Some(n) = r.cells.symbolic_name() {
                set.insert(n.to_string());
            }
            if let Some(n) = r.instances.as_ref().and_then(|s| s.symbolic_name()) {
                set.insert(n.to_string());
            }
        }
        let mut on_stmt = |s: &Stmt| match s {
            Stmt::For { bound, .. } => {
                if let Some(n) = bound.symbolic_name() {
                    set.insert(n.to_string());
                }
            }
            Stmt::HashAssign { range, .. } => {
                if let Some(n) = range.symbolic_name() {
                    set.insert(n.to_string());
                }
            }
            _ => {}
        };
        for a in &p.actions {
            walk_stmts(&a.body, &mut on_stmt);
        }
        for c in &p.controls {
            walk_stmts(&c.body, &mut on_stmt);
        }
        set
    };
    p.symbolics.retain(|s| structural.contains(&s.name));
    let alive: BTreeSet<String> = p.symbolics.iter().map(|s| s.name.clone()).collect();
    p.assumes.retain(|a| {
        let mut syms = Vec::new();
        a.expr.symbolics(&mut syms);
        syms.iter().all(|s| alive.contains(s))
    });
    if let Some(opt) = &p.optimize {
        let mut syms = Vec::new();
        opt.symbolics(&mut syms);
        if !syms.iter().all(|s| alive.contains(s)) {
            // Rebuild as the plain sum of surviving symbolics (utility
            // shape is not part of any bug's identity the oracle tracks).
            p.optimize = p
                .symbolics
                .iter()
                .map(|s| Expr::Symbolic(s.name.clone()))
                .reduce(|a, b| Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                });
        }
    }
    if p.symbolics.is_empty() {
        p.optimize = None;
    }

    // Entries must still name a live table/action, and action data must
    // bind live metadata fields.
    let table_names: BTreeSet<String> = p.tables.iter().map(|t| t.name.clone()).collect();
    let action_names: BTreeSet<String> = p.actions.iter().map(|a| a.name.clone()).collect();
    let meta_names: BTreeSet<String> = p.metadata.iter().map(|m| m.name.clone()).collect();
    case.entries.retain(|e| table_names.contains(&e.table) && action_names.contains(&e.action));
    for e in &mut case.entries {
        e.data.retain(|(n, _)| meta_names.contains(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn gc_keeps_generated_cases_intact() {
        // A freshly generated case is fully live: GC must be a no-op.
        for seed in 0..30u64 {
            let case = generate(seed, 8);
            let mut swept = case.clone();
            gc(&mut swept);
            assert_eq!(
                swept.program.strip_spans(),
                case.program.strip_spans(),
                "seed {seed}: GC removed live structure"
            );
            assert_eq!(swept.entries, case.entries);
        }
    }

    #[test]
    fn gc_sweeps_after_control_removal() {
        // Find a seed with at least one sketch block, drop its update
        // control, and check the cascade: action, register, metadata,
        // symbolics, assumes, optimize all follow.
        let case = (0..200u64)
            .map(|s| generate(s, 8))
            .find(|c| c.program.controls.iter().any(|c| c.name == "sk0_upd"))
            .expect("some seed generates a sketch");
        let mut c = case.clone();
        c.program.controls.retain(|x| x.name != "sk0_upd" && x.name != "sk0_scan");
        strip_applies(&mut c.program, "sk0_upd", true);
        strip_applies(&mut c.program, "sk0_scan", true);
        gc(&mut c);
        assert!(c.program.register("sk0").is_none(), "sk0 register must be swept");
        assert!(c.program.action("sk0_incr").is_none());
        assert!(c.program.meta_field("sk0_idx").is_none());
        assert!(c.program.symbolic("rows0").is_none());
        assert!(c.program.symbolic("cols0").is_none());
        for a in &c.program.assumes {
            let mut syms = Vec::new();
            a.expr.symbolics(&mut syms);
            assert!(!syms.contains(&"rows0".to_string()));
        }
        if let Some(opt) = &c.program.optimize {
            let mut syms = Vec::new();
            opt.symbolics(&mut syms);
            assert!(!syms.contains(&"rows0".to_string()), "optimize must be rebuilt");
        }
        // The swept program still parses and round-trips.
        let src = c.source();
        let parsed = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert_eq!(parsed.strip_spans(), c.program.strip_spans());
    }

    #[test]
    fn remove_nth_enumerates_every_node() {
        let case = generate(3, 8);
        let main = case.program.entry_control().unwrap();
        let total = count_stmts(&main.body);
        assert!(total > 0);
        for n in 0..total {
            let mut target = n as isize;
            let out = remove_nth(&main.body, &mut target);
            assert!(target < 0, "target {n} must be consumed");
            assert!(count_stmts(&out) < total, "removal {n} must shrink the tree");
        }
    }
}

//! # p4all-fuzzgen — the adversarial compiler-correctness harness
//!
//! Random well-formed P4All programs ([`gen`]), a four-way differential
//! oracle ([`oracle`]: ILP feasibility + greedy domination + solver
//! cross-checks, interp-vs-bytecode-vs-generated-native trace replay at
//! 1 and 4 shards, and
//! an exact print→parse round trip), a delta-debugging shrinker
//! ([`mod@shrink`]) for anything that diverges, and a committed regression
//! corpus ([`corpus`]) replayed deterministically forever.
//!
//! The `fuzzgen` binary drives the loop:
//!
//! ```text
//! fuzzgen --samples 1000 --seed 1 --save-corpus
//! ```
//!
//! Every sample is a pure function of `--seed + index`, so a failure
//! report's seed replays exactly with `--samples 1 --seed <that seed>`.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_dir, replay, save, CorpusEntry, ReplayStatus};
pub use gen::{gen_trace, generate, generate_joint, EntrySpec, FuzzCase, JointFuzzCase, TargetChoice};
pub use oracle::{
    merged_case, run_case, run_joint_case, Divergence, OracleOptions, Outcome, KNOWN_KINDS,
};
pub use shrink::{gc, shrink, ShrinkOutcome};

//! The four-way differential oracle.
//!
//! Each [`FuzzCase`] is pushed through three independent closed loops:
//!
//! 0. **Round-trip** — the printed source must parse back to the exact
//!    AST the generator built (modulo spans).
//! 1. **ILP** — compile under the exact solver; a feasible answer must
//!    survive [`p4all_core::verify_layout`], dominate the greedy
//!    allocator on the program's own utility, and agree on the objective
//!    with a cold-LP solve and a 4-thread solve. An infeasible answer
//!    must be corroborated: greedy may not find a valid layout, and the
//!    4-thread solver must agree.
//! 2. **Simulation** — a random trace replays through the reference
//!    interpreter, the bytecode backend, and (when `rustc` is
//!    available) the native-codegen backend in lockstep (per-packet PHV
//!    and fault equivalence, final register equality), then through
//!    `run_trace` at 1 shard (interp), 4 shards (bytecode delta-sum
//!    merge), and 1 shard again on the native engine, all of which must
//!    reproduce the lockstep register state and drop count.
//!
//! Native divergences carry `native-diverge-*` kinds so shrunk corpus
//! cases are attributable at a glance; [`OracleOptions::native`] is the
//! `--no-native` escape hatch, and a missing `rustc` downgrades the
//! oracle to three-way silently per case (the fuzzgen binary logs the
//! reason once at startup).
//!
//! Every phase runs under `catch_unwind`, so a compiler or simulator
//! panic is itself a reportable divergence, not a harness crash.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use p4all_core::{
    merge_tenants, verify_joint, verify_layout, CompileCtx, CompileError, CompileOptions,
    Compiler, TenantProgram,
};
use p4all_ilp::SolveStatus;
use p4all_lang::ast::Program;
use p4all_lang::Tenant;
use p4all_pisa::TargetSpec;
use p4all_sim::{Backend, SimError, Switch};

use crate::gen::{gen_trace, EntrySpec, FuzzCase, JointFuzzCase};

/// Solver budget and scope knobs for one oracle run.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Branch-and-bound node cap per solve; hitting it is a skip, not a
    /// divergence.
    pub node_limit: usize,
    /// Wall-clock cap per solve.
    pub time_limit: Duration,
    /// Run the warm/cold and 1/4-thread solver cross-checks (on for
    /// fuzzing; the shrinker keeps them on so the bug class is preserved).
    pub cross_checks: bool,
    /// Include the native-codegen backend in the sim phase (the
    /// `--no-native` escape hatch turns this off). Ignored when `rustc`
    /// is unavailable at runtime: the case silently runs three-way.
    pub native: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            node_limit: 20_000,
            time_limit: Duration::from_secs(10),
            cross_checks: true,
            native: true,
        }
    }
}

/// Every divergence kind the oracle can currently emit. Corpus loading
/// validates `.meta` kinds against this list so a renamed or retired
/// check fails loudly, naming the stale file, instead of silently
/// replaying under a dead class.
pub const KNOWN_KINDS: &[&str] = &[
    "roundtrip-parse",
    "roundtrip-ast",
    "compile-panic",
    "compile-reject",
    "compile-unknown",
    "internal-error",
    "solver-numerical",
    "layout-invalid",
    "greedy-panic",
    "greedy-layout-invalid",
    "greedy-beats-ilp",
    "infeasible-vs-greedy",
    "warm-cold-objective",
    "warm-cold-status",
    "threads-objective",
    "threads-status",
    "sim-build",
    "sim-panic",
    "sim-status",
    "sim-phv",
    "sim-registers",
    "sim-replay1",
    "sim-sharded",
    "sim-batched",
    "native-diverge-build",
    "native-diverge-status",
    "native-diverge-phv",
    "native-diverge-registers",
    "native-diverge-replay",
    "joint-merge",
    "joint-compile-panic",
    "joint-compile-reject",
    "joint-verify",
    "joint-utility",
];

/// One observed disagreement between two things that must agree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Stable machine-readable class (`sim-registers`,
    /// `greedy-beats-ilp`, ...) — the shrinker's interestingness key and
    /// the corpus file prefix.
    pub kind: String,
    pub detail: String,
}

impl Divergence {
    fn new(kind: &str, detail: impl Into<String>) -> Divergence {
        Divergence { kind: kind.into(), detail: detail.into() }
    }

    /// Same bug class? Kind equality, plus a digit-insensitive first-line
    /// match for kinds whose detail *is* the identity (panic messages,
    /// rejection diagnostics) — line numbers and generated names shift
    /// while shrinking, so digits are ignored.
    pub fn same_bug(&self, other: &Divergence) -> bool {
        if self.kind != other.kind {
            return false;
        }
        match self.kind.as_str() {
            "compile-reject" | "internal-error" | "compile-panic" | "greedy-panic"
            | "sim-panic" | "solver-numerical" => {
                digit_free_first_line(&self.detail) == digit_free_first_line(&other.detail)
            }
            _ => true,
        }
    }
}

fn digit_free_first_line(s: &str) -> String {
    s.lines().next().unwrap_or("").chars().filter(|c| !c.is_ascii_digit()).collect()
}

/// Result of one oracle run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// All three loops closed. `feasible` records which ILP branch ran.
    Clean { feasible: bool },
    /// The solver hit its node/time budget — no verdict either way.
    Skipped { reason: String },
    Divergence(Divergence),
}

impl Outcome {
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            Outcome::Divergence(d) => Some(d),
            _ => None,
        }
    }
}

fn make_compiler(
    target: &TargetSpec,
    threads: usize,
    warm_lp: bool,
    cuts: bool,
    opts: &OracleOptions,
) -> Compiler {
    let mut o = CompileOptions::default().with_threads(threads);
    o.solver.node_limit = opts.node_limit;
    o.solver.time_limit = Some(opts.time_limit);
    o.solver.warm_lp = warm_lp;
    // `cuts` toggles the whole cut-and-branch engine (cut separation and
    // pseudocost branching) so the cross-check compares it against the
    // plain historical search.
    o.solver.cuts = cuts;
    o.solver.pseudocost = cuts;
    // Infeasibility explanations (IIS probing) cost extra solves the
    // oracle does not read; the *status* is the oracle's input.
    o.explain_infeasible = false;
    Compiler::with_options(target.clone(), o)
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Relative objective agreement: exact solvers on the same model must
/// land on the same optimum.
fn objectives_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

/// Run the full oracle on one case.
pub fn run_case(case: &FuzzCase, opts: &OracleOptions) -> Outcome {
    let src = case.source();

    // Phase 0: print -> parse round trip.
    let parsed = match p4all_lang::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            return Outcome::Divergence(Divergence::new(
                "roundtrip-parse",
                format!("{}\nsource:\n{src}", e.render(&src)),
            ))
        }
    };
    if parsed.strip_spans() != case.program.strip_spans() {
        return Outcome::Divergence(Divergence::new(
            "roundtrip-ast",
            format!("parse(print(p)) != p for seed {}\nsource:\n{src}", case.seed),
        ));
    }

    // Phase 1: the exact solver, verified and cross-checked.
    let target = case.target.to_spec();
    let compiler = make_compiler(&target, 1, true, true, opts);
    let res = match catch_unwind(AssertUnwindSafe(|| compiler.compile(&src))) {
        Ok(r) => r,
        Err(p) => {
            return Outcome::Divergence(Divergence::new(
                "compile-panic",
                format!("{}\nsource:\n{src}", panic_message(p)),
            ))
        }
    };

    match res {
        Ok(c) => {
            if let Err(violations) = verify_layout(&parsed, &c.layout, &target) {
                return Outcome::Divergence(Divergence::new(
                    "layout-invalid",
                    violations.join("\n"),
                ));
            }
            match catch_unwind(AssertUnwindSafe(|| compiler.compile_greedy(&src))) {
                Err(p) => {
                    return Outcome::Divergence(Divergence::new(
                        "greedy-panic",
                        panic_message(p),
                    ))
                }
                Ok(Ok(g)) => {
                    if let Err(violations) = verify_layout(&parsed, &g, &target) {
                        return Outcome::Divergence(Divergence::new(
                            "greedy-layout-invalid",
                            violations.join("\n"),
                        ));
                    }
                    if let Err(msg) = p4all_core::ilp_dominates_greedy(&parsed, &c.layout, &g) {
                        return Outcome::Divergence(Divergence::new("greedy-beats-ilp", msg));
                    }
                }
                // Greedy is an incomplete heuristic: failing where the
                // exact solver succeeds is its documented weakness.
                Ok(Err(_)) => {}
            }

            if opts.cross_checks && c.solve_stats.status == SolveStatus::Optimal {
                for (kind, threads, warm, cuts) in [
                    ("warm-cold", 1usize, false, true),
                    ("threads", 4, true, true),
                    ("cuts-off", 1, true, false),
                ] {
                    if let Some(d) = cross_check(
                        &src, &target, opts, kind, threads, warm, cuts, c.layout.objective,
                    ) {
                        return Outcome::Divergence(d);
                    }
                }
            }

            // Phase 2: differential simulation.
            if let Err(d) = sim_phase(case, &c.concrete, &parsed, opts) {
                return Outcome::Divergence(d);
            }
            Outcome::Clean { feasible: true }
        }
        Err(CompileError::Infeasible(_)) => {
            // Corroborate: greedy must not find a *valid* layout, and
            // other solver configurations must agree on infeasibility.
            match catch_unwind(AssertUnwindSafe(|| compiler.compile_greedy(&src))) {
                Err(p) => {
                    return Outcome::Divergence(Divergence::new(
                        "greedy-panic",
                        panic_message(p),
                    ))
                }
                Ok(Ok(g)) => {
                    return Outcome::Divergence(match verify_layout(&parsed, &g, &target) {
                        Ok(()) => Divergence::new(
                            "infeasible-vs-greedy",
                            format!(
                                "exact solver says infeasible but greedy found a valid layout: {:?}",
                                g.symbol_values
                            ),
                        ),
                        Err(violations) => {
                            Divergence::new("greedy-layout-invalid", violations.join("\n"))
                        }
                    });
                }
                Ok(Err(_)) => {}
            }
            if opts.cross_checks {
                for (kind, threads, warm, cuts) in [
                    ("warm-cold", 1usize, false, true),
                    ("threads", 4, true, true),
                    ("cuts-off", 1, true, false),
                ] {
                    if let Some(d) =
                        cross_check_infeasible(&src, &target, opts, kind, threads, warm, cuts)
                    {
                        return Outcome::Divergence(d);
                    }
                }
            }
            Outcome::Clean { feasible: false }
        }
        Err(CompileError::SolverLimit(m)) => Outcome::Skipped { reason: m },
        Err(CompileError::Source(d)) => Outcome::Divergence(Divergence::new(
            "compile-reject",
            format!("{d}\n{}", d.render(&src, "<fuzzgen>")),
        )),
        Err(CompileError::Internal(d)) => Outcome::Divergence(Divergence::new(
            "internal-error",
            format!("{d}\n{}", d.render(&src, "<fuzzgen>")),
        )),
        Err(CompileError::SolverNumerical(m)) => {
            Outcome::Divergence(Divergence::new("solver-numerical", m))
        }
        Err(other) => {
            Outcome::Divergence(Divergence::new("compile-unknown", other.to_string()))
        }
    }
}

fn tenant_programs(case: &JointFuzzCase) -> Vec<TenantProgram> {
    case.tenants
        .iter()
        .map(|(name, weight, sub)| {
            TenantProgram::new(
                Tenant::new(name, *weight).expect("generated tenant names are valid idents"),
                sub.source(),
            )
        })
        .collect()
}

/// Lower a joint case to an ordinary [`FuzzCase`] over the *merged*
/// program: control-plane entries are re-addressed to each tenant's
/// namespaced table, action, and action-data names. The merged program
/// is a plain [`Program`], so the result shrinks and replays through the
/// whole single-program machinery (and its corpus format) unchanged.
pub fn merged_case(case: &JointFuzzCase) -> Result<FuzzCase, Divergence> {
    let joint = merge_tenants(&tenant_programs(case)).map_err(|e| {
        Divergence::new("joint-merge", format!("merge of generated tenants failed: {e}"))
    })?;
    let entries = case
        .tenants
        .iter()
        .flat_map(|(name, _, sub)| {
            sub.entries.iter().map(move |e| EntrySpec {
                table: format!("{name}::{}", e.table),
                key: e.key,
                action: format!("{name}::{}", e.action),
                data: e.data.iter().map(|(n, v)| (format!("{name}::{n}"), *v)).collect(),
            })
        })
        .collect();
    Ok(FuzzCase {
        seed: case.seed,
        program: joint.merged,
        target: case.target,
        entries,
        trace_seed: case.trace_seed,
        trace_len: case.trace_len,
    })
}

/// Run the joint-compilation oracle on one multi-tenant case.
///
/// Joint-specific invariants come first: `compile_joint` must not panic
/// or reject well-formed tenants, its layout must pass
/// [`p4all_core::verify_joint`] (every tenant's assumes independently),
/// and the per-tenant utility split must re-sum to the ILP objective.
/// The case is then lowered via [`merged_case`] and pushed through the
/// full single-program oracle — round trip, exact-vs-greedy ILP with
/// cross-checks, and the four-way lockstep/sharded replay — so every
/// existing divergence class also guards the joint path.
pub fn run_joint_case(case: &JointFuzzCase, opts: &OracleOptions) -> Outcome {
    let merged = match merged_case(case) {
        Ok(m) => m,
        Err(d) => return Outcome::Divergence(d),
    };
    let target = case.target.to_spec();
    let mut o = CompileOptions::default().with_threads(1);
    o.solver.node_limit = opts.node_limit;
    o.solver.time_limit = Some(opts.time_limit);
    o.explain_infeasible = false;

    let tenants = tenant_programs(case);
    let res = catch_unwind(AssertUnwindSafe(|| {
        CompileCtx::new(o).compile_joint(&tenants, &target)
    }));
    match res {
        Err(p) => {
            return Outcome::Divergence(Divergence::new("joint-compile-panic", panic_message(p)))
        }
        Ok(Ok(jc)) => {
            if let Err(violations) = verify_joint(&jc.joint, &jc.compilation.layout, &target) {
                return Outcome::Divergence(Divergence::new(
                    "joint-verify",
                    violations.join("\n"),
                ));
            }
            // When every tenant that declares an `optimize` got an
            // evaluable utility, the weighted split must re-sum to the
            // joint objective.
            let all_eval = jc
                .joint
                .tenants
                .iter()
                .zip(&jc.tenants)
                .all(|((_, p), r)| p.optimize.is_none() || r.utility.is_some());
            if jc.joint.merged.optimize.is_some()
                && all_eval
                && !objectives_agree(jc.weighted_utility(), jc.compilation.layout.objective)
            {
                return Outcome::Divergence(Divergence::new(
                    "joint-utility",
                    format!(
                        "per-tenant split sums to {} but the joint objective is {}",
                        jc.weighted_utility(),
                        jc.compilation.layout.objective
                    ),
                ));
            }
        }
        // Infeasibility is corroborated by the merged-case delegation
        // below (greedy must fail too; cross-checks must agree).
        Ok(Err(CompileError::Infeasible(_))) => {}
        Ok(Err(CompileError::SolverLimit(m))) => return Outcome::Skipped { reason: m },
        Ok(Err(e)) => {
            // Generated tenants are well-formed by construction, so any
            // rejection is a namespacing or merge bug, not a bad input.
            return Outcome::Divergence(Divergence::new("joint-compile-reject", e.to_string()));
        }
    }

    run_case(&merged, opts)
}

/// Re-solve with a different solver configuration; an `Optimal` answer
/// must match the baseline objective, and no configuration may flip to
/// infeasible.
#[allow(clippy::too_many_arguments)]
fn cross_check(
    src: &str,
    target: &TargetSpec,
    opts: &OracleOptions,
    kind: &str,
    threads: usize,
    warm_lp: bool,
    cuts: bool,
    baseline_objective: f64,
) -> Option<Divergence> {
    let compiler = make_compiler(target, threads, warm_lp, cuts, opts);
    match catch_unwind(AssertUnwindSafe(|| compiler.compile(src))) {
        Err(p) => Some(Divergence::new("compile-panic", panic_message(p))),
        Ok(Ok(c2)) => {
            if c2.solve_stats.status == SolveStatus::Optimal
                && !objectives_agree(baseline_objective, c2.layout.objective)
            {
                Some(Divergence::new(
                    &format!("{kind}-objective"),
                    format!(
                        "baseline objective {baseline_objective} vs {} under threads={threads} warm_lp={warm_lp} cuts={cuts}",
                        c2.layout.objective
                    ),
                ))
            } else {
                None
            }
        }
        Ok(Err(CompileError::SolverLimit(_))) => None,
        Ok(Err(e)) => Some(Divergence::new(
            &format!("{kind}-status"),
            format!("baseline feasible but threads={threads} warm_lp={warm_lp} cuts={cuts} failed: {e}"),
        )),
    }
}

/// The infeasible mirror of [`cross_check`]: no configuration may find a
/// layout where the baseline proved none exists.
fn cross_check_infeasible(
    src: &str,
    target: &TargetSpec,
    opts: &OracleOptions,
    kind: &str,
    threads: usize,
    warm_lp: bool,
    cuts: bool,
) -> Option<Divergence> {
    let compiler = make_compiler(target, threads, warm_lp, cuts, opts);
    match catch_unwind(AssertUnwindSafe(|| compiler.compile(src))) {
        Err(p) => Some(Divergence::new("compile-panic", panic_message(p))),
        Ok(Ok(c2)) => Some(Divergence::new(
            &format!("{kind}-status"),
            format!(
                "baseline infeasible but threads={threads} warm_lp={warm_lp} cuts={cuts} found objective {}",
                c2.layout.objective
            ),
        )),
        Ok(Err(CompileError::Infeasible(_))) | Ok(Err(CompileError::SolverLimit(_))) => None,
        Ok(Err(e)) => Some(Divergence::new(
            &format!("{kind}-status"),
            format!("baseline infeasible but threads={threads} warm_lp={warm_lp} cuts={cuts} errored differently: {e}"),
        )),
    }
}

/// The header-assignment plan for a program: field `i` (in declaration
/// order) reads trace column `i % 4`. A single-program case declares
/// exactly the generator's four fields, reproducing the classic
/// `[key, val, d, aux]` mapping; each tenant block of a merged program
/// declares the same four (namespaced) fields in order, so every
/// co-tenant replays the same trace row through its own header.
fn header_plan(parsed: &Program) -> Vec<(String, usize)> {
    parsed
        .headers
        .iter()
        .flat_map(|h| h.fields.iter())
        .enumerate()
        .map(|(i, (name, _))| (name.clone(), i % 4))
        .collect()
}

fn step(sw: &mut Switch, plan: &[(String, usize)], pkt: &[u64; 4]) -> Result<(), SimError> {
    sw.begin_packet();
    for (name, col) in plan {
        sw.set_header(name, pkt[*col]).expect("program header fields always exist");
    }
    sw.run_packet()
}

/// Phase 2: lockstep interp-vs-bytecode-vs-native replay, then
/// whole-trace replay at 1 shard (interp), 4 shards (bytecode,
/// delta-sum merge), and 1 shard on the native engine.
fn sim_phase(
    case: &FuzzCase,
    concrete: &p4all_core::ConcreteProgram,
    parsed: &Program,
    opts: &OracleOptions,
) -> Result<(), Divergence> {
    let run = catch_unwind(AssertUnwindSafe(|| sim_phase_inner(case, concrete, parsed, opts)));
    match run {
        Ok(r) => r,
        Err(p) => Err(Divergence::new("sim-panic", panic_message(p))),
    }
}

fn sim_phase_inner(
    case: &FuzzCase,
    concrete: &p4all_core::ConcreteProgram,
    parsed: &Program,
    opts: &OracleOptions,
) -> Result<(), Divergence> {
    let build = |backend: Backend| -> Result<Switch, Divergence> {
        let mut sw = Switch::build(concrete, parsed)
            .map_err(|e| Divergence::new("sim-build", e.to_string()))?;
        sw.set_backend(backend);
        for e in &case.entries {
            let data: Vec<(&str, u64)> = e.data.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            sw.install_entry(&e.table, vec![e.key], &e.action, &data)
                .map_err(|err| Divergence::new("sim-build", err.to_string()))?;
        }
        Ok(sw)
    };
    let mut interp = build(Backend::Interp)?;
    let mut fast = build(Backend::Compiled)?;
    // The fourth way: generated Rust compiled by the in-container rustc.
    // A missing rustc downgrades to three-way (the binary logs why once);
    // any other preparation failure is a codegen bug and diverges.
    let mut native = if opts.native && p4all_sim::rustc_available() {
        let mut sw = build(Backend::Native)?;
        match sw.prepare_native() {
            Ok(_) => Some(sw),
            Err(p4all_sim::NativeError::RustcMissing(_)) => None,
            Err(e) => return Err(Divergence::new("native-diverge-build", e.to_string())),
        }
    } else {
        None
    };

    let plan = header_plan(parsed);
    let trace = gen_trace(case.trace_seed, case.trace_len);
    let mut dropped = 0u64;
    for (i, pkt) in trace.iter().enumerate() {
        let ri = step(&mut interp, &plan, pkt);
        let rf = step(&mut fast, &plan, pkt);
        if ri != rf {
            return Err(Divergence::new(
                "sim-status",
                format!("packet {i} {pkt:?}: interp {ri:?} vs compiled {rf:?}"),
            ));
        }
        if ri.is_ok() {
            if interp.phv_snapshot() != fast.phv_snapshot() {
                return Err(Divergence::new(
                    "sim-phv",
                    format!(
                        "packet {i} {pkt:?}: PHV diverges\ninterp:   {:?}\ncompiled: {:?}",
                        interp.phv_snapshot(),
                        fast.phv_snapshot()
                    ),
                ));
            }
        } else {
            dropped += 1;
        }
        if let Some(nat) = native.as_mut() {
            let rn = step(nat, &plan, pkt);
            if rn != ri {
                return Err(Divergence::new(
                    "native-diverge-status",
                    format!("packet {i} {pkt:?}: interp {ri:?} vs native {rn:?}"),
                ));
            }
            if ri.is_ok() && nat.phv_snapshot() != interp.phv_snapshot() {
                return Err(Divergence::new(
                    "native-diverge-phv",
                    format!(
                        "packet {i} {pkt:?}: PHV diverges\ninterp: {:?}\nnative: {:?}",
                        interp.phv_snapshot(),
                        nat.phv_snapshot()
                    ),
                ));
            }
        }
    }
    let baseline = interp.registers_snapshot();
    if baseline != fast.registers_snapshot() {
        return Err(Divergence::new(
            "sim-registers",
            format!(
                "final registers diverge\ninterp:   {:?}\ncompiled: {:?}",
                baseline,
                fast.registers_snapshot()
            ),
        ));
    }

    if let Some(nat) = &native {
        if nat.registers_snapshot() != baseline {
            return Err(Divergence::new(
                "native-diverge-registers",
                format!(
                    "final registers diverge\ninterp: {:?}\nnative: {:?}",
                    baseline,
                    nat.registers_snapshot()
                ),
            ));
        }
    }

    // Whole-trace replay must reproduce the lockstep result: 1 shard on
    // the interpreter, 4 shards (flow-hash partitioning + delta-sum
    // register merge) on the bytecode engine, SoA batch mode (width 64)
    // on the bytecode engine, and 1 shard again on the native engine
    // (threads > 1 always runs bytecode, so 1 shard is the native replay
    // path). The batched pass reuses the compiled switch after the sharded
    // pass, so it cannot live in the same borrow list.
    let run_replay = |label: &str,
                      sw: &mut Switch,
                      threads: usize|
     -> Result<(), Divergence> {
        let pkts: Result<Vec<_>, _> = trace
            .iter()
            .map(|pkt| {
                let assigns: Vec<(&str, u64)> =
                    plan.iter().map(|(name, col)| (name.as_str(), pkt[*col])).collect();
                sw.make_packet(&assigns)
            })
            .collect();
        let pkts = pkts.map_err(|e| Divergence::new("sim-build", e.to_string()))?;
        sw.reset();
        let stats = sw.run_trace(&pkts, threads);
        if stats.dropped != dropped {
            return Err(Divergence::new(
                label,
                format!(
                    "{threads}-shard replay dropped {} packets, lockstep dropped {dropped}",
                    stats.dropped
                ),
            ));
        }
        if sw.registers_snapshot() != baseline {
            return Err(Divergence::new(
                label,
                format!(
                    "{threads}-shard replay registers diverge from lockstep\nreplay:   {:?}\nlockstep: {:?}",
                    sw.registers_snapshot(),
                    baseline
                ),
            ));
        }
        Ok(())
    };
    run_replay("sim-replay1", &mut interp, 1)?;
    run_replay("sim-sharded", &mut fast, 4)?;
    // Batched replay falls back to scalar when the program is not
    // batch-safe; both paths must still reproduce the lockstep result.
    fast.set_batch_width(64);
    let batched = run_replay("sim-batched", &mut fast, 1);
    fast.set_batch_width(0);
    batched?;
    if let Some(nat) = native.as_mut() {
        run_replay("native-diverge-replay", nat, 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bug_compares_kinds_and_digitless_details() {
        let a = Divergence::new("sim-registers", "whatever 1");
        let b = Divergence::new("sim-registers", "entirely different");
        assert!(a.same_bug(&b));
        let c = Divergence::new("sim-phv", "whatever 1");
        assert!(!a.same_bug(&c));
        let p1 = Divergence::new("compile-panic", "index out of bounds: 12 > 4");
        let p2 = Divergence::new("compile-panic", "index out of bounds: 3 > 2");
        let p3 = Divergence::new("compile-panic", "attempt to divide by zero");
        assert!(p1.same_bug(&p2));
        assert!(!p1.same_bug(&p3));
    }

    #[test]
    fn objective_tolerance_is_relative() {
        assert!(objectives_agree(1e7, 1e7 + 1.0));
        assert!(!objectives_agree(64.0, 65.0));
    }

    #[test]
    fn merged_case_namespaces_entries() {
        let case = crate::gen::generate_joint(2, 8);
        let merged = merged_case(&case).expect("generated tenants merge");
        for e in &merged.entries {
            assert!(e.table.contains("::"), "table not namespaced: {}", e.table);
            assert!(e.action.contains("::"), "action not namespaced: {}", e.action);
            for (n, _) in &e.data {
                assert!(n.contains("::"), "action datum not namespaced: {n}");
            }
        }
        // Each tenant contributes the generator's four header fields, so
        // the merged header plan covers every trace column per tenant.
        let plan = header_plan(&merged.program);
        assert_eq!(plan.len(), 4 * case.tenants.len());
        assert!(plan.iter().all(|(n, _)| n.contains("::")));
    }

    #[test]
    fn joint_cases_run_clean() {
        // A cheap in-tree fuzz pass: a few seeds through the whole joint
        // oracle (cross-checks and the native backend are exercised by
        // the fuzzgen binary and CI, not per unit-test run).
        let opts =
            OracleOptions { cross_checks: false, native: false, ..OracleOptions::default() };
        for seed in 0..3u64 {
            let case = crate::gen::generate_joint(seed, 12);
            let out = run_joint_case(&case, &opts);
            assert!(
                !matches!(out, Outcome::Divergence(_)),
                "joint seed {seed} diverged: {out:?}"
            );
        }
    }
}

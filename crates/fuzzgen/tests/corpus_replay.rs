//! Deterministic replay of the committed fuzz corpus
//! (`tests/fuzz-corpus/` at the repository root).
//!
//! Every `.p4all`/`.meta` pair runs through the full oracle:
//!
//! - plain cases must stay clean — they are shrunk witnesses of bugs
//!   that were fixed, and this test keeps them fixed;
//! - `known-issue:` cases must still reproduce their recorded divergence
//!   class — when one stops reproducing, the failure message demands the
//!   marker's removal, so stale markers cannot accumulate.

use std::path::PathBuf;

use p4all_fuzzgen::{load_dir, replay, OracleOptions};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz-corpus")
}

#[test]
fn corpus_replays_clean() {
    let entries = load_dir(&corpus_dir()).unwrap_or_else(|e| panic!("corpus load failed: {e}"));
    let opts = OracleOptions::default();
    let mut failures = Vec::new();
    for entry in &entries {
        if let Err(msg) = replay(entry, &opts) {
            failures.push(msg);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} corpus cases failed:\n{}",
        failures.len(),
        entries.len(),
        failures.join("\n")
    );
}

//! The generator's own contract, over a fixed seed range:
//!
//! - every generated program round-trips print→parse to the identical
//!   AST (modulo spans) and survives elaboration;
//! - generation is a pure function of the seed;
//! - a slice of full oracle runs comes back without divergence (the
//!   committed baseline: the compiler and both simulator backends agree
//!   on everything these seeds cover).

use std::sync::Arc;

use p4all_fuzzgen::{generate, run_case, OracleOptions, Outcome};

#[test]
fn generated_programs_roundtrip_and_elaborate() {
    for seed in 0..120u64 {
        let case = generate(seed, 16);
        let src = case.source();
        let parsed = p4all_lang::parse(&src)
            .unwrap_or_else(|e| panic!("seed {seed} does not parse: {}\n{src}", e.render(&src)));
        assert_eq!(
            parsed.strip_spans(),
            case.program.strip_spans(),
            "seed {seed}: print->parse is not the identity\n{src}"
        );
        p4all_core::elaborate::elaborate(&Arc::new(parsed))
            .unwrap_or_else(|d| panic!("seed {seed} does not elaborate: {d}\n{src}"));
    }
}

#[test]
fn generation_is_a_pure_function_of_the_seed() {
    for seed in [0u64, 7, 99, 1 << 40, u64::MAX] {
        let a = generate(seed, 32);
        let b = generate(seed, 32);
        assert_eq!(a.source(), b.source());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.target, b.target);
        assert_eq!(a.trace_seed, b.trace_seed);
    }
}

/// A small full-oracle batch: compile (exact + greedy + cross-checks),
/// replay (lockstep + 1-shard + 4-shard), round trip. Slower than the
/// structural checks above, so the range is short; the CI smoke job runs
/// the wide sweep through the `fuzzgen` binary.
#[test]
fn oracle_batch_is_divergence_free() {
    let opts = OracleOptions::default();
    for seed in 0..16u64 {
        let case = generate(seed, 24);
        match run_case(&case, &opts) {
            Outcome::Divergence(d) => panic!(
                "seed {seed} diverged: {} — {}\nsource:\n{}",
                d.kind,
                d.detail,
                case.source()
            ),
            Outcome::Clean { .. } | Outcome::Skipped { .. } => {}
        }
    }
}

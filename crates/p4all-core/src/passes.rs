//! Pass manager for the Figure-8 compile pipeline.
//!
//! Each compiler stage — `parse`, `elaborate`, `bounds`, `unroll`,
//! `depgraph`, `encode`, `solve`, `explain`, `extract`, `codegen` — runs
//! as a named pass recorded in a [`CompileTrace`]: wall time, a coarse
//! artifact-size description, and whether the result was served from
//! cache.
//!
//! The *front half* (everything up to and including the dependency graph)
//! depends only on the source text, the target's stage/ALU shape, and the
//! unroll cap — **not** on per-stage memory or PHV size. A [`CompileCtx`]
//! therefore caches those artifacts keyed by a hash of exactly those
//! inputs, so a memory sweep (Figure 12), a repeated compile, or a
//! greedy-baseline run after an ILP run re-executes only `encode` and
//! `solve`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4all_pisa::TargetSpec;

use crate::bounds::all_upper_bounds;
use crate::depgraph::{build_full, DepGraph};
use crate::elaborate::{elaborate, ProgramInfo};
use crate::ir::{instantiate, Unrolled};
use crate::pipeline::{CompileError, CompileOptions};

/// One executed (or cache-served) pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    pub name: &'static str,
    pub duration: Duration,
    /// True when the artifact came from the front-half cache.
    pub cached: bool,
    /// Coarse artifact-size description, e.g. `"9 instances"`.
    pub artifact: String,
}

/// Per-pass record of one compilation, in execution order.
#[derive(Debug, Clone, Default)]
pub struct CompileTrace {
    pub passes: Vec<PassRecord>,
}

impl CompileTrace {
    /// Append one pass record. Public so downstream drivers can register
    /// phases that run outside `CompileCtx` — e.g. the CLI records the
    /// simulator's native-backend lowering and `rustc` invocation as
    /// `native-gen` / `native-rustc` passes.
    pub fn record(
        &mut self,
        name: &'static str,
        cached: bool,
        duration: Duration,
        artifact: String,
    ) {
        self.passes.push(PassRecord { name, duration, cached, artifact });
    }

    /// Look up a pass by name.
    pub fn pass(&self, name: &str) -> Option<&PassRecord> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// True when the named pass ran and was served from cache.
    pub fn cached(&self, name: &str) -> bool {
        self.pass(name).map(|p| p.cached).unwrap_or(false)
    }

    /// Number of cache-served passes.
    pub fn cache_hits(&self) -> usize {
        self.passes.iter().filter(|p| p.cached).count()
    }

    /// Sum of all pass durations.
    pub fn total(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// Render the `--timings` table: one row per pass with its share of
    /// the total wall time.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let total = self.total().as_secs_f64().max(1e-12);
        let mut out = String::from("pass timings:\n");
        for p in &self.passes {
            let secs = p.duration.as_secs_f64();
            let _ = writeln!(
                out,
                "  {:<10} {:>9.3}ms {:>5.1}%{}  {}",
                p.name,
                secs * 1e3,
                100.0 * secs / total,
                if p.cached { "  (cached)" } else { "          " },
                p.artifact
            );
        }
        let _ = writeln!(out, "  {:<10} {:>9.3}ms", "total", total * 1e3);
        out
    }
}

/// Front-half artifacts: everything the back half (`encode` onward) needs.
#[derive(Clone)]
pub(crate) struct FrontArtifacts {
    pub info: ProgramInfo,
    pub bounds: BTreeMap<String, usize>,
    pub unrolled: Arc<Unrolled>,
    pub graph: Arc<DepGraph>,
}

/// Cache key over exactly the inputs the front half reads: the source
/// text, the target's stage/ALU shape, and the unroll cap. Per-stage
/// memory and PHV size are deliberately excluded — they only feed the ILP
/// encoding — so memory/PHV sweeps share one front half.
fn front_key(src: &str, target: &TargetSpec, max_unroll: usize) -> u64 {
    let mut h = DefaultHasher::new();
    src.hash(&mut h);
    target.stages.hash(&mut h);
    target.stateful_alus.hash(&mut h);
    target.stateless_alus.hash(&mut h);
    // The cost model's fields are private; its Debug form is canonical.
    format!("{:?}", target.alu_costs).hash(&mut h);
    max_unroll.hash(&mut h);
    h.finish()
}

/// A reusable compile context: options plus the front-half artifact cache.
///
/// [`crate::Compiler`] owns one internally; create one directly (and feed
/// it multiple targets) to share parsed/elaborated/unrolled artifacts
/// across a sweep:
///
/// ```
/// use p4all_core::{CompileCtx, CompileOptions};
/// use p4all_pisa::presets;
///
/// let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
/// let src = "header h { bit<32> x; } struct metadata { bit<32> y; }
///            action a() { meta.y = hdr.x; }
///            control Main() { apply { a(); } }";
/// let mut t = presets::paper_example();
/// let first = ctx.compile(src, &t).unwrap();
/// assert_eq!(first.trace.cache_hits(), 0);
/// t.memory_bits *= 2; // memory change: front half is reused
/// let second = ctx.compile(src, &t).unwrap();
/// assert!(second.trace.cached("parse") && second.trace.cached("unroll"));
/// assert!(!second.trace.cached("encode"));
/// ```
pub struct CompileCtx {
    pub options: CompileOptions,
    /// Front-half artifacts keyed by [`front_key`]. A map (not a single
    /// slot) so a joint compile interleaving N tenant sources — or a
    /// driver alternating between programs — keeps every front hot.
    front: HashMap<u64, FrontArtifacts>,
    /// Variable assignment of the previous successful solve on this
    /// context. A parameter sweep (Figure 12) re-encodes an almost
    /// identical model at each point, so the last point's incumbent is
    /// usually feasible for the next and seeds branch-and-bound pruning
    /// from the root. [`CompileCtx::compile`] re-validates it against the
    /// fresh encoding before use, so a stale assignment (different
    /// program, shrunken target) is simply ignored.
    pub(crate) last_incumbent: Option<Vec<f64>>,
}

impl CompileCtx {
    pub fn new(options: CompileOptions) -> Self {
        CompileCtx { options, front: HashMap::new(), last_incumbent: None }
    }

    /// Run (or serve from cache) the front half: `parse` → `elaborate` →
    /// `bounds` → `unroll` → `depgraph`, recording each pass in `trace`.
    pub(crate) fn front(
        &mut self,
        src: &str,
        target: &TargetSpec,
        trace: &mut CompileTrace,
    ) -> Result<FrontArtifacts, CompileError> {
        let key = front_key(src, target, self.options.max_unroll);
        if let Some(f) = self.front.get(&key) {
            let f = f.clone();
            trace.record("parse", true, Duration::ZERO, describe_program(&f.info));
            trace.record("elaborate", true, Duration::ZERO, describe_info(&f.info));
            trace.record("bounds", true, Duration::ZERO, describe_bounds(&f.bounds));
            trace.record("unroll", true, Duration::ZERO, describe_unrolled(&f.unrolled));
            trace.record("depgraph", true, Duration::ZERO, describe_graph(&f.graph));
            return Ok(f);
        }

        let t = Instant::now();
        let program = Arc::new(p4all_lang::parse(src)?);
        let parse_artifact = format!(
            "{} actions, {} controls, {} registers",
            program.actions.len(),
            program.controls.len(),
            program.registers.len()
        );
        trace.record("parse", false, t.elapsed(), parse_artifact);

        let t = Instant::now();
        let info = elaborate(&program)?;
        trace.record("elaborate", false, t.elapsed(), describe_info(&info));

        let t = Instant::now();
        let bounds = all_upper_bounds(&info, target, self.options.max_unroll)?;
        trace.record("bounds", false, t.elapsed(), describe_bounds(&bounds));

        let t = Instant::now();
        let unrolled = Arc::new(instantiate(&info, &bounds)?);
        trace.record("unroll", false, t.elapsed(), describe_unrolled(&unrolled));

        let t = Instant::now();
        let graph = Arc::new(build_full(&unrolled));
        trace.record("depgraph", false, t.elapsed(), describe_graph(&graph));

        let f = FrontArtifacts { info, bounds, unrolled, graph };
        // Bound the cache: a runaway sweep over many distinct sources
        // must not hold every front forever.
        if self.front.len() >= 64 {
            self.front.clear();
        }
        self.front.insert(key, f.clone());
        Ok(f)
    }

    /// Drop any cached artifacts (mostly useful in tests).
    pub fn clear_cache(&mut self) {
        self.front.clear();
        self.last_incumbent = None;
    }
}

fn describe_program(info: &ProgramInfo) -> String {
    format!(
        "{} actions, {} controls, {} registers",
        info.program.actions.len(),
        info.program.controls.len(),
        info.program.registers.len()
    )
}

fn describe_info(info: &ProgramInfo) -> String {
    format!("{} symbolics", info.roles.len())
}

fn describe_bounds(bounds: &BTreeMap<String, usize>) -> String {
    format!("{} loop bounds", bounds.len())
}

fn describe_unrolled(u: &Unrolled) -> String {
    format!("{} instances", u.instances.len())
}

fn describe_graph(g: &DepGraph) -> String {
    format!(
        "{} groups, {} precedence, {} exclusion edges",
        g.nodes.len(),
        g.precedence.len(),
        g.exclusion.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_pisa::presets;

    #[test]
    fn front_key_ignores_memory_and_phv() {
        let t1 = presets::paper_eval(1 << 10);
        let mut t2 = presets::paper_eval(1 << 20);
        t2.phv_bits = 8192;
        assert_eq!(front_key("x", &t1, 64), front_key("x", &t2, 64));
    }

    #[test]
    fn front_key_sees_stage_shape_and_source() {
        let t = presets::paper_example();
        let mut wider = t.clone();
        wider.stages += 1;
        assert_ne!(front_key("x", &t, 64), front_key("x", &wider, 64));
        assert_ne!(front_key("x", &t, 64), front_key("y", &t, 64));
        assert_ne!(front_key("x", &t, 64), front_key("x", &t, 32));
    }

    #[test]
    fn trace_renders_cached_markers() {
        let mut tr = CompileTrace::default();
        tr.record("parse", true, Duration::from_millis(1), "1 action".into());
        tr.record("encode", false, Duration::from_millis(2), "10 rows".into());
        let s = tr.render();
        assert!(s.contains("(cached)"), "{s}");
        assert!(s.contains("encode"), "{s}");
        assert_eq!(tr.cache_hits(), 1);
        assert!(tr.cached("parse") && !tr.cached("encode"));
    }
}

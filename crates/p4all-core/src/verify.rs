//! Post-solve layout self-checks.
//!
//! The solver's answer is re-derived facts, not trusted output: a layout
//! claimed feasible must actually satisfy the target's resource budget,
//! the program's `assume` predicates at the chosen symbolic values, and
//! the basic structural bounds (every placement within the stage count).
//! The adversarial compiler-correctness harness (`crates/fuzzgen`) runs
//! these checks on every generated program; integration tests use them as
//! a one-call oracle.

use std::collections::BTreeMap;

use p4all_lang::ast::{BinOp, Expr, Program, UnOp};
use p4all_pisa::TargetSpec;

use crate::pipeline::evaluate_utility;
use crate::solution::Layout;

/// Evaluate a boolean `assume`-style predicate at concrete symbolic
/// values. Arithmetic subterms evaluate through [`evaluate_utility`];
/// comparisons compare the arithmetic results; `&&`/`||`/`!` combine
/// booleans. `None` when the expression references anything outside the
/// value map or mixes kinds in an unsupported way.
pub fn evaluate_predicate(e: &Expr, values: &BTreeMap<String, u64>) -> Option<bool> {
    match e {
        Expr::Unary { op: UnOp::Not, operand } => evaluate_predicate(operand, values).map(|b| !b),
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            Some(evaluate_predicate(lhs, values)? && evaluate_predicate(rhs, values)?)
        }
        Expr::Binary { op: BinOp::Or, lhs, rhs } => {
            Some(evaluate_predicate(lhs, values)? || evaluate_predicate(rhs, values)?)
        }
        Expr::Binary { op, lhs, rhs } if op.is_boolean() => {
            let a = evaluate_utility(lhs, values)?;
            let b = evaluate_utility(rhs, values)?;
            Some(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                _ => unreachable!("non-comparison boolean ops handled above"),
            })
        }
        _ => None,
    }
}

/// Check every `assume` of `program` at the layout's symbolic values.
/// `Err` carries one message per violated (or unevaluable) assume.
pub fn assumes_hold(
    program: &Program,
    values: &BTreeMap<String, u64>,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    for a in &program.assumes {
        match evaluate_predicate(&a.expr, values) {
            Some(true) => {}
            Some(false) => violations.push(format!(
                "assume `{}` violated at {:?}",
                p4all_lang::printer::print_expr(&a.expr),
                values
            )),
            None => violations.push(format!(
                "assume `{}` not evaluable at the chosen symbolic values",
                p4all_lang::printer::print_expr(&a.expr)
            )),
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Verify that a layout the compiler claims feasible actually is:
///
/// 1. every declared symbolic received a concrete value,
/// 2. every `assume` predicate holds at those values,
/// 3. the aggregated resource usage fits the target
///    ([`p4all_pisa::validate`]),
/// 4. every placement and register allocation names a stage inside the
///    target's pipeline.
///
/// Returns all violations, not just the first — a fuzz divergence report
/// wants the complete picture.
pub fn verify_layout(
    program: &Program,
    layout: &Layout,
    target: &TargetSpec,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    for s in &program.symbolics {
        match layout.symbol_values.get(&s.name) {
            None => violations.push(format!("symbolic `{}` has no value in the layout", s.name)),
            Some(0) => {
                // A zero count/size means the structure vanished entirely;
                // legal only if an assume allows it.
            }
            Some(_) => {}
        }
    }

    if let Err(mut v) = assumes_hold(program, &layout.symbol_values) {
        violations.append(&mut v);
    }

    if let Err(errs) = p4all_pisa::validate(&layout.usage, target) {
        for e in errs {
            violations.push(format!("resource violation: {e}"));
        }
    }

    for p in &layout.placements {
        if p.stage >= target.stages {
            violations.push(format!(
                "placement `{}` in stage {} but target has {} stages",
                p.label, p.stage, target.stages
            ));
        }
    }
    for r in &layout.registers {
        if r.stage >= target.stages {
            violations.push(format!(
                "register `{}[{}]` in stage {} but target has {} stages",
                r.reg, r.instance, r.stage, target.stages
            ));
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Compare an ILP layout against the greedy baseline on the program's own
/// utility. `Err` when greedy strictly beats the ILP — the exact-solver
/// contract is violated. `Ok(None)` when the program has no `optimize`
/// expression or a utility that does not evaluate (nothing to compare).
pub fn ilp_dominates_greedy(
    program: &Program,
    ilp: &Layout,
    greedy: &Layout,
) -> Result<Option<(f64, f64)>, String> {
    let Some(opt) = &program.optimize else { return Ok(None) };
    let (Some(u_ilp), Some(u_greedy)) = (
        evaluate_utility(opt, &ilp.symbol_values),
        evaluate_utility(opt, &greedy.symbol_values),
    ) else {
        return Ok(None);
    };
    if u_ilp + 1e-6 < u_greedy {
        return Err(format!(
            "greedy utility {u_greedy} beats ILP utility {u_ilp} (exact solver must dominate)"
        ));
    }
    Ok(Some((u_ilp, u_greedy)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        }
        control Main() { apply { for (i < rows) { incr()[i]; } } }
    "#;

    #[test]
    fn predicates_evaluate() {
        let p = p4all_lang::parse("symbolic int a; assume a >= 2 && a <= 8; struct metadata { bit<32>[a] x; }").unwrap();
        let mut v = BTreeMap::new();
        v.insert("a".to_string(), 4u64);
        assert_eq!(evaluate_predicate(&p.assumes[0].expr, &v), Some(true));
        v.insert("a".to_string(), 9u64);
        assert_eq!(evaluate_predicate(&p.assumes[0].expr, &v), Some(false));
    }

    #[test]
    fn compiled_layout_verifies() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        verify_layout(&program, &c.layout, &compiler.target).unwrap();
    }

    #[test]
    fn violated_assume_detected() {
        let program = p4all_lang::parse(CMS).unwrap();
        let mut values = BTreeMap::new();
        values.insert("rows".to_string(), 9u64); // violates rows <= 4
        values.insert("cols".to_string(), 8u64);
        let errs = assumes_hold(&program, &values).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("violated"), "{}", errs[0]);
    }

    #[test]
    fn ilp_vs_greedy_comparison() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        let g = compiler.compile_greedy(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let gap = ilp_dominates_greedy(&program, &c.layout, &g).unwrap();
        let (u_ilp, u_greedy) = gap.expect("CMS utility evaluates");
        assert!(u_ilp >= u_greedy);
    }
}

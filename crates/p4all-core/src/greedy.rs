//! Greedy first-fit baseline allocator (ablation for the ILP).
//!
//! Mimics what a careful engineer does by hand: walk the unrolled program
//! in order, put each group in the earliest stage that respects precedence,
//! exclusion, and ALU budgets; stop instantiating further iterations of a
//! loop once one fails to fit; then split each stage's leftover memory
//! evenly among the registers placed there, taking the minimum across
//! instances to honour the equal-row-size rule.
//!
//! The ILP provably dominates this baseline on utility; the `ablation`
//! bench quantifies by how much.

use std::collections::BTreeMap;

use p4all_lang::diag::Diagnostic;
use p4all_pisa::{PipelineUsage, TargetSpec};

use crate::depgraph::DepGraph;
use crate::elaborate::ProgramInfo;
use crate::ir::{Iter, Unrolled};
use crate::solution::{Layout, Placement, RegisterAllocation};

/// Place `unrolled` on `target` greedily. Returns a [`Layout`] comparable
/// with the ILP's (objective is left at 0.0; evaluate utilities with
/// [`crate::pipeline::evaluate_utility`]).
pub fn place_greedy(
    info: &ProgramInfo,
    unrolled: &Unrolled,
    graph: &DepGraph,
    target: &TargetSpec,
) -> Result<Layout, Diagnostic> {
    let stages = target.stages;
    let costs = &target.alu_costs;

    // Per-group ALU demand and iteration tags.
    let n = graph.nodes.len();
    let mut hf = vec![0u32; n];
    let mut hl = vec![0u32; n];
    let mut tag: Vec<Vec<Iter>> = vec![Vec::new(); n];
    for (g, node) in graph.nodes.iter().enumerate() {
        for &m in &node.members {
            let inst = &unrolled.instances[m];
            hf[g] += costs.stateful_cost(inst.ops.iter());
            hl[g] += costs.stateless_cost(inst.ops.iter());
        }
        tag[g] = unrolled.instances[node.members[0]].iters.clone();
    }

    // Minimum memory each group brings into its stage: a fixed-size
    // register demands its full footprint, an elastic one at least its
    // mined `assume` lower bound (default one cell). Charged to the first
    // group touching each register instance, so shared instances are not
    // double-counted; that owner group carries the demand through the
    // stage-fit check below.
    let mut mem_min = vec![0u64; n];
    {
        let mut owner: BTreeMap<(&str, usize), usize> = BTreeMap::new();
        for (g, node) in graph.nodes.iter().enumerate() {
            for &m in &node.members {
                let Some(r) = &unrolled.instances[m].reg else { continue };
                if owner.insert((r.reg.as_str(), r.instance), g).is_some() {
                    continue;
                }
                let Some(decl) = info.program.register(&r.reg) else { continue };
                let min_cells = match &decl.cells {
                    p4all_lang::ast::Size::Const(k) => *k,
                    p4all_lang::ast::Size::Symbolic(s) => {
                        info.mined.get(s).and_then(|b| b.lo).unwrap_or(1).max(1)
                    }
                };
                mem_min[g] += min_cells * decl.elem_bits as u64;
            }
        }
    }

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &graph.precedence {
        preds[b].push(a);
    }
    let mut excls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &graph.exclusion {
        excls[a].push(b);
        excls[b].push(a);
    }

    let mut used_f = vec![0u32; stages];
    let mut used_l = vec![0u32; stages];
    let mut used_m = vec![0u64; stages];
    let mut stage_of: Vec<Option<usize>> = vec![None; n];
    // Iterations of a count symbolic that failed: higher iterations of the
    // same symbolic are skipped (in-order rule #16).
    let mut dead_from: BTreeMap<String, usize> = BTreeMap::new();

    'groups: for g in 0..n {
        // Skip iterations past a failed one.
        for it in &tag[g] {
            if let Some(&cut) = dead_from.get(&it.symbolic) {
                if it.index >= cut {
                    continue 'groups;
                }
            }
        }
        // Earliest legal stage.
        let mut lo = 0usize;
        let mut placeable = true;
        for &p in &preds[g] {
            match stage_of[p] {
                Some(s) => lo = lo.max(s + 1),
                None => {
                    placeable = false;
                    break;
                }
            }
        }
        let mut chosen = None;
        if placeable {
            'stage: for s in lo..stages {
                if used_f[s] + hf[g] > target.stateful_alus
                    || used_l[s] + hl[g] > target.stateless_alus
                    || used_m[s] + mem_min[g] > target.memory_bits
                {
                    continue;
                }
                for &e in &excls[g] {
                    if stage_of[e] == Some(s) {
                        continue 'stage;
                    }
                }
                chosen = Some(s);
                break;
            }
        }
        match chosen {
            Some(s) => {
                stage_of[g] = Some(s);
                used_f[s] += hf[g];
                used_l[s] += hl[g];
                used_m[s] += mem_min[g];
            }
            None => {
                if tag[g].is_empty() {
                    return Err(Diagnostic::error(format!(
                        "greedy placement failed: mandatory group `{}` does not fit on \
                         target `{}`",
                        graph.nodes[g].label, target.name
                    ))
                    .with_note(
                        "the greedy baseline only drops elastic loop iterations; a \
                         non-loop group that does not fit makes the program unplaceable",
                    ));
                }
                for it in &tag[g] {
                    let e = dead_from.entry(it.symbolic.clone()).or_insert(usize::MAX);
                    *e = (*e).min(it.index);
                }
                // Unplace earlier groups of this same iteration (coherence).
                for g2 in 0..g {
                    if tag[g2] == tag[g] {
                        if let Some(s2) = stage_of[g2].take() {
                            used_f[s2] -= hf[g2];
                            used_l[s2] -= hl[g2];
                            used_m[s2] -= mem_min[g2];
                        }
                    }
                }
            }
        }
    }

    // --- Memory: split each stage's memory evenly among its registers. ---
    // Collect placed register instances with their stage.
    struct RegSlot {
        reg: String,
        instance: usize,
        elem_bits: u32,
        stage: usize,
        size_sym: Option<String>,
        fixed_cells: Option<u64>,
    }
    let mut slots: Vec<RegSlot> = Vec::new();
    for (g, node) in graph.nodes.iter().enumerate() {
        let Some(s) = stage_of[g] else { continue };
        for &m in &node.members {
            if let Some(r) = &unrolled.instances[m].reg {
                if slots.iter().any(|x| x.reg == r.reg && x.instance == r.instance) {
                    continue;
                }
                let Some(decl) = info.program.register(&r.reg) else {
                    return Err(Diagnostic::internal(format!(
                        "unrolled program references undeclared register `{}`",
                        r.reg
                    )));
                };
                slots.push(RegSlot {
                    reg: r.reg.clone(),
                    instance: r.instance,
                    elem_bits: decl.elem_bits,
                    stage: s,
                    size_sym: decl.cells.symbolic_name().map(str::to_string),
                    fixed_cells: match &decl.cells {
                        p4all_lang::ast::Size::Const(k) => Some(*k),
                        _ => None,
                    },
                });
            }
        }
    }
    // Fixed-size registers take their demand off the top.
    let mut stage_free: Vec<i64> = vec![target.memory_bits as i64; stages];
    for sl in &slots {
        if let Some(k) = sl.fixed_cells {
            stage_free[sl.stage] -= (k * sl.elem_bits as u64) as i64;
        }
    }
    // Elastic registers share the leftover within their stage; each slot
    // is granted its mined `assume` lower bound first (default one cell)
    // and the remainder splits evenly, so registers with different lower
    // bounds do not starve each other. The symbolic's value is the min
    // across its instances (equal-row-size rule).
    let lo_cells_of = |sym: &str| info.mined.get(sym).and_then(|b| b.lo).unwrap_or(1).max(1);
    let mut elastic_count_per_stage = vec![0u64; stages];
    let mut elastic_lo_bits = vec![0u64; stages];
    for sl in &slots {
        if let Some(sym) = &sl.size_sym {
            elastic_count_per_stage[sl.stage] += 1;
            elastic_lo_bits[sl.stage] += lo_cells_of(sym) * sl.elem_bits as u64;
        }
    }
    let mut sym_cells: BTreeMap<String, u64> = BTreeMap::new();
    for sl in &slots {
        let Some(sym) = &sl.size_sym else { continue };
        let peers = elastic_count_per_stage[sl.stage].max(1);
        let free = (stage_free[sl.stage].max(0) as u64).saturating_sub(elastic_lo_bits[sl.stage]);
        let share_bits = lo_cells_of(sym) * sl.elem_bits as u64 + free / peers;
        let cells = share_bits / sl.elem_bits as u64;
        let e = sym_cells.entry(sym.clone()).or_insert(u64::MAX);
        *e = (*e).min(cells);
    }
    // Honour mined bounds from assumes. A share below the lower bound is
    // an honest failure: emitting the register at zero cells (or silently
    // dropping it) would hand back a layout that violates the program's
    // own `assume`s.
    for (sym, cells) in sym_cells.iter_mut() {
        if let Some(b) = info.mined.get(sym) {
            if let Some(hi) = b.hi {
                *cells = (*cells).min(hi);
            }
            if let Some(lo) = b.lo {
                if *cells < lo {
                    return Err(Diagnostic::error(format!(
                        "greedy placement failed: best share for size symbolic `{sym}` \
                         is {cells} cells, below its `assume` lower bound of {lo}"
                    ))
                    .with_note(
                        "the greedy baseline splits stage memory evenly; the ILP may \
                         still find a feasible asymmetric split",
                    ));
                }
            }
        }
    }

    // --- Assemble the layout. ---
    let mut placements = Vec::new();
    let mut usage = PipelineUsage::new(stages);
    let mut live_iters: BTreeMap<String, u64> = BTreeMap::new();
    let mut seen_iter: BTreeMap<(String, usize), bool> = BTreeMap::new();
    for (g, node) in graph.nodes.iter().enumerate() {
        let Some(s) = stage_of[g] else { continue };
        placements.push(Placement { group: g, label: node.label.clone(), stage: s });
        usage.stages[s].stateful_alus += hf[g];
        usage.stages[s].stateless_alus += hl[g];
        for it in &tag[g] {
            seen_iter.insert((it.symbolic.clone(), it.index), true);
        }
    }
    for sym in seen_iter.keys() {
        *live_iters.entry(sym.0.clone()).or_insert(0) = live_iters
            .get(&sym.0)
            .copied()
            .unwrap_or(0)
            .max(sym.1 as u64 + 1);
    }

    let mut registers = Vec::new();
    for sl in &slots {
        let cells = match (&sl.size_sym, sl.fixed_cells) {
            (_, Some(k)) => k,
            (Some(sym), None) => sym_cells.get(sym).copied().unwrap_or(0),
            (None, None) => 0,
        };
        if cells == 0 {
            continue;
        }
        registers.push(RegisterAllocation {
            reg: sl.reg.clone(),
            instance: sl.instance,
            stage: sl.stage,
            cells,
            elem_bits: sl.elem_bits,
        });
        usage.stages[sl.stage].memory_bits += cells * sl.elem_bits as u64;
    }

    let mut symbol_values: BTreeMap<String, u64> = BTreeMap::new();
    for sym in info.count_symbolics() {
        symbol_values.insert(sym.to_string(), live_iters.get(sym).copied().unwrap_or(0));
    }
    for (sym, cells) in &sym_cells {
        symbol_values.insert(sym.clone(), *cells);
    }
    // A size symbolic whose registers were never placed (all the loop
    // iterations touching them were dropped) still needs a value for the
    // layout to be checkable.
    for sym in info.size_symbolics() {
        symbol_values.entry(sym.to_string()).or_insert(0);
    }
    // Dropping iterations can sink a count symbolic below an `assume`
    // lower bound (e.g. `rows >= 1` with every row dropped); that is a
    // greedy failure, not a valid layout.
    for (sym, v) in &symbol_values {
        if let Some(lo) = info.mined.get(sym).and_then(|b| b.lo) {
            if *v < lo {
                return Err(Diagnostic::error(format!(
                    "greedy placement failed: `{sym}` = {v} violates its `assume` \
                     lower bound of {lo}"
                )));
            }
        }
    }

    let mut phv = info.fixed_phv_bits();
    for (sym, _) in seen_iter.keys() {
        phv += info.meta_chunk_bits(sym);
    }
    usage.phv_elastic_bits = phv;

    // Backstop for anything the checks above cannot see (non-minable
    // `assume` shapes, shared register instances whose owning group was
    // unplaced): a greedy `Ok` must mean a genuinely valid layout.
    if let Err(violations) = crate::verify::assumes_hold(&info.program, &symbol_values) {
        return Err(Diagnostic::error(format!(
            "greedy placement failed: {}",
            violations.join("; ")
        )));
    }
    if let Err(violations) = p4all_pisa::validate(&usage, target) {
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        return Err(Diagnostic::error(format!(
            "greedy placement failed: layout does not fit `{}`: {}",
            target.name,
            rendered.join("; ")
        )));
    }

    Ok(Layout { symbol_values, placements, registers, objective: 0.0, usage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_full;
    use crate::elaborate::elaborate;
    use crate::ir::instantiate;
    use p4all_lang::parse;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    #[test]
    fn greedy_layout_is_feasible() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let layout = place_greedy(&info, &u, &g, &target).unwrap();
        p4all_pisa::validate(&layout.usage, &target)
            .unwrap_or_else(|e| panic!("greedy produced invalid layout: {e:?}"));
        assert!(layout.symbol_values["rows"] >= 1);
        assert!(layout.symbol_values["cols"] >= 1);
    }

    #[test]
    fn greedy_respects_precedence() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_eval(1 << 20);
        let layout = place_greedy(&info, &u, &g, &target).unwrap();
        let s_incr0 = layout.stage_of("incr[0]").unwrap();
        let s_min0 = layout.stage_of("set_min[0]").unwrap();
        assert!(s_incr0 < s_min0);
        // Exclusion between set_mins.
        let s_min1 = layout.stage_of("set_min[1]").unwrap();
        assert_ne!(s_min0, s_min1);
    }

    /// Two fixed 1536-bit registers fit a 2048-bit stage individually but
    /// not together; the ALU budget alone would co-locate them. Found by
    /// fuzzing (corpus case `greedy-layout-invalid-6e`): greedy used to
    /// place stages memory-blind and return an overflowing layout as `Ok`.
    #[test]
    fn greedy_is_memory_aware_for_fixed_registers() {
        let src = r#"
            header h { bit<32> key; }
            register<bit<64>>[24] a;
            register<bit<64>>[24] b;
            action fa() { a[0] = a[0] + 1; }
            action fb() { b[0] = b[0] + 1; }
            control Main() { apply { fa(); fb(); } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let layout = place_greedy(&info, &u, &g, &target).unwrap();
        p4all_pisa::validate(&layout.usage, &target)
            .unwrap_or_else(|e| panic!("greedy produced invalid layout: {e:?}"));
        let s_a = layout.stage_of("fa").unwrap();
        let s_b = layout.stage_of("fb").unwrap();
        assert_ne!(s_a, s_b, "1536 + 1536 bits cannot share a 2048-bit stage");
    }

    /// A lower bound the even split cannot honour is a greedy *failure*,
    /// not a licence to emit the register with zero cells (corpus case
    /// `greedy-layout-invalid-b7`).
    #[test]
    fn greedy_fails_honestly_when_a_lower_bound_cannot_be_met() {
        let src = r#"
            symbolic int cols;
            assume cols >= 1024;
            header h { bit<32> key; }
            struct metadata { bit<32> idx; }
            register<bit<32>>[cols] tab;
            action touch() {
                meta.idx = hash(hdr.key, cols);
                tab[meta.idx] = tab[meta.idx] + 1;
            }
            control Main() { apply { touch(); } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        // 1024 cells x 32 bits = 32768 bits >> 2048 per stage.
        let err = place_greedy(&info, &u, &g, &presets::paper_example()).unwrap_err();
        assert!(
            err.to_string().contains("greedy placement failed"),
            "expected an honest greedy failure, got: {err}"
        );
    }

    #[test]
    fn greedy_drops_iterations_that_do_not_fit() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 8); // way beyond a 3-stage pipeline
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let layout = place_greedy(&info, &u, &g, &target).unwrap();
        assert!(layout.symbol_values["rows"] < 8);
        p4all_pisa::validate(&layout.usage, &target).unwrap();
    }
}

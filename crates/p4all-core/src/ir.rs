//! Compiler IR: atomic action instances produced by loop unrolling.
//!
//! Unrolling replaces each elastic loop `for (i < v)` with `K` copies of
//! its body (§4.2); every action call / inline statement / table apply
//! becomes an [`ActionInstance`] — the unit the dependency analysis and the
//! ILP place into stages. Each instance records:
//!
//! - the metadata/header slots it reads and writes (including the reads of
//!   every enclosing `if` condition — control dependencies);
//! - at most one register access (PISA stateful atomicity);
//! - its primitive-operation multiset, costed by the target's `H_f`/`H_l`;
//! - its substituted statements and guard, reused later by code generation
//!   and by the behavioral simulator.

use std::collections::BTreeMap;

use p4all_lang::ast::*;
use p4all_lang::diag::Diagnostic;
use p4all_lang::span::Span;
use p4all_pisa::PrimitiveOp;

use crate::elaborate::ProgramInfo;

/// One unrolled loop level: which symbolic, which iteration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iter {
    pub symbolic: String,
    pub index: usize,
}

/// A storage slot for dependency analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Slot {
    /// Scalar metadata field.
    Meta(String),
    /// One element of a metadata array (statically known index).
    MetaElem(String, usize),
    /// A metadata array accessed with a runtime index (conservative: the
    /// whole array).
    MetaWhole(String),
    /// Header field.
    Header(String),
}

impl Slot {
    /// Do two slots potentially alias?
    pub fn conflicts(&self, other: &Slot) -> bool {
        use Slot::*;
        match (self, other) {
            (Meta(a), Meta(b)) => a == b,
            (Header(a), Header(b)) => a == b,
            (MetaElem(a, i), MetaElem(b, j)) => a == b && i == j,
            (MetaWhole(a), MetaWhole(b)) => a == b,
            (MetaWhole(a), MetaElem(b, _)) | (MetaElem(b, _), MetaWhole(a)) => a == b,
            _ => false,
        }
    }
}

/// How an instance touches its register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegKind {
    Read,
    Write,
    Rmw,
}

/// A (register, instance) access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAccess {
    pub reg: String,
    /// Concrete instance index within an array of register arrays (0 for
    /// singleton registers).
    pub instance: usize,
    pub kind: RegKind,
}

/// An atomic, placeable unit of data-plane work.
#[derive(Debug, Clone)]
pub struct ActionInstance {
    pub id: usize,
    /// Display label, e.g. `incr[2]`, `Main#1`, `tbl:cache`.
    pub label: String,
    /// Originating action name (or synthetic name for inline statements).
    pub base: String,
    /// Program order (for dependency direction).
    pub order: usize,
    /// Enclosing elastic-loop iterations, outermost first.
    pub iters: Vec<Iter>,
    pub reads: Vec<Slot>,
    pub writes: Vec<Slot>,
    pub reg: Option<RegAccess>,
    pub ops: Vec<PrimitiveOp>,
    /// Conjunction of enclosing `if` conditions (iteration-substituted).
    pub guard: Option<Expr>,
    /// Iteration-substituted body statements (empty for table applies).
    pub stmts: Vec<Stmt>,
    /// Set for table-apply instances.
    pub table: Option<String>,
    /// Source span of the originating call/statement — survives into ILP
    /// row provenance and infeasibility explanations.
    pub span: Span,
    /// Scalar slots both read and written — the commutativity witness used
    /// for exclusion edges (the paper's `min` accumulator pattern).
    pub accumulators: Vec<Slot>,
}

impl ActionInstance {
    /// True if the instance sits inside at least one elastic loop.
    pub fn is_elastic(&self) -> bool {
        !self.iters.is_empty()
    }
}

/// The fully unrolled program at a particular choice of loop bounds.
#[derive(Debug, Clone, Default)]
pub struct Unrolled {
    pub instances: Vec<ActionInstance>,
}

impl Unrolled {
    /// Instances belonging to a given iteration key.
    pub fn of_iteration(&self, iters: &[Iter]) -> Vec<&ActionInstance> {
        self.instances.iter().filter(|a| a.iters == iters).collect()
    }
}

/// Unroll the entry control of `info.program`, bounding each elastic loop
/// `for (i < v)` by `bounds[v]` iterations.
pub fn instantiate(
    info: &ProgramInfo,
    bounds: &BTreeMap<String, usize>,
) -> Result<Unrolled, Diagnostic> {
    let mut ctx = Instantiator {
        info,
        bounds,
        out: Unrolled::default(),
        env: BTreeMap::new(),
        guards: Vec::new(),
        iters: Vec::new(),
        inline_counter: 0,
    };
    if let Some(entry) = info.program.entry_control() {
        ctx.block(&entry.body, &entry.name.clone())?;
    }
    Ok(ctx.out)
}

struct Instantiator<'a> {
    info: &'a ProgramInfo,
    bounds: &'a BTreeMap<String, usize>,
    out: Unrolled,
    env: BTreeMap<String, usize>,
    guards: Vec<Expr>,
    iters: Vec<Iter>,
    inline_counter: usize,
}

impl<'a> Instantiator<'a> {
    fn block(&mut self, stmts: &[Stmt], ctx_name: &str) -> Result<(), Diagnostic> {
        for s in stmts {
            self.stmt(s, ctx_name)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, ctx_name: &str) -> Result<(), Diagnostic> {
        match s {
            Stmt::For { var, bound, body, span } => {
                let (n, tagged) = match bound {
                    Size::Const(c) => (*c as usize, None),
                    Size::Symbolic(v) => {
                        let Some(&n) = self.bounds.get(v) else {
                            return Err(Diagnostic::error_at(
                                format!("no unroll bound provided for symbolic `{v}`"),
                                *span,
                            ));
                        };
                        (n, Some(v.clone()))
                    }
                };
                for i in 0..n {
                    self.env.insert(var.clone(), i);
                    if let Some(v) = &tagged {
                        self.iters.push(Iter { symbolic: v.clone(), index: i });
                    }
                    self.block(body, ctx_name)?;
                    if tagged.is_some() {
                        self.iters.pop();
                    }
                }
                self.env.remove(var);
                Ok(())
            }
            Stmt::If { cond, then_body, else_body, span: _ } => {
                let c = subst_expr(cond, &self.env)?;
                self.guards.push(c.clone());
                self.block(then_body, ctx_name)?;
                self.guards.pop();
                if !else_body.is_empty() {
                    self.guards.push(Expr::Unary { op: UnOp::Not, operand: Box::new(c) });
                    self.block(else_body, ctx_name)?;
                    self.guards.pop();
                }
                Ok(())
            }
            Stmt::CallAction { name, index, span } => {
                let action = self
                    .info
                    .program
                    .action(name)
                    .ok_or_else(|| Diagnostic::error_at(format!("undeclared action `{name}`"), *span))?
                    .clone();
                let mut env = BTreeMap::new();
                match (&action.index_param, index) {
                    (Some(param), Some(ix)) => {
                        let v = eval_index(ix, &self.env, *span)?;
                        env.insert(param.clone(), v);
                    }
                    (Some(_), None) => {
                        return Err(Diagnostic::error_at(
                            format!("indexed action `{name}` called without `[i]`"),
                            *span,
                        ))
                    }
                    (None, Some(_)) => {
                        return Err(Diagnostic::error_at(
                            format!("action `{name}` takes no index"),
                            *span,
                        ))
                    }
                    (None, None) => {}
                }
                let label = match env.values().next() {
                    Some(i) => format!("{name}[{i}]"),
                    None => name.clone(),
                };
                let stmts: Result<Vec<Stmt>, Diagnostic> =
                    action.body.iter().map(|st| subst_stmt(st, &env)).collect();
                self.emit(label, name.clone(), stmts?, None, *span)
            }
            Stmt::Assign { span, .. } | Stmt::HashAssign { span, .. } => {
                let st = subst_stmt(s, &self.env)?;
                let label = format!("{ctx_name}#{}", self.inline_counter);
                self.inline_counter += 1;
                self.emit(label.clone(), label, vec![st], None, *span)
            }
            Stmt::ApplyTable { name, span } => {
                self.emit(format!("tbl:{name}"), name.clone(), Vec::new(), Some(name.clone()), *span)
            }
            Stmt::ApplyControl { name, span } => {
                let ctl = self
                    .info
                    .program
                    .control(name)
                    .ok_or_else(|| Diagnostic::error_at(format!("undeclared control `{name}`"), *span))?
                    .clone();
                self.block(&ctl.body, &ctl.name)
            }
        }
    }

    /// Build one ActionInstance from substituted statements.
    fn emit(
        &mut self,
        label: String,
        base: String,
        stmts: Vec<Stmt>,
        table: Option<String>,
        span: Span,
    ) -> Result<(), Diagnostic> {
        let mut reads: Vec<Slot> = Vec::new();
        let mut writes: Vec<Slot> = Vec::new();
        let mut reg_accesses: Vec<(String, usize, RegKind)> = Vec::new();
        let mut ops: Vec<PrimitiveOp> = Vec::new();

        // Guard reads are control dependencies; each guard conjunct costs a
        // comparison in the stage's gateway.
        let guard = self.guards.iter().cloned().reduce(|a, b| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(a),
            rhs: Box::new(b),
        });
        for g in &self.guards {
            expr_reads(g, &mut reads, &mut reg_accesses, span)?;
            ops.push(PrimitiveOp::Compare);
        }

        if let Some(tname) = &table {
            let tbl = self
                .info
                .program
                .table(tname)
                .ok_or_else(|| Diagnostic::error_at(format!("undeclared table `{tname}`"), span))?;
            ops.push(PrimitiveOp::TableMatch);
            for k in &tbl.keys {
                expr_reads(k, &mut reads, &mut reg_accesses, span)?;
            }
            // The table's actions may write metadata/headers; union their
            // effects (the control plane decides which fires at runtime).
            for aname in &tbl.actions {
                if let Some(a) = self.info.program.action(aname) {
                    for st in &a.body {
                        stmt_effects(st, &mut reads, &mut writes, &mut reg_accesses, &mut ops, span)?;
                    }
                }
            }
        }

        for st in &stmts {
            stmt_effects(st, &mut reads, &mut writes, &mut reg_accesses, &mut ops, span)?;
        }

        // Merge register accesses: at most one (reg, instance) per action.
        reg_accesses.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let mut merged: Option<RegAccess> = None;
        for (reg, inst, kind) in reg_accesses {
            match &mut merged {
                None => merged = Some(RegAccess { reg, instance: inst, kind }),
                Some(m) if m.reg == reg && m.instance == inst => {
                    m.kind = match (m.kind, kind) {
                        (RegKind::Read, RegKind::Read) => RegKind::Read,
                        (RegKind::Write, RegKind::Write) => RegKind::Write,
                        _ => RegKind::Rmw,
                    };
                }
                Some(m) => {
                    return Err(Diagnostic::error_at(
                        format!(
                            "action instance `{label}` accesses two register instances \
                             ({}[{}] and {reg}[{inst}]); stateful actions are atomic on one",
                            m.reg, m.instance
                        ),
                        span,
                    ))
                }
            }
        }
        if let Some(m) = &merged {
            ops.push(match m.kind {
                RegKind::Read => PrimitiveOp::RegisterRead,
                RegKind::Write => PrimitiveOp::RegisterWrite,
                RegKind::Rmw => PrimitiveOp::RegisterRmw,
            });
        }

        dedup(&mut reads);
        dedup(&mut writes);
        let accumulators: Vec<Slot> = writes
            .iter()
            .filter(|w| matches!(w, Slot::Meta(_)) && reads.iter().any(|r| r.conflicts(w)))
            .cloned()
            .collect();

        let id = self.out.instances.len();
        self.out.instances.push(ActionInstance {
            id,
            label,
            base,
            order: id,
            iters: self.iters.clone(),
            reads,
            writes,
            reg: merged,
            ops,
            guard,
            stmts,
            table,
            span,
            accumulators,
        });
        Ok(())
    }
}

fn dedup(v: &mut Vec<Slot>) {
    v.sort();
    v.dedup();
}

/// Evaluate an action-call index expression to a constant.
fn eval_index(e: &Expr, env: &BTreeMap<String, usize>, span: Span) -> Result<usize, Diagnostic> {
    match e {
        Expr::Int(v) => Ok(*v as usize),
        Expr::IndexVar(name) => env.get(name).copied().ok_or_else(|| {
            Diagnostic::error_at(format!("index variable `{name}` not in scope"), span)
        }),
        _ => Err(Diagnostic::error_at(
            "action index must be a loop variable or constant".to_string(),
            span,
        )),
    }
}

/// Substitute loop variables with constants in an expression.
pub fn subst_expr(e: &Expr, env: &BTreeMap<String, usize>) -> Result<Expr, Diagnostic> {
    Ok(match e {
        Expr::IndexVar(name) => match env.get(name) {
            Some(&v) => Expr::Int(v as u64),
            None => Expr::IndexVar(name.clone()),
        },
        Expr::Meta { field, index } => Expr::Meta {
            field: field.clone(),
            index: match index {
                Some(i) => Some(Box::new(subst_expr(i, env)?)),
                None => None,
            },
        },
        Expr::RegisterRead { reg, instance, cell } => Expr::RegisterRead {
            reg: reg.clone(),
            instance: match instance {
                Some(i) => Some(Box::new(subst_expr(i, env)?)),
                None => None,
            },
            cell: Box::new(subst_expr(cell, env)?),
        },
        Expr::Unary { op, operand } => {
            Expr::Unary { op: *op, operand: Box::new(subst_expr(operand, env)?) }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_expr(lhs, env)?),
            rhs: Box::new(subst_expr(rhs, env)?),
        },
        other => other.clone(),
    })
}

/// Substitute loop variables in a statement.
pub fn subst_stmt(s: &Stmt, env: &BTreeMap<String, usize>) -> Result<Stmt, Diagnostic> {
    Ok(match s {
        Stmt::Assign { lhs, rhs, span } => Stmt::Assign {
            lhs: subst_lvalue(lhs, env)?,
            rhs: subst_expr(rhs, env)?,
            span: *span,
        },
        Stmt::HashAssign { lhs, inputs, range, span } => Stmt::HashAssign {
            lhs: subst_lvalue(lhs, env)?,
            inputs: inputs.iter().map(|e| subst_expr(e, env)).collect::<Result<_, _>>()?,
            range: range.clone(),
            span: *span,
        },
        Stmt::If { cond, then_body, else_body, span } => Stmt::If {
            cond: subst_expr(cond, env)?,
            then_body: then_body.iter().map(|t| subst_stmt(t, env)).collect::<Result<_, _>>()?,
            else_body: else_body.iter().map(|t| subst_stmt(t, env)).collect::<Result<_, _>>()?,
            span: *span,
        },
        Stmt::For { span, .. } => {
            return Err(Diagnostic::error_at(
                "loops are not allowed inside action bodies".to_string(),
                *span,
            ))
        }
        other => other.clone(),
    })
}

fn subst_lvalue(l: &LValue, env: &BTreeMap<String, usize>) -> Result<LValue, Diagnostic> {
    Ok(match l {
        LValue::Meta { field, index } => LValue::Meta {
            field: field.clone(),
            index: match index {
                Some(i) => Some(subst_expr(i, env)?),
                None => None,
            },
        },
        LValue::Header { field } => LValue::Header { field: field.clone() },
        LValue::Register { reg, instance, cell } => LValue::Register {
            reg: reg.clone(),
            instance: match instance {
                Some(i) => Some(subst_expr(i, env)?),
                None => None,
            },
            cell: Box::new(subst_expr(cell, env)?),
        },
    })
}

/// Read slots (and register reads) of an expression.
fn expr_reads(
    e: &Expr,
    reads: &mut Vec<Slot>,
    regs: &mut Vec<(String, usize, RegKind)>,
    span: Span,
) -> Result<(), Diagnostic> {
    match e {
        Expr::Meta { field, index } => {
            match index.as_deref() {
                None => reads.push(Slot::Meta(field.clone())),
                Some(Expr::Int(i)) => reads.push(Slot::MetaElem(field.clone(), *i as usize)),
                Some(other) => {
                    reads.push(Slot::MetaWhole(field.clone()));
                    expr_reads(other, reads, regs, span)?;
                }
            }
            Ok(())
        }
        Expr::Header { field } => {
            reads.push(Slot::Header(field.clone()));
            Ok(())
        }
        Expr::RegisterRead { reg, instance, cell } => {
            let inst = reg_instance_index(instance.as_deref(), span)?;
            regs.push((reg.clone(), inst, RegKind::Read));
            expr_reads(cell, reads, regs, span)
        }
        Expr::Unary { operand, .. } => expr_reads(operand, reads, regs, span),
        Expr::Binary { lhs, rhs, .. } => {
            expr_reads(lhs, reads, regs, span)?;
            expr_reads(rhs, reads, regs, span)
        }
        _ => Ok(()),
    }
}

fn reg_instance_index(instance: Option<&Expr>, span: Span) -> Result<usize, Diagnostic> {
    match instance {
        None => Ok(0),
        Some(Expr::Int(v)) => Ok(*v as usize),
        Some(_) => Err(Diagnostic::error_at(
            "register instance index must resolve to a constant (use the loop variable)"
                .to_string(),
            span,
        )),
    }
}

/// Accumulate the effects of one substituted statement.
fn stmt_effects(
    s: &Stmt,
    reads: &mut Vec<Slot>,
    writes: &mut Vec<Slot>,
    regs: &mut Vec<(String, usize, RegKind)>,
    ops: &mut Vec<PrimitiveOp>,
    span: Span,
) -> Result<(), Diagnostic> {
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            expr_reads(rhs, reads, regs, span)?;
            match lhs {
                LValue::Meta { field, index } => {
                    match index {
                        None => writes.push(Slot::Meta(field.clone())),
                        Some(Expr::Int(i)) => {
                            writes.push(Slot::MetaElem(field.clone(), *i as usize))
                        }
                        Some(other) => {
                            writes.push(Slot::MetaWhole(field.clone()));
                            expr_reads(other, reads, regs, span)?;
                        }
                    }
                    if !rhs.reads_register() {
                        ops.push(PrimitiveOp::MetaWrite);
                    }
                }
                LValue::Header { field } => {
                    writes.push(Slot::Header(field.clone()));
                    if !rhs.reads_register() {
                        ops.push(PrimitiveOp::MetaWrite);
                    }
                }
                LValue::Register { reg, instance, cell } => {
                    let inst = reg_instance_index(instance.as_ref(), span)?;
                    regs.push((reg.clone(), inst, RegKind::Write));
                    expr_reads(cell, reads, regs, span)?;
                }
            }
            Ok(())
        }
        Stmt::HashAssign { lhs, inputs, .. } => {
            for i in inputs {
                expr_reads(i, reads, regs, span)?;
            }
            ops.push(PrimitiveOp::Hash);
            match lhs {
                LValue::Meta { field, index } => match index {
                    None => writes.push(Slot::Meta(field.clone())),
                    Some(Expr::Int(i)) => writes.push(Slot::MetaElem(field.clone(), *i as usize)),
                    Some(other) => {
                        writes.push(Slot::MetaWhole(field.clone()));
                        expr_reads(other, reads, regs, span)?;
                    }
                },
                LValue::Header { field } => writes.push(Slot::Header(field.clone())),
                LValue::Register { reg, instance, cell } => {
                    let inst = reg_instance_index(instance.as_ref(), span)?;
                    regs.push((reg.clone(), inst, RegKind::Write));
                    expr_reads(cell, reads, regs, span)?;
                }
            }
            Ok(())
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            expr_reads(cond, reads, regs, span)?;
            ops.push(PrimitiveOp::Compare);
            for t in then_body.iter().chain(else_body) {
                stmt_effects(t, reads, writes, regs, ops, span)?;
            }
            Ok(())
        }
        Stmt::For { span: fspan, .. } => Err(Diagnostic::error_at(
            "loops are not allowed inside action bodies".to_string(),
            *fspan,
        )),
        Stmt::CallAction { span, .. } | Stmt::ApplyTable { span, .. }
        | Stmt::ApplyControl { span, .. } => Err(Diagnostic::error_at(
            "nested calls/applies are not allowed inside action bodies".to_string(),
            *span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use p4all_lang::parse;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    fn unroll_cms(rows: usize) -> Unrolled {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), rows);
        instantiate(&info, &bounds).unwrap()
    }

    #[test]
    fn cms_unrolls_to_2k_instances() {
        let u = unroll_cms(3);
        assert_eq!(u.instances.len(), 6);
        let labels: Vec<&str> = u.instances.iter().map(|a| a.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["incr[0]", "incr[1]", "incr[2]", "set_min[0]", "set_min[1]", "set_min[2]"]
        );
    }

    #[test]
    fn incr_effects() {
        let u = unroll_cms(2);
        let incr1 = &u.instances[1];
        assert_eq!(incr1.iters, vec![Iter { symbolic: "rows".into(), index: 1 }]);
        assert_eq!(
            incr1.reg,
            Some(RegAccess { reg: "cms".into(), instance: 1, kind: RegKind::Rmw })
        );
        assert!(incr1.reads.contains(&Slot::Header("key".into())));
        assert!(incr1.writes.contains(&Slot::MetaElem("index".into(), 1)));
        assert!(incr1.writes.contains(&Slot::MetaElem("count".into(), 1)));
        assert!(incr1.ops.contains(&PrimitiveOp::Hash));
        assert!(incr1.ops.contains(&PrimitiveOp::RegisterRmw));
        assert!(incr1.guard.is_none());
        assert!(incr1.accumulators.is_empty());
    }

    #[test]
    fn set_min_is_guarded_accumulator() {
        let u = unroll_cms(2);
        let m0 = &u.instances[2];
        assert_eq!(m0.label, "set_min[0]");
        assert!(m0.guard.is_some(), "guard from the enclosing if");
        // Reads count[0] (guard) and min (guard); writes min.
        assert!(m0.reads.contains(&Slot::MetaElem("count".into(), 0)));
        assert!(m0.reads.contains(&Slot::Meta("min".into())));
        assert!(m0.writes.contains(&Slot::Meta("min".into())));
        assert_eq!(m0.accumulators, vec![Slot::Meta("min".into())]);
        assert!(m0.ops.contains(&PrimitiveOp::Compare));
        assert!(m0.reg.is_none());
    }

    #[test]
    fn guard_indices_are_substituted() {
        let u = unroll_cms(3);
        let m2 = &u.instances[5];
        match m2.guard.as_ref().unwrap() {
            Expr::Binary { lhs, .. } => match &**lhs {
                Expr::Meta { field, index } => {
                    assert_eq!(field, "count");
                    assert_eq!(index.as_deref(), Some(&Expr::Int(2)));
                }
                other => panic!("unexpected guard lhs {other:?}"),
            },
            other => panic!("unexpected guard {other:?}"),
        }
    }

    #[test]
    fn zero_iterations_yields_nothing() {
        let u = unroll_cms(0);
        assert!(u.instances.is_empty());
    }

    #[test]
    fn slot_conflict_semantics() {
        let a = Slot::MetaElem("count".into(), 1);
        let b = Slot::MetaElem("count".into(), 2);
        let w = Slot::MetaWhole("count".into());
        let s = Slot::Meta("min".into());
        assert!(!a.conflicts(&b));
        assert!(a.conflicts(&a.clone()));
        assert!(w.conflicts(&a));
        assert!(!w.conflicts(&s));
        assert!(!Slot::Header("key".into()).conflicts(&s));
    }

    #[test]
    fn inline_statements_become_instances() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                }
            }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        assert_eq!(u.instances.len(), 2);
        assert_eq!(u.instances[0].label, "Main#0");
        assert!(u.instances[1].reads.contains(&Slot::Meta("a".into())));
        assert!(!u.instances[0].is_elastic());
    }

    #[test]
    fn table_instance_reads_keys_and_unions_action_writes() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<8> hit; }
            action on_hit() { meta.hit = 1; }
            action on_miss() { meta.hit = 0; }
            table cache {
                key = { hdr.key; }
                actions = { on_hit; on_miss; }
                size = 16;
            }
            control Main() { apply { cache.apply(); } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        assert_eq!(u.instances.len(), 1);
        let t = &u.instances[0];
        assert_eq!(t.table.as_deref(), Some("cache"));
        assert!(t.ops.contains(&PrimitiveOp::TableMatch));
        assert!(t.reads.contains(&Slot::Header("key".into())));
        assert!(t.writes.contains(&Slot::Meta("hit".into())));
    }

    #[test]
    fn const_bound_loops_unroll_without_tags() {
        let src = r#"
            struct metadata { bit<32>[4] slot; }
            action put()[int i] { meta.slot[i] = 7; }
            control Main() { apply { for (i < 3) { put()[i]; } } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        assert_eq!(u.instances.len(), 3);
        assert!(u.instances.iter().all(|a| a.iters.is_empty()));
        assert_eq!(u.instances[2].writes, vec![Slot::MetaElem("slot".into(), 2)]);
    }

    #[test]
    fn missing_bound_is_an_error() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let e = instantiate(&info, &BTreeMap::new()).unwrap_err();
        assert!(e.message.contains("no unroll bound"), "{e}");
    }

    #[test]
    fn nested_elastic_loops_tag_both_levels() {
        let src = r#"
            symbolic int outer;
            symbolic int inner;
            struct metadata { bit<32> x; }
            register<bit<32>>[16][outer] a;
            register<bit<32>>[16][inner] b;
            action touch_a()[int i] { a[i][0] = 1; }
            action touch_b()[int j] { b[j][0] = 1; }
            control Main() {
                apply {
                    for (i < outer) {
                        touch_a()[i];
                        for (j < inner) { touch_b()[j]; }
                    }
                }
            }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("outer".to_string(), 2);
        bounds.insert("inner".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        assert_eq!(u.instances.len(), 2 + 4);
        let tb = u.instances.iter().find(|a| a.label == "touch_b[1]").unwrap();
        assert_eq!(tb.iters.len(), 2);
        assert_eq!(tb.iters[0].symbolic, "outer");
        assert_eq!(tb.iters[1].symbolic, "inner");
    }
}

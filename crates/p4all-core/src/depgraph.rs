//! Dependency graph construction (§4.2 of the paper).
//!
//! Nodes group action instances that access the same register instance
//! (they must share a stage). Two kinds of edges:
//!
//! - **precedence** (`n1 -> n2`, directed): a data or control dependency
//!   forces `n1` strictly before `n2`;
//! - **exclusion** (`n1 -- n2`, undirected): the actions commute but cannot
//!   share a stage (the paper's example: every pair of `min_i`s, which all
//!   read-modify-write the scalar `meta.min`).
//!
//! Commutativity is recognized by the accumulator pattern: two instances of
//! the *same* action at *different* iterations whose conflicting slots are
//! all scalar fields that both instances read **and** write.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{ActionInstance, Slot, Unrolled};

/// A node: one or more instances pinned to a common stage.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// Indices into the originating instance list.
    pub members: Vec<usize>,
    pub label: String,
}

/// The dependency graph over a set of action instances.
#[derive(Debug, Clone)]
pub struct DepGraph {
    pub nodes: Vec<DepNode>,
    /// instance index -> node index
    pub node_of: Vec<usize>,
    /// directed edges (from, to), always from earlier program order
    pub precedence: BTreeSet<(usize, usize)>,
    /// undirected edges, stored with the smaller node index first
    pub exclusion: BTreeSet<(usize, usize)>,
}

impl DepGraph {
    /// Build the graph for `instances` (a subset of an [`Unrolled`]
    /// program; indices are positions in the given slice).
    pub fn build(instances: &[&ActionInstance]) -> DepGraph {
        // --- Group by register instance (same-stage nodes). ---
        let mut reg_node: BTreeMap<(String, usize), usize> = BTreeMap::new();
        let mut nodes: Vec<DepNode> = Vec::new();
        let mut node_of = vec![usize::MAX; instances.len()];
        for (i, inst) in instances.iter().enumerate() {
            let node = match &inst.reg {
                Some(r) => match reg_node.get(&(r.reg.clone(), r.instance)) {
                    Some(&n) => {
                        nodes[n].members.push(i);
                        nodes[n].label = format!("{}+{}", nodes[n].label, inst.label);
                        n
                    }
                    None => {
                        let n = nodes.len();
                        nodes.push(DepNode { members: vec![i], label: inst.label.clone() });
                        reg_node.insert((r.reg.clone(), r.instance), n);
                        n
                    }
                },
                None => {
                    let n = nodes.len();
                    nodes.push(DepNode { members: vec![i], label: inst.label.clone() });
                    n
                }
            };
            node_of[i] = node;
        }

        // --- Edges from pairwise conflicts. ---
        let mut precedence = BTreeSet::new();
        let mut exclusion = BTreeSet::new();
        for i in 0..instances.len() {
            for j in (i + 1)..instances.len() {
                let (a, b) = (instances[i], instances[j]);
                debug_assert!(a.order < b.order);
                let (na, nb) = (node_of[i], node_of[j]);
                if na == nb {
                    continue;
                }
                let mut conflicts: Vec<&Slot> = Vec::new();
                for w in &a.writes {
                    if b.reads.iter().any(|r| r.conflicts(w))
                        || b.writes.iter().any(|r| r.conflicts(w))
                    {
                        conflicts.push(w);
                    }
                }
                for r in &a.reads {
                    if b.writes.iter().any(|w| w.conflicts(r)) && !conflicts.contains(&r) {
                        conflicts.push(r);
                    }
                }
                if conflicts.is_empty() {
                    continue;
                }
                if commutative(a, b, &conflicts) {
                    exclusion.insert((na.min(nb), na.max(nb)));
                } else {
                    precedence.insert((na, nb));
                }
            }
        }
        // A pair with both an exclusion and a precedence relation keeps
        // only the stronger precedence edge.
        exclusion.retain(|&(x, y)| {
            !precedence.contains(&(x, y)) && !precedence.contains(&(y, x))
        });

        DepGraph { nodes, node_of, precedence, exclusion }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Length (in nodes) of the longest simple path, traversing precedence
    /// edges forward and exclusion edges in either direction.
    ///
    /// Exact (bitmask DFS) up to 64 nodes. Beyond that, falls back to the
    /// longest path of the DAG obtained by directing exclusion edges in
    /// program order — a lower bound on the true longest simple path, which
    /// keeps the unroll-bound computation sound (criteria fire no earlier
    /// than with the exact value).
    pub fn longest_simple_path(&self) -> usize {
        let n = self.nodes.len();
        if n == 0 {
            return 0;
        }
        if n <= 64 {
            self.longest_path_exact()
        } else {
            self.longest_path_dag()
        }
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.precedence {
            adj[a].push(b);
        }
        for &(a, b) in &self.exclusion {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    fn longest_path_exact(&self) -> usize {
        let n = self.nodes.len();
        let adj = self.adjacency();
        let mut best = 1usize;
        // DFS from every node; visited set as bitmask.
        fn dfs(v: usize, visited: u64, depth: usize, adj: &[Vec<usize>], best: &mut usize) {
            if depth > *best {
                *best = depth;
            }
            for &w in &adj[v] {
                let bit = 1u64 << w;
                if visited & bit == 0 {
                    dfs(w, visited | bit, depth + 1, adj, best);
                }
            }
        }
        for v in 0..n {
            dfs(v, 1u64 << v, 1, &adj, &mut best);
        }
        best
    }

    fn longest_path_dag(&self) -> usize {
        // Direct exclusion edges low -> high (all edges already go from
        // earlier to later program order, so this is a DAG).
        let n = self.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.precedence {
            adj[a].push(b);
        }
        for &(a, b) in &self.exclusion {
            adj[a.min(b)].push(a.max(b));
        }
        // Nodes indexed by construction order = program order, so a simple
        // reverse sweep is a topological DP.
        let mut dp = vec![1usize; n];
        for v in (0..n).rev() {
            for &w in &adj[v] {
                dp[v] = dp[v].max(1 + dp[w]);
            }
        }
        dp.into_iter().max().unwrap_or(0)
    }

    /// Sum of `H_f + H_l` over all member instances, using the target's
    /// cost model.
    pub fn total_alus(
        &self,
        instances: &[&ActionInstance],
        costs: &p4all_pisa::AluCostModel,
    ) -> u64 {
        instances
            .iter()
            .map(|a| {
                (costs.stateful_cost(a.ops.iter()) + costs.stateless_cost(a.ops.iter())) as u64
            })
            .sum()
    }
}

/// Are `a` and `b` commutative with respect to their `conflicts`?
fn commutative(a: &ActionInstance, b: &ActionInstance, conflicts: &[&Slot]) -> bool {
    if a.base != b.base || a.iters == b.iters {
        return false;
    }
    conflicts.iter().all(|c| {
        a.accumulators.iter().any(|s| s.conflicts(c))
            && b.accumulators.iter().any(|s| s.conflicts(c))
    })
}

/// Convenience: build over every instance of an unrolled program.
pub fn build_full(unrolled: &Unrolled) -> DepGraph {
    let refs: Vec<&ActionInstance> = unrolled.instances.iter().collect();
    DepGraph::build(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use crate::ir::instantiate;
    use p4all_lang::parse;
    use std::collections::BTreeMap;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    fn cms_graph(rows: usize) -> DepGraph {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), rows);
        let u = instantiate(&info, &bounds).unwrap();
        build_full(&u)
    }

    /// Figure 9: each incr_i precedes its set_min_i; the set_min_i pairs are
    /// linked by exclusion edges.
    #[test]
    fn cms_graph_matches_figure_9() {
        let g = cms_graph(3);
        assert_eq!(g.len(), 6);
        // incr_i -> set_min_i precedence (node indices: incr 0..3, min 3..6)
        for i in 0..3 {
            assert!(
                g.precedence.contains(&(i, 3 + i)),
                "missing incr[{i}] -> set_min[{i}]: {:?}",
                g.precedence
            );
        }
        // min pairs are exclusions
        for a in 3..6 {
            for b in (a + 1)..6 {
                assert!(g.exclusion.contains(&(a, b)), "missing exclusion {a}--{b}");
            }
        }
        // no incr-incr edges (independent registers, disjoint metadata)
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert!(!g.precedence.contains(&(a, b)));
                assert!(!g.exclusion.contains(&(a, b)));
            }
        }
    }

    /// Figure 9's caption: unrolled three times, the longest simple path is
    /// four nodes (incr_i, min_i, min_j, min_k).
    #[test]
    fn cms_longest_path_at_k3_is_4() {
        let g = cms_graph(3);
        assert_eq!(g.longest_simple_path(), 4);
    }

    #[test]
    fn cms_longest_path_at_k2_is_3() {
        let g = cms_graph(2);
        assert_eq!(g.longest_simple_path(), 3);
    }

    #[test]
    fn single_iteration_path_is_2() {
        let g = cms_graph(1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.longest_simple_path(), 2);
    }

    #[test]
    fn same_register_instances_share_a_node() {
        let src = r#"
            struct metadata { bit<32> a; bit<32> b; }
            register<bit<32>>[16] r;
            action first() { meta.a = r[0]; }
            action second() { r[1] = 5; }
            control Main() { apply { first(); second(); } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        assert_eq!(g.len(), 1, "both touch register r -> one node");
        assert_eq!(g.nodes[0].members.len(), 2);
    }

    #[test]
    fn sequential_dependency_chain() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; bit<32> c; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                    meta.c = meta.b + 1;
                }
            }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        assert_eq!(g.len(), 3);
        assert!(g.precedence.contains(&(0, 1)));
        assert!(g.precedence.contains(&(1, 2)));
        assert_eq!(g.longest_simple_path(), 3);
    }

    #[test]
    fn independent_statements_have_no_edges() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = hdr.key;
                }
            }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        assert!(g.precedence.is_empty());
        assert!(g.exclusion.is_empty());
        assert_eq!(g.longest_simple_path(), 1);
    }

    #[test]
    fn waw_without_accumulator_is_precedence() {
        // Two different actions writing the same scalar: last writer wins,
        // so program order must be preserved (precedence, not exclusion).
        let src = r#"
            struct metadata { bit<32> x; }
            action set1() { meta.x = 1; }
            action set2() { meta.x = 2; }
            control Main() { apply { set1(); set2(); } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let u = instantiate(&info, &BTreeMap::new()).unwrap();
        let g = build_full(&u);
        assert!(g.precedence.contains(&(0, 1)));
        assert!(g.exclusion.is_empty());
    }

    #[test]
    fn total_alus_uses_cost_model() {
        let g = cms_graph(2);
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let refs: Vec<_> = u.instances.iter().collect();
        let costs = p4all_pisa::AluCostModel::tofino_like();
        // incr: Hash(0,1) + Rmw(1,0) = 2 each; set_min: Compare(0,1) +
        // MetaWrite(0,1) = 2 each -> total 8 for K=2.
        assert_eq!(g.total_alus(&refs, &costs), 8);
    }
}

//! ILP generation (Figure 10 of the paper).
//!
//! Encodes the placement of the fully unrolled program into a
//! [`p4all_ilp::Model`]:
//!
//! - `x[g][s]` — binary: dependency-graph node (group) `g` is in stage `s`.
//!   Grouping instances that share a register instance *is* constraint #4
//!   (same-stage) by construction.
//! - `c[r][s]` — integer: cells of register instance `r` allocated in stage
//!   `s` (the paper's memory variables `m_{r,s}`, in element units).
//! - `d[(v,i)]` — binary: metadata chunk for iteration `i` of count
//!   symbolic `v` is live (the paper's `d_i`).
//! - `V_sz` — integer: the value of size symbolic `sz` (register cells /
//!   hash range), shared by every register sized by `sz` — constraint #10
//!   (equal row sizes) falls out of the sharing.
//!
//! Constraints #5 (exclusion), #6 (precedence), #7 (iteration coherence),
//! #8 (per-stage memory), #9 (memory/action co-location), #11/#12 (ALU
//! budgets), #13/#14 (PHV), #15/#16/#17 (at-most-once, in-order,
//! mandatory inelastic) are generated exactly as in the paper; user
//! `assume`s and the `optimize` utility are linearized over the same
//! variables (products `count * size` of one register array linearize to
//! total allocated cells).

// Stage-indexed `for s in 0..stages` loops index the placement matrix in
// lockstep with constraint names; keep the paper notation.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use p4all_ilp::{LinExpr, Model, Sense, VarId};
use p4all_lang::ast::{BinOp, Expr, Size, UnOp};
use p4all_lang::diag::Diagnostic;
use p4all_lang::span::Span;
use p4all_pisa::TargetSpec;

use crate::depgraph::DepGraph;
use crate::elaborate::{ProgramInfo, SymRole};
use crate::ir::{ActionInstance, Iter, Unrolled};

/// PISA resource kind a constraint row draws on (the paper's S/M/F/L/P),
/// plus the non-physical origins (program structure, user assumptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResourceKind {
    /// Pipeline stages `S` (placement, ordering, exclusion).
    Stages,
    /// Per-stage SRAM `M` (register cells).
    Memory,
    /// Stateful ALUs `F` per stage.
    StatefulAlu,
    /// Stateless ALUs `L` per stage.
    StatelessAlu,
    /// PHV bits `P`.
    Phv,
    /// Program structure (iteration coherence, liveness links) — consumes
    /// no physical resource by itself.
    Structural,
    /// A user-written `assume`.
    Assumption,
}

impl ResourceKind {
    /// The paper's single-letter resource name (`S`/`M`/`F`/`L`/`P`).
    pub fn letter(self) -> &'static str {
        match self {
            ResourceKind::Stages => "S",
            ResourceKind::Memory => "M",
            ResourceKind::StatefulAlu => "F",
            ResourceKind::StatelessAlu => "L",
            ResourceKind::Phv => "P",
            ResourceKind::Structural => "-",
            ResourceKind::Assumption => "A",
        }
    }

    /// Human-readable resource name for explanations.
    pub fn describe(self) -> &'static str {
        match self {
            ResourceKind::Stages => "pipeline stages (S)",
            ResourceKind::Memory => "per-stage SRAM (M)",
            ResourceKind::StatefulAlu => "stateful ALUs (F)",
            ResourceKind::StatelessAlu => "stateless ALUs (L)",
            ResourceKind::Phv => "PHV bits (P)",
            ResourceKind::Structural => "program structure",
            ResourceKind::Assumption => "user assumption",
        }
    }

    /// True for the five physical PISA resources.
    pub fn is_physical(self) -> bool {
        !matches!(self, ResourceKind::Structural | ResourceKind::Assumption)
    }
}

/// Where one ILP constraint row came from. Attached to every row the
/// generator emits; the infeasibility explainer maps IIS members through
/// this back to elastic structures and source spans.
#[derive(Debug, Clone)]
pub struct RowProvenance {
    /// Human-readable origin, e.g. `precedence incr[0] -> set_min[0]`.
    pub detail: String,
    pub resource: ResourceKind,
    /// Symbolic values implicated by the row.
    pub symbolics: Vec<String>,
    /// Source anchor (loop statement, register declaration, or assume).
    pub span: Option<Span>,
    /// Owning tenant in a joint (multi-tenant) compile, derived from the
    /// `tenant::` prefix its symbolics share. `None` for single-program
    /// compiles and for rows spanning several tenants (shared capacity
    /// rows).
    pub tenant: Option<String>,
}

impl RowProvenance {
    fn new(detail: impl Into<String>, resource: ResourceKind) -> Self {
        RowProvenance {
            detail: detail.into(),
            resource,
            symbolics: Vec::new(),
            span: None,
            tenant: None,
        }
    }

    fn syms<I: IntoIterator<Item = String>>(mut self, syms: I) -> Self {
        self.symbolics.extend(syms);
        self.symbolics.sort();
        self.symbolics.dedup();
        // All symbolics from one tenant's namespace: the row belongs to
        // that tenant. Mixed or un-namespaced rows stay tenant-less.
        let mut tenants = self
            .symbolics
            .iter()
            .map(|s| p4all_lang::tenant_of(s));
        self.tenant = match tenants.next() {
            Some(Some(first)) if tenants.all(|t| t == Some(first)) => Some(first.to_string()),
            _ => None,
        };
        self
    }

    fn at(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

/// Record provenance for `row`, growing the table as rows are appended.
fn tag(prov: &mut Vec<Option<RowProvenance>>, row: usize, p: RowProvenance) {
    if prov.len() <= row {
        prov.resize(row + 1, None);
    }
    prov[row] = Some(p);
}

/// One ILP placement group (a dependency-graph node).
#[derive(Debug, Clone)]
pub struct GroupInfo {
    pub label: String,
    /// Instance indices (into the unrolled program).
    pub members: Vec<usize>,
    /// Iteration tag shared by the members (empty = inelastic).
    pub iters: Vec<Iter>,
    pub stateful_alus: u32,
    pub stateless_alus: u32,
    /// Register instance owned by this group, if any.
    pub reg_instance: Option<usize>,
}

/// One register instance requiring memory.
#[derive(Debug, Clone)]
pub struct RegInstanceInfo {
    pub reg: String,
    pub instance: usize,
    pub elem_bits: u32,
    /// Owning group (co-location target).
    pub owner_group: usize,
    /// Elastic cell count (size symbolic) or fixed cells.
    pub cells: Size,
    /// Max cells that fit a single stage.
    pub cap: u64,
}

/// The generated model plus every handle needed to read the solution back.
#[derive(Debug)]
pub struct Encoding {
    pub model: Model,
    pub groups: Vec<GroupInfo>,
    /// `x[group][stage]`
    pub x: Vec<Vec<VarId>>,
    pub regs: Vec<RegInstanceInfo>,
    /// `c[reg][stage]`
    pub cells: Vec<Vec<VarId>>,
    /// `(count symbolic, iteration) -> d`
    pub d: BTreeMap<(String, usize), VarId>,
    /// size symbolic -> `V_sz`
    pub sizes: BTreeMap<String, VarId>,
    pub stages: usize,
    /// Per-row provenance, indexed by constraint row (entries may be `None`
    /// only if a row was added outside the generator).
    pub provenance: Vec<Option<RowProvenance>>,
    /// Resource-derived *column* bounds: capacity limits folded directly
    /// into a variable's bounds rather than emitted as rows (e.g. a size
    /// symbolic clamped to what one stage's SRAM can hold). The IIS filter
    /// only sees rows, so the explainer consults this table to attribute
    /// such hidden limits when their symbolics appear in a conflict core.
    pub derived_bounds: Vec<DerivedBound>,
}

/// A capacity limit encoded as a variable bound instead of a row.
#[derive(Debug, Clone)]
pub struct DerivedBound {
    /// The symbolic value whose range the target clamps.
    pub symbolic: String,
    /// The physical resource the clamp derives from.
    pub resource: ResourceKind,
    /// Human-readable statement of the clamp.
    pub detail: String,
    /// Source anchor (the register declaration that forced it).
    pub span: Option<Span>,
}

impl Encoding {
    fn placed(&self, g: usize) -> LinExpr {
        LinExpr::sum(self.x[g].iter().map(|&v| LinExpr::from(v)))
    }

    /// Provenance of a constraint row, if recorded.
    pub fn provenance_of(&self, row: usize) -> Option<&RowProvenance> {
        self.provenance.get(row).and_then(|p| p.as_ref())
    }
}

/// Generate the ILP for an unrolled program on a target.
pub fn encode(
    info: &ProgramInfo,
    unrolled: &Unrolled,
    graph: &DepGraph,
    target: &TargetSpec,
) -> Result<Encoding, Diagnostic> {
    let stages = target.stages;
    let costs = &target.alu_costs;
    let mut model = Model::new();

    // ---- Groups from dependency-graph nodes ----
    let mut groups: Vec<GroupInfo> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let members = node.members.clone();
        let first: &ActionInstance = &unrolled.instances[members[0]];
        let mut hf = 0u32;
        let mut hl = 0u32;
        for &m in &members {
            let inst = &unrolled.instances[m];
            hf += costs.stateful_cost(inst.ops.iter());
            hl += costs.stateless_cost(inst.ops.iter());
        }
        groups.push(GroupInfo {
            label: node.label.clone(),
            members,
            iters: first.iters.clone(),
            stateful_alus: hf,
            stateless_alus: hl,
            reg_instance: None, // filled below
        });
    }

    // Provenance lookups for row tagging: span and symbolics per group.
    let mut prov: Vec<Option<RowProvenance>> = Vec::new();
    let mut derived: Vec<DerivedBound> = Vec::new();
    let gspan: Vec<Span> =
        groups.iter().map(|grp| unrolled.instances[grp.members[0]].span).collect();
    let gsyms: Vec<Vec<String>> = groups
        .iter()
        .map(|grp| {
            let mut v: Vec<String> = grp.iters.iter().map(|it| it.symbolic.clone()).collect();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    let glabel: Vec<String> = groups.iter().map(|grp| grp.label.clone()).collect();

    // ---- Iteration symmetry breaking ----
    // Iterations of one elastic loop are interchangeable: any feasible
    // layout can be relabeled so that, within each family of groups that
    // share the same member actions and differ only in the innermost
    // iteration index, stages are non-decreasing in the index (a sorted-
    // matching argument: intra-iteration precedences survive sorting every
    // family, per Hall's condition). Families whose members are linked by
    // exclusion edges get *strict* orderings that replace those exclusion
    // constraints; independent families get weak orderings. This prunes the
    // factorial plateau of equivalent layouts from the branch-and-bound.
    let mut family_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut strict_pairs: Vec<(usize, usize)> = Vec::new();
    let mut weak_pairs: Vec<(usize, usize)> = Vec::new();
    let mut strict_families: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    {
        // Constraint family key: (symbolics, iteration space, shape).
        type FamilyKey = (Vec<String>, Vec<Iter>, String);
        let mut families: BTreeMap<FamilyKey, Vec<(usize, usize)>> = BTreeMap::new();
        for (g, grp) in groups.iter().enumerate() {
            if grp.iters.is_empty() {
                continue;
            }
            let mut bases: Vec<String> =
                grp.members.iter().map(|&m| unrolled.instances[m].base.clone()).collect();
            bases.sort();
            let mut prefix = grp.iters.clone();
            // Guarded by the `iters.is_empty()` check above.
            let Some(last) = prefix.pop() else { continue };
            families
                .entry((bases, prefix, last.symbolic.clone()))
                .or_default()
                .push((last.index, g));
        }
        for (fid, mut members) in families.into_values().enumerate() {
            members.sort_unstable();
            let has_exclusion = members.iter().enumerate().any(|(i, &(_, a))| {
                members[i + 1..].iter().any(|&(_, b)| {
                    graph.exclusion.contains(&(a.min(b), a.max(b)))
                })
            });
            for &(_, g) in &members {
                family_of.insert(g, fid);
            }
            if has_exclusion {
                strict_families.insert(fid);
            }
            for w in members.windows(2) {
                let (a, b) = (w[0].1, w[1].1);
                if graph.precedence.contains(&(a, b)) || graph.precedence.contains(&(b, a)) {
                    continue; // already strictly ordered by a real dependency
                }
                if has_exclusion {
                    strict_pairs.push((a, b));
                } else {
                    weak_pairs.push((a, b));
                }
            }
        }
    }

    // ---- Placement variables x[g][s]; #15 / #17 ----
    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(groups.len());
    for (g, grp) in groups.iter().enumerate() {
        let vars: Vec<VarId> =
            (0..stages).map(|s| model.binary(format!("x[{}][{s}]", grp.label))).collect();
        let placed = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        if grp.iters.is_empty() {
            let row = model.eq(format!("place_once[{g}]"), placed, 1.0); // #17
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!("inelastic `{}` must be placed in some stage", grp.label),
                    ResourceKind::Stages,
                )
                .at(gspan[g]),
            );
        } else {
            let row = model.le(format!("place_at_most_once[{g}]"), placed, 1.0); // #15
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!("`{}` is placed in at most one stage", grp.label),
                    ResourceKind::Stages,
                )
                .syms(gsyms[g].iter().cloned())
                .at(gspan[g]),
            );
        }
        x.push(vars);
    }

    // ---- Precedence (#6) and exclusion (#5) ----
    // Transitive reduction: an edge implied by a chain of other enforced
    // strict orderings (precedence or strict family pairs) is redundant —
    // chain-heavy programs (e.g. a key-value store's per-slice reads)
    // otherwise emit O(K^2 * S) constraints for what K-1 edges express.
    let reduced_precedence: Vec<(usize, usize)> = {
        let n = groups.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in graph.precedence.iter().chain(&strict_pairs) {
            adj[a].push(b);
        }
        let reachable_avoiding = |from: usize, to: usize, skip: (usize, usize)| -> bool {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            seen[from] = true;
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if (v, w) == skip || seen[w] {
                        continue;
                    }
                    if w == to {
                        return true;
                    }
                    seen[w] = true;
                    stack.push(w);
                }
            }
            false
        };
        graph
            .precedence
            .iter()
            .copied()
            .filter(|&(a, b)| !reachable_avoiding(a, b, (a, b)))
            .collect()
    };
    for &(a, b) in &reduced_precedence {
        for s in 0..stages {
            let mut earlier = LinExpr::zero();
            for t in 0..s {
                earlier += LinExpr::from(x[a][t]);
            }
            let row = model.le(
                format!("prec[{a}->{b}][{s}]"),
                LinExpr::from(x[b][s]) - earlier,
                0.0,
            );
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "`{}` must run in a stage strictly before `{}` (data dependency)",
                        glabel[a], glabel[b]
                    ),
                    ResourceKind::Stages,
                )
                .syms(gsyms[a].iter().chain(&gsyms[b]).cloned())
                .at(gspan[b]),
            );
        }
    }
    for &(a, b) in &graph.exclusion {
        // Exclusions inside a strictly-ordered family are implied by the
        // symmetry-breaking chain below.
        if let (Some(fa), Some(fb)) = (family_of.get(&a), family_of.get(&b)) {
            if fa == fb && strict_families.contains(fa) {
                continue;
            }
        }
        for s in 0..stages {
            let row = model.le(
                format!("excl[{a}--{b}][{s}]"),
                LinExpr::from(x[a][s]) + LinExpr::from(x[b][s]),
                1.0,
            );
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "`{}` and `{}` may not share a stage (conflicting accesses)",
                        glabel[a], glabel[b]
                    ),
                    ResourceKind::Stages,
                )
                .syms(gsyms[a].iter().chain(&gsyms[b]).cloned())
                .at(gspan[b]),
            );
        }
    }
    // Strict family orderings (commutative accumulators): same per-stage
    // encoding as precedence.
    for &(a, b) in &strict_pairs {
        for s in 0..stages {
            let mut earlier = LinExpr::zero();
            for t in 0..s {
                earlier += LinExpr::from(x[a][t]);
            }
            let row = model.le(
                format!("sym_strict[{a}->{b}][{s}]"),
                LinExpr::from(x[b][s]) - earlier,
                0.0,
            );
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "iterations `{}` and `{}` are strictly ordered (commutative \
                         accumulator, symmetry breaking)",
                        glabel[a], glabel[b]
                    ),
                    ResourceKind::Stages,
                )
                .syms(gsyms[a].iter().chain(&gsyms[b]).cloned())
                .at(gspan[b]),
            );
        }
    }
    // Weak family orderings: stage index of the later iteration is no
    // smaller, when it is placed at all.
    for &(a, b) in &weak_pairs {
        let mut diff = LinExpr::zero();
        let mut placed_b = LinExpr::zero();
        for s in 0..stages {
            diff += LinExpr::term(x[b][s], s as f64);
            diff -= LinExpr::term(x[a][s], s as f64);
            placed_b += LinExpr::from(x[b][s]);
        }
        // stage(b) >= stage(a) - S*(1 - placed(b))
        let row = model.ge(
            format!("sym_weak[{a}<={b}]"),
            diff + (LinExpr::constant(stages as f64) - placed_b * (stages as f64)),
            0.0,
        );
        tag(
            &mut prov,
            row,
            RowProvenance::new(
                format!(
                    "iteration `{}` is placed no earlier than `{}` (symmetry breaking)",
                    glabel[b], glabel[a]
                ),
                ResourceKind::Stages,
            )
            .syms(gsyms[a].iter().chain(&gsyms[b]).cloned())
            .at(gspan[b]),
        );
    }

    // ---- Iteration coherence (#7) ----
    // Groups with the same full tag exist together.
    {
        let mut by_tag: BTreeMap<Vec<Iter>, Vec<usize>> = BTreeMap::new();
        for (g, grp) in groups.iter().enumerate() {
            if !grp.iters.is_empty() {
                by_tag.entry(grp.iters.clone()).or_default().push(g);
            }
        }
        for (tag, gs) in &by_tag {
            for w in gs.windows(2) {
                let (a, b) = (w[0], w[1]);
                let pa = LinExpr::sum(x[a].iter().map(|&v| LinExpr::from(v)));
                let pb = LinExpr::sum(x[b].iter().map(|&v| LinExpr::from(v)));
                let row = model.eq(format!("coherent[{tag:?}][{a}=={b}]"), pa - pb, 0.0);
                crate::ilpgen::tag(
                    &mut prov,
                    row,
                    RowProvenance::new(
                        format!(
                            "`{}` and `{}` belong to one loop iteration and are placed \
                             together",
                            glabel[a], glabel[b]
                        ),
                        ResourceKind::Structural,
                    )
                    .syms(gsyms[a].iter().cloned())
                    .at(gspan[a]),
                );
            }
        }
    }

    // ---- Metadata chunk indicators d[(v,i)] (#13, #14) and ordering (#16) ----
    let mut d: BTreeMap<(String, usize), VarId> = BTreeMap::new();
    let mut d_groups: BTreeMap<(String, usize), Vec<usize>> = BTreeMap::new();
    for (g, grp) in groups.iter().enumerate() {
        for it in &grp.iters {
            let key = (it.symbolic.clone(), it.index);
            d.entry(key.clone())
                .or_insert_with(|| model.binary(format!("d[{}][{}]", it.symbolic, it.index)));
            d_groups.entry(key).or_default().push(g);
        }
    }
    for (key, gs) in &d_groups {
        let dv = d[key];
        let mut any = LinExpr::zero();
        for &g in gs {
            let placed = LinExpr::sum(x[g].iter().map(|&v| LinExpr::from(v)));
            // d >= placed(g)  (#14)
            let row = model.ge(
                format!("d_lb[{}][{}][{g}]", key.0, key.1),
                LinExpr::from(dv) - placed.clone(),
                0.0,
            );
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "iteration {} of `{}` needs its metadata chunk live when placed",
                        key.1, key.0
                    ),
                    ResourceKind::Structural,
                )
                .syms([key.0.clone()])
                .at(gspan[g]),
            );
            any += placed;
        }
        // d <= sum placed: the chunk is live only if some iteration ran.
        let row =
            model.le(format!("d_ub[{}][{}]", key.0, key.1), LinExpr::from(dv) - any, 0.0);
        tag(
            &mut prov,
            row,
            RowProvenance::new(
                format!(
                    "metadata chunk {} of `{}` is live only if some iteration is placed",
                    key.1, key.0
                ),
                ResourceKind::Structural,
            )
            .syms([key.0.clone()]),
        );
    }
    // In-order iterations (#16): d[v][i+1] <= d[v][i].
    {
        let mut per_sym: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (v, i) in d.keys() {
            per_sym.entry(v.as_str()).or_default().push(*i);
        }
        let keys: Vec<(String, Vec<usize>)> = per_sym
            .into_iter()
            .map(|(v, mut is)| {
                is.sort_unstable();
                (v.to_string(), is)
            })
            .collect();
        for (v, is) in keys {
            for w in is.windows(2) {
                let lo = d[&(v.clone(), w[0])];
                let hi = d[&(v.clone(), w[1])];
                let row = model.le(
                    format!("order[{v}][{}<={}]", w[1], w[0]),
                    LinExpr::from(hi) - LinExpr::from(lo),
                    0.0,
                );
                tag(
                    &mut prov,
                    row,
                    RowProvenance::new(
                        format!(
                            "iterations of `{v}` are used in order ({} before {})",
                            w[0], w[1]
                        ),
                        ResourceKind::Structural,
                    )
                    .syms([v.clone()]),
                );
            }
        }
    }

    // ---- PHV budget (#13) ----
    {
        let program_fixed = info.fixed_phv_bits();
        let target_budget = target.phv_elastic_bits();
        if program_fixed > target_budget {
            return Err(Diagnostic::error(format!(
                "fixed headers/metadata need {program_fixed} PHV bits but target `{}` \
                 provides only {target_budget}",
                target.name
            ))
            .with_note(
                "fixed fields are allocated before any elastic structure; shrink headers \
                 or scalar metadata",
            ));
        }
        let elastic_budget = (target_budget - program_fixed) as f64;
        let mut used = LinExpr::zero();
        let mut phv_syms: Vec<String> = Vec::new();
        for ((v, _i), &dv) in &d {
            let bits = info.meta_chunk_bits(v) as f64;
            if bits > 0.0 {
                used += LinExpr::term(dv, bits);
                phv_syms.push(v.clone());
            }
        }
        if !used.terms.is_empty() {
            let row = model.le("phv_budget", used, elastic_budget);
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "elastic metadata must fit the {elastic_budget} PHV bits left \
                         after fixed fields"
                    ),
                    ResourceKind::Phv,
                )
                .syms(phv_syms),
            );
        }
    }

    // ---- Register instances, memory variables, co-location ----
    let mut regs: Vec<RegInstanceInfo> = Vec::new();
    let mut cells: Vec<Vec<VarId>> = Vec::new();
    let mut sizes: BTreeMap<String, VarId> = BTreeMap::new();
    {
        // Owner group of each (reg, instance).
        let mut owner: BTreeMap<(String, usize), usize> = BTreeMap::new();
        for (g, grp) in groups.iter().enumerate() {
            for &m in &grp.members {
                if let Some(r) = &unrolled.instances[m].reg {
                    owner.insert((r.reg.clone(), r.instance), g);
                }
            }
        }
        for ((reg_name, instance), owner_group) in owner {
            let decl = info.program.register(&reg_name).ok_or_else(|| {
                Diagnostic::internal(format!(
                    "unrolled instance references undeclared register `{reg_name}`"
                ))
            })?;
            // Symbolics implicated by this register's memory rows: its size
            // symbolic plus the count symbolic of its instance dimension.
            let mut reg_syms: Vec<String> = Vec::new();
            if let Some(sz) = decl.cells.symbolic_name() {
                reg_syms.push(sz.to_string());
            }
            if let Some(cnt) = decl.instances.as_ref().and_then(|i| i.symbolic_name()) {
                reg_syms.push(cnt.to_string());
            }
            let reg_span = decl.span;
            let cap = (target.memory_bits / decl.elem_bits as u64).max(1);
            let ridx = regs.len();
            groups[owner_group].reg_instance = Some(ridx);
            let svars: Vec<VarId> = (0..stages)
                .map(|s| {
                    model.integer(format!("c[{reg_name}[{instance}]][{s}]"), 0.0, cap as f64)
                })
                .collect();
            // #9: cells only where the owner sits.
            for s in 0..stages {
                let row = model.le(
                    format!("colocate[{reg_name}[{instance}]][{s}]"),
                    LinExpr::from(svars[s]) - LinExpr::term(x[owner_group][s], cap as f64),
                    0.0,
                );
                tag(
                    &mut prov,
                    row,
                    RowProvenance::new(
                        format!(
                            "memory of `{reg_name}[{instance}]` sits in the stage of its \
                             action `{}`",
                            glabel[owner_group]
                        ),
                        ResourceKind::Memory,
                    )
                    .syms(reg_syms.iter().cloned())
                    .at(reg_span),
                );
            }
            let total = LinExpr::sum(svars.iter().map(|&v| LinExpr::from(v)));
            let placed = LinExpr::sum(x[owner_group].iter().map(|&v| LinExpr::from(v)));
            match &decl.cells {
                Size::Const(k) => {
                    // Exactly k cells when placed, 0 otherwise.
                    let row = model.eq(
                        format!("fixed_cells[{reg_name}[{instance}]]"),
                        total - placed * (*k as f64),
                        0.0,
                    );
                    tag(
                        &mut prov,
                        row,
                        RowProvenance::new(
                            format!(
                                "`{reg_name}[{instance}]` needs exactly {k} cells when placed"
                            ),
                            ResourceKind::Memory,
                        )
                        .syms(reg_syms.iter().cloned())
                        .at(reg_span),
                    );
                }
                Size::Symbolic(sz) => {
                    let vsz = match sizes.get(sz) {
                        Some(&v) => v,
                        None => {
                            let mined = info.mined.get(sz).copied().unwrap_or_default();
                            let lo = mined.lo.unwrap_or(1).max(1) as f64;
                            let mined_hi = mined.hi.map(|h| h as f64);
                            let hi = mined_hi.unwrap_or(cap as f64).min(cap as f64);
                            // When the target's SRAM (not the program's own
                            // assumes) is what caps this symbolic, remember
                            // that: the clamp lives in a column bound the
                            // IIS filter can't see.
                            if mined_hi.is_none_or(|h| h > cap as f64) {
                                derived.push(DerivedBound {
                                    symbolic: sz.clone(),
                                    resource: ResourceKind::Memory,
                                    detail: format!(
                                        "one stage's SRAM holds at most {cap} cells of \
                                         `{reg_name}`, capping `{sz}`"
                                    ),
                                    span: Some(reg_span),
                                });
                            }
                            let v = model.integer(format!("V[{sz}]"), lo, hi);
                            sizes.insert(sz.clone(), v);
                            v
                        }
                    };
                    // total <= V_sz ; total >= V_sz - cap*(1 - placed).
                    let row = model.le(
                        format!("size_ub[{reg_name}[{instance}]]"),
                        total.clone() - LinExpr::from(vsz),
                        0.0,
                    );
                    tag(
                        &mut prov,
                        row,
                        RowProvenance::new(
                            format!(
                                "`{reg_name}[{instance}]` allocates at most `{sz}` cells"
                            ),
                            ResourceKind::Memory,
                        )
                        .syms(reg_syms.iter().cloned())
                        .at(reg_span),
                    );
                    let row = model.ge(
                        format!("size_lb[{reg_name}[{instance}]]"),
                        total - LinExpr::from(vsz) - placed * (cap as f64)
                            + LinExpr::constant(cap as f64),
                        0.0,
                    );
                    tag(
                        &mut prov,
                        row,
                        RowProvenance::new(
                            format!(
                                "`{reg_name}[{instance}]` gets its full `{sz}` cells when \
                                 placed (equal row sizes)"
                            ),
                            ResourceKind::Memory,
                        )
                        .syms(reg_syms.iter().cloned())
                        .at(reg_span),
                    );
                }
            }
            regs.push(RegInstanceInfo {
                reg: reg_name,
                instance,
                elem_bits: decl.elem_bits,
                owner_group,
                cells: decl.cells.clone(),
                cap,
            });
            cells.push(svars);
        }
    }

    // Size symbolics used only as hash ranges (no register) still need a
    // variable so assumes/utility can mention them.
    for sz in info.size_symbolics() {
        sizes.entry(sz.to_string()).or_insert_with(|| {
            let mined = info.mined.get(sz).copied().unwrap_or_default();
            let lo = mined.lo.unwrap_or(1).max(1) as f64;
            let hi = mined.hi.unwrap_or(1 << 20) as f64;
            model.integer(format!("V[{sz}]"), lo, hi)
        });
    }

    // ---- Per-stage memory (#8) and ALU budgets (#11, #12) ----
    let mem_syms: Vec<String> = {
        let mut v: Vec<String> = regs
            .iter()
            .flat_map(|r| {
                let mut s: Vec<String> = Vec::new();
                if let Size::Symbolic(sz) = &r.cells {
                    s.push(sz.clone());
                }
                if let Some(decl) = info.program.register(&r.reg) {
                    if let Some(cnt) = decl.instances.as_ref().and_then(|i| i.symbolic_name())
                    {
                        s.push(cnt.to_string());
                    }
                }
                s
            })
            .collect();
        v.sort();
        v.dedup();
        v
    };
    for s in 0..stages {
        let mut mem = LinExpr::zero();
        for (r, svars) in cells.iter().enumerate() {
            mem += LinExpr::term(svars[s], regs[r].elem_bits as f64);
        }
        if !mem.terms.is_empty() {
            let row = model.le(format!("stage_mem[{s}]"), mem, target.memory_bits as f64);
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "register memory in stage {s} fits the {} bits of per-stage SRAM",
                        target.memory_bits
                    ),
                    ResourceKind::Memory,
                )
                .syms(mem_syms.iter().cloned()),
            );
        }
        let mut hf = LinExpr::zero();
        let mut hl = LinExpr::zero();
        let mut hf_syms: Vec<String> = Vec::new();
        let mut hl_syms: Vec<String> = Vec::new();
        for (g, grp) in groups.iter().enumerate() {
            if grp.stateful_alus > 0 {
                hf += LinExpr::term(x[g][s], grp.stateful_alus as f64);
                hf_syms.extend(gsyms[g].iter().cloned());
            }
            if grp.stateless_alus > 0 {
                hl += LinExpr::term(x[g][s], grp.stateless_alus as f64);
                hl_syms.extend(gsyms[g].iter().cloned());
            }
        }
        if !hf.terms.is_empty() {
            let row = model.le(format!("stage_hf[{s}]"), hf, target.stateful_alus as f64);
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "stateful work in stage {s} fits the target's {} stateful ALUs",
                        target.stateful_alus
                    ),
                    ResourceKind::StatefulAlu,
                )
                .syms(hf_syms),
            );
        }
        if !hl.terms.is_empty() {
            let row = model.le(format!("stage_hl[{s}]"), hl, target.stateless_alus as f64);
            tag(
                &mut prov,
                row,
                RowProvenance::new(
                    format!(
                        "stateless work in stage {s} fits the target's {} stateless ALUs",
                        target.stateless_alus
                    ),
                    ResourceKind::StatelessAlu,
                )
                .syms(hl_syms),
            );
        }
    }

    // Branching priorities: memory sizes last — their LP optimum is
    // usually integral once placements are fixed. (Boosting iteration
    // indicators above placements was measured slower: placements carry
    // the real contention.)
    for &sv in sizes.values() {
        model.set_branch_priority(sv, -10);
    }

    let mut enc = Encoding {
        model,
        groups,
        x,
        regs,
        cells,
        d,
        sizes,
        stages,
        provenance: prov,
        derived_bounds: derived,
    };

    // ---- User assumes ----
    for (k, a) in info.program.assumes.iter().enumerate() {
        add_assume(&mut enc, info, &a.expr, a.span, &format!("assume{k}"))?;
    }

    // ---- Objective ----
    let objective = match &info.program.optimize {
        Some(u) => linearize(&enc, info, u, Span::default())?,
        None => {
            // Default utility: stretch everything — placements first, then
            // total memory (lightly weighted so it never trades a placement
            // for cells).
            let mut obj = LinExpr::zero();
            for g in 0..enc.groups.len() {
                obj += enc.placed(g);
            }
            for svars in &enc.cells {
                for &v in svars {
                    obj += LinExpr::term(v, 1e-4);
                }
            }
            obj
        }
    };
    enc.model.set_objective(objective, Sense::Maximize);

    Ok(enc)
}

/// Linearize a utility/assume expression over the encoding's variables.
///
/// Supported shapes: numeric literals, count symbolics (`Σ_i d[v][i]`),
/// size symbolics (`V_sz`), sums/differences, scaling by constants,
/// division by constants, and the product `count * size` when one register
/// declaration pairs those extents (linearized as total allocated cells of
/// that register family).
pub fn linearize(
    enc: &Encoding,
    info: &ProgramInfo,
    e: &Expr,
    span: Span,
) -> Result<LinExpr, Diagnostic> {
    if let Some(c) = const_value(e) { return Ok(LinExpr::constant(c)) }
    match e {
        Expr::Symbolic(name) => match info.roles.get(name) {
            Some(SymRole::Count) => {
                let mut sum = LinExpr::zero();
                for ((v, _), &dv) in &enc.d {
                    if v == name {
                        sum += LinExpr::from(dv);
                    }
                }
                Ok(sum)
            }
            Some(SymRole::Size) => match enc.sizes.get(name) {
                Some(&v) => Ok(LinExpr::from(v)),
                None => Err(Diagnostic::internal(format!(
                    "size symbolic `{name}` has no variable in this encoding"
                ))
                .with_span(span)),
            },
            None => Err(Diagnostic::error_at(format!("unknown symbolic `{name}`"), span)
                .with_note("declare it with `symbolic int ...;` and use it in the program")),
        },
        Expr::Unary { op: UnOp::Neg, operand } => Ok(-linearize(enc, info, operand, span)?),
        Expr::Binary { op: BinOp::Add, lhs, rhs } => {
            Ok(linearize(enc, info, lhs, span)? + linearize(enc, info, rhs, span)?)
        }
        Expr::Binary { op: BinOp::Sub, lhs, rhs } => {
            Ok(linearize(enc, info, lhs, span)? - linearize(enc, info, rhs, span)?)
        }
        Expr::Binary { op: BinOp::Mul, lhs, rhs } => {
            if let Some(k) = const_value(lhs) {
                return Ok(linearize(enc, info, rhs, span)? * k);
            }
            if let Some(k) = const_value(rhs) {
                return Ok(linearize(enc, info, lhs, span)? * k);
            }
            // count * size over one register family -> total cells.
            if let (Expr::Symbolic(a), Expr::Symbolic(b)) = (&**lhs, &**rhs) {
                if let Some(expr) = product_cells(enc, info, a, b) {
                    return Ok(expr);
                }
            }
            Err(Diagnostic::error_at(
                "non-linear utility term: products must be `constant * expr` or \
                 `count * size` of one register array",
                span,
            ))
        }
        Expr::Binary { op: BinOp::Div, lhs, rhs } => match const_value(rhs) {
            Some(k) if k != 0.0 => Ok(linearize(enc, info, lhs, span)? * (1.0 / k)),
            _ => Err(Diagnostic::error_at("division by a non-constant in utility", span)),
        },
        other => Err(Diagnostic::error_at(
            format!("expression not allowed in utility/assume: {other:?}"),
            span,
        )),
    }
}

/// `rows * cols` where some register is declared `[cols][rows]` — the
/// product equals the total cells allocated to that register family.
fn product_cells(
    enc: &Encoding,
    info: &ProgramInfo,
    a: &str,
    b: &str,
) -> Option<LinExpr> {
    let (count, size) = match (info.roles.get(a), info.roles.get(b)) {
        (Some(SymRole::Count), Some(SymRole::Size)) => (a, b),
        (Some(SymRole::Size), Some(SymRole::Count)) => (b, a),
        _ => return None,
    };
    let decl = info.program.registers.iter().find(|r| {
        r.cells.symbolic_name() == Some(size)
            && r.instances.as_ref().and_then(|i| i.symbolic_name()) == Some(count)
    })?;
    let mut sum = LinExpr::zero();
    for (r, svars) in enc.cells.iter().enumerate() {
        if enc.regs[r].reg == decl.name {
            for &v in svars {
                sum += LinExpr::from(v);
            }
        }
    }
    Some(sum)
}

/// Collect every symbolic name mentioned in an expression.
fn collect_symbolics(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Symbolic(name) => out.push(name.clone()),
        Expr::Unary { operand, .. } => collect_symbolics(operand, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_symbolics(lhs, out);
            collect_symbolics(rhs, out);
        }
        _ => {}
    }
}

fn const_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::Int(v) => Some(*v as f64),
        Expr::Float(v) => Some(*v),
        Expr::Unary { op: UnOp::Neg, operand } => const_value(operand).map(|v| -v),
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = (const_value(lhs)?, const_value(rhs)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div if b != 0.0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Add an `assume` expression as ILP constraints. Conjunctions split;
/// comparisons become linear rows. Disjunctions are rejected (non-convex).
fn add_assume(
    enc: &mut Encoding,
    info: &ProgramInfo,
    e: &Expr,
    span: Span,
    name: &str,
) -> Result<(), Diagnostic> {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            add_assume(enc, info, lhs, span, &format!("{name}.l"))?;
            add_assume(enc, info, rhs, span, &format!("{name}.r"))
        }
        Expr::Binary { op, lhs, rhs }
            if matches!(op, BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt | BinOp::Eq) =>
        {
            let l = linearize(enc, info, lhs, span)?;
            let r = linearize(enc, info, rhs, span)?;
            let diff = l - r;
            let row = match op {
                BinOp::Le => enc.model.le(name, diff, 0.0),
                BinOp::Lt => enc.model.le(name, diff, -1.0),
                BinOp::Ge => enc.model.ge(name, diff, 0.0),
                BinOp::Gt => enc.model.ge(name, diff, 1.0),
                BinOp::Eq => enc.model.eq(name, diff, 0.0),
                // Guarded by the `matches!` arm pattern above.
                _ => return Err(Diagnostic::internal("non-comparison op in assume arm")),
            };
            let mut syms: Vec<String> = Vec::new();
            collect_symbolics(e, &mut syms);
            tag(
                &mut enc.provenance,
                row,
                RowProvenance::new(
                    format!("user assumption `{}`", p4all_lang::print_expr(e)),
                    ResourceKind::Assumption,
                )
                .syms(syms)
                .at(span),
            );
            Ok(())
        }
        _ => Err(Diagnostic::error_at(
            "assume must be a conjunction of linear comparisons over symbolic values",
            span,
        )),
    }
}

/// Translate a (greedy) [`crate::solution::Layout`] into an assignment
/// vector for this encoding, usable as a branch-and-bound warm start. The
/// result is only a *candidate* — the solver re-checks feasibility before
/// adopting it as the incumbent.
pub fn warm_start_from_layout(enc: &Encoding, layout: &crate::solution::Layout) -> Vec<f64> {
    let mut vals = vec![0.0; enc.model.num_vars()];
    for p in &layout.placements {
        if p.group < enc.x.len() && p.stage < enc.stages {
            vals[enc.x[p.group][p.stage].index()] = 1.0;
        }
    }
    for (r, ri) in enc.regs.iter().enumerate() {
        if let Some(alloc) = layout
            .registers
            .iter()
            .find(|a| a.reg == ri.reg && a.instance == ri.instance)
        {
            vals[enc.cells[r][alloc.stage].index()] = alloc.cells as f64;
        }
    }
    for ((v, i), &dv) in &enc.d {
        let live = enc.groups.iter().enumerate().any(|(g, grp)| {
            grp.iters.iter().any(|it| it.symbolic == *v && it.index == *i)
                && layout.placements.iter().any(|p| p.group == g)
        });
        if live {
            vals[dv.index()] = 1.0;
        }
    }
    for (sz, &v) in &enc.sizes {
        let lb = enc.model.var(v).lb;
        let val = layout.symbol_values.get(sz).copied().unwrap_or(0) as f64;
        vals[v.index()] = val.max(lb);
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_full;
    use crate::elaborate::elaborate;
    use crate::ir::instantiate;
    use p4all_ilp::{solve, SolveStatus};
    use p4all_lang::parse;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 2;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    fn encode_cms(rows: usize) -> (Encoding, std::sync::Arc<p4all_lang::ast::Program>) {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let target = presets::paper_example();
        let enc = {
            let info = elaborate(&p).unwrap();
            let mut bounds = BTreeMap::new();
            bounds.insert("rows".to_string(), rows);
            let u = instantiate(&info, &bounds).unwrap();
            let g = build_full(&u);
            encode(&info, &u, &g, &target).unwrap()
        };
        (enc, p)
    }

    #[test]
    fn encoding_shape() {
        let (enc, _) = encode_cms(2);
        assert_eq!(enc.groups.len(), 4); // incr[0..2], set_min[0..2]
        assert_eq!(enc.x.len(), 4);
        assert_eq!(enc.x[0].len(), 3); // 3 stages
        assert_eq!(enc.regs.len(), 2); // cms[0], cms[1]
        assert_eq!(enc.d.len(), 2); // d[rows][0], d[rows][1]
        assert!(enc.sizes.contains_key("cols"));
    }

    /// The §4 example target: 3 stages, M=2048b, F=L=2. The stateless ALU
    /// budget makes two co-optimal layouts: both rows in stage 0 sharing
    /// memory (2 x 32 cols) or one row with all of it (1 x 64 cols). The
    /// optimum utility is 64 total counters either way.
    #[test]
    fn solving_cms_on_paper_example_target() {
        let (enc, _) = encode_cms(2);
        let out = solve(&enc.model).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let sol = out.solution.unwrap();
        let cols = sol.int_value(enc.sizes["cols"]);
        let rows: i64 = enc.d.values().map(|&v| sol.int_value(v)).sum();
        assert!((1..=2).contains(&rows));
        assert_eq!(rows * cols, 64, "optimal utility is 64 total counters");
        assert!((sol.objective - (rows * cols) as f64).abs() < 1e-6);
    }

    #[test]
    fn precedence_respected_in_solution() {
        let (enc, _) = encode_cms(2);
        let out = solve(&enc.model).unwrap();
        let sol = out.solution.unwrap();
        let stage_of = |g: usize| -> Option<usize> {
            (0..enc.stages).find(|&s| sol.int_value(enc.x[g][s]) == 1)
        };
        // Group order: incr[0], incr[1], set_min[0], set_min[1]. Iteration
        // coherence: incr[i] placed iff set_min[i] placed; when placed the
        // incr must be strictly earlier.
        let mut placed_pairs = 0;
        for i in 0..2 {
            match (stage_of(i), stage_of(2 + i)) {
                (Some(si), Some(sm)) => {
                    assert!(si < sm, "incr[{i}] at {si} must precede set_min[{i}] at {sm}");
                    placed_pairs += 1;
                }
                (None, None) => {}
                other => panic!("iteration {i} half-placed: {other:?}"),
            }
        }
        assert!(placed_pairs >= 1);
        if let (Some(a), Some(b)) = (stage_of(2), stage_of(3)) {
            assert_ne!(a, b, "commutative set_mins must not share a stage");
        }
    }

    #[test]
    fn assume_upper_bound_enforced() {
        let src = CMS.replace("assume cols >= 4;", "assume cols >= 4 && cols <= 10;");
        let p = std::sync::Arc::new(parse(&src).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let enc = encode(&info, &u, &g, &target).unwrap();
        let out = solve(&enc.model).unwrap();
        let sol = out.solution.unwrap();
        assert!(sol.int_value(enc.sizes["cols"]) <= 10);
    }

    #[test]
    fn infeasible_when_phv_too_small() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let mut target = presets::paper_example();
        target.phv_fixed_bits = target.phv_bits - 32; // nothing left beyond hdr.key...
        let r = encode(&info, &u, &g, &target);
        // fixed program PHV (key 32 + min 32 = 64) exceeds the 32 available.
        assert!(r.is_err());
    }

    #[test]
    fn nonlinear_utility_rejected() {
        // rows * rows has no register family pairing.
        let src = CMS.replace("optimize rows * cols;", "optimize rows * rows;");
        let p = std::sync::Arc::new(parse(&src).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let e = encode(&info, &u, &g, &target).unwrap_err();
        assert!(e.message.contains("non-linear"), "{e}");
    }

    #[test]
    fn weighted_utility_linearizes() {
        let src = CMS.replace(
            "optimize rows * cols;",
            "optimize 0.4 * (rows * cols) + 0.6 * rows;",
        );
        let p = std::sync::Arc::new(parse(&src).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let target = presets::paper_example();
        let enc = encode(&info, &u, &g, &target).unwrap();
        let out = solve(&enc.model).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
    }

    #[test]
    fn memory_constraint_binds() {
        // Tiny memory: 128 bits per stage -> 4 cells of 32b.
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert("rows".to_string(), 2);
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let mut target = presets::paper_example();
        target.memory_bits = 128;
        let enc = encode(&info, &u, &g, &target).unwrap();
        let out = solve(&enc.model).unwrap();
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(enc.sizes["cols"]), 4);
    }
}

//! The end-to-end compile driver (Figure 8 of the paper).
//!
//! `P4All program + target spec  →  parse → elaborate → upper bounds →
//! unroll → dependency graph → ILP → solve → layout → concrete P4`.

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

use p4all_ilp::{ModelStats, SolveOptions, SolveStatus, SolveTelemetry};
use p4all_lang::ast::{Expr, Program};
use p4all_lang::errors::LangError;
use p4all_pisa::TargetSpec;

use crate::bounds::{all_upper_bounds, DEFAULT_MAX_UNROLL};
use crate::codegen::{concretize, print_p4, ConcreteProgram};
use crate::depgraph::build_full;
use crate::elaborate::elaborate;
use crate::ilpgen::encode;
use crate::ir::instantiate;
use crate::solution::{extract, Layout};

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Hard cap on per-loop unrolling (see [`crate::bounds`]).
    pub max_unroll: usize,
    /// MIP solver knobs.
    pub solver: SolveOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        // Utilities reach 1e7 (memory bits); proving the last millionth of
        // the objective on a flat plateau is wasted work for a compiler.
        let solver = SolveOptions { rel_gap: 1e-6, ..SolveOptions::default() };
        CompileOptions { max_unroll: DEFAULT_MAX_UNROLL, solver }
    }
}

impl CompileOptions {
    /// Set the solver's worker-thread count (`0` = all available cores,
    /// `1` = the exact sequential search; see
    /// [`SolveOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.solver.threads = threads;
        self
    }
}

/// Why a compilation failed.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing, parsing, elaboration, or encoding error.
    Lang(LangError),
    /// The ILP has no feasible layout on this target.
    Infeasible,
    /// The solver hit a numerical failure or internal limit.
    Solver(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::Infeasible => {
                write!(f, "no layout satisfies the target constraints and assumes")
            }
            CompileError::Solver(m) => write!(f, "solver failure: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

/// Phase timings of one compilation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    pub parse: Duration,
    pub analysis: Duration,
    pub encode: Duration,
    pub solve: Duration,
    pub total: Duration,
}

/// MIP solve statistics surfaced in reports.
#[derive(Debug, Clone)]
pub struct SolveStats {
    pub status: SolveStatus,
    pub nodes: usize,
    pub lp_solves: usize,
    /// Full solve telemetry: per-thread node/LP counts, the incumbent
    /// timeline, and the final optimality gap (the CLI's `--stats` solve
    /// summary renders this).
    pub telemetry: SolveTelemetry,
}

/// A successful compilation.
pub struct Compilation {
    /// The chosen layout (symbolic values, placements, memory).
    pub layout: Layout,
    /// Loop-free structured program (input to the simulator).
    pub concrete: ConcreteProgram,
    /// Generated P4 source text.
    pub p4_text: String,
    /// Computed unroll upper bounds per count symbolic.
    pub upper_bounds: BTreeMap<String, usize>,
    /// ILP size (the Fig. 11 `(vars, constraints)` column).
    pub ilp_stats: ModelStats,
    pub solve_stats: SolveStats,
    pub timings: Timings,
}

/// The P4All compiler for a fixed target.
pub struct Compiler {
    pub target: TargetSpec,
    pub options: CompileOptions,
}

impl Compiler {
    pub fn new(target: TargetSpec) -> Self {
        Compiler { target, options: CompileOptions::default() }
    }

    pub fn with_options(target: TargetSpec, options: CompileOptions) -> Self {
        Compiler { target, options }
    }

    /// Compile P4All source text.
    pub fn compile(&self, src: &str) -> Result<Compilation, CompileError> {
        let t0 = Instant::now();
        let program = p4all_lang::parse(src)?;
        let parse_time = t0.elapsed();
        let mut c = self.compile_ast(&program)?;
        c.timings.parse = parse_time;
        c.timings.total += parse_time;
        Ok(c)
    }

    /// Compile an already-parsed program.
    pub fn compile_ast(&self, program: &Program) -> Result<Compilation, CompileError> {
        let t0 = Instant::now();
        let info = elaborate(program)?;

        // Upper bounds (§4.2), then the single full unroll.
        let upper_bounds = all_upper_bounds(&info, &self.target, self.options.max_unroll)?;
        let unrolled = instantiate(&info, &upper_bounds)?;
        let graph = build_full(&unrolled);
        let analysis = t0.elapsed();

        let t1 = Instant::now();
        let enc = encode(&info, &unrolled, &graph, &self.target)?;
        let ilp_stats = enc.model.stats();
        let encode_time = t1.elapsed();

        let t2 = Instant::now();
        // Warm start: the greedy allocator's layout (when it succeeds and
        // is feasible for the encoding) seeds the incumbent, so the branch
        // and bound can prune from the first node.
        let mut solver_opts = self.options.solver.clone();
        if let Ok(gl) = crate::greedy::place_greedy(&info, &unrolled, &graph, &self.target) {
            solver_opts.warm_start =
                Some(crate::ilpgen::warm_start_from_layout(&enc, &gl));
        }
        let out = p4all_ilp::solve_with(&enc.model, &solver_opts)
            .map_err(|e| CompileError::Solver(e.to_string()))?;
        let solve_time = t2.elapsed();

        let sol = match (out.status, out.solution) {
            (SolveStatus::Optimal | SolveStatus::Feasible, Some(s)) => s,
            (SolveStatus::Infeasible, _) => return Err(CompileError::Infeasible),
            (status, _) => {
                return Err(CompileError::Solver(format!(
                    "solver ended with status {status:?} and no solution"
                )))
            }
        };

        let layout = extract(&enc, &info, &sol, &self.target);
        let concrete = concretize(&info, &unrolled, &layout, self.target.stages)?;
        let p4_text = print_p4(&concrete);

        Ok(Compilation {
            layout,
            concrete,
            p4_text,
            upper_bounds,
            ilp_stats,
            solve_stats: SolveStats {
                status: out.status,
                nodes: out.nodes,
                lp_solves: out.lp_solves,
                telemetry: out.telemetry,
            },
            timings: Timings {
                parse: Duration::default(),
                analysis,
                encode: encode_time,
                solve: solve_time,
                total: t0.elapsed(),
            },
        })
    }

    /// Compile with the greedy first-fit allocator instead of the ILP
    /// (the ablation baseline).
    pub fn compile_greedy(&self, src: &str) -> Result<Layout, CompileError> {
        let program = p4all_lang::parse(src)?;
        let info = elaborate(&program)?;
        let upper_bounds = all_upper_bounds(&info, &self.target, self.options.max_unroll)?;
        let unrolled = instantiate(&info, &upper_bounds)?;
        let graph = build_full(&unrolled);
        Ok(crate::greedy::place_greedy(&info, &unrolled, &graph, &self.target)?)
    }
}

/// Evaluate a utility expression at concrete symbolic values (used to
/// compare ILP and greedy layouts on equal footing).
pub fn evaluate_utility(utility: &Expr, values: &BTreeMap<String, u64>) -> Option<f64> {
    match utility {
        Expr::Int(v) => Some(*v as f64),
        Expr::Float(v) => Some(*v),
        Expr::Symbolic(s) => values.get(s).map(|&v| v as f64),
        Expr::Unary { op: p4all_lang::ast::UnOp::Neg, operand } => {
            evaluate_utility(operand, values).map(|v| -v)
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = evaluate_utility(lhs, values)?;
            let b = evaluate_utility(rhs, values)?;
            use p4all_lang::ast::BinOp::*;
            match op {
                Add => Some(a + b),
                Sub => Some(a - b),
                Mul => Some(a * b),
                Div if b != 0.0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    #[test]
    fn end_to_end_cms_on_paper_example() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        assert_eq!(c.upper_bounds["rows"], 2);
        let rows = c.layout.symbol_values["rows"];
        let cols = c.layout.symbol_values["cols"];
        // Two co-optimal layouts exist (2x32 or 1x64); utility is 64.
        assert_eq!(rows * cols, 64);
        assert!((c.layout.objective - 64.0).abs() < 1e-6);
        // Validate the layout independently.
        p4all_pisa::validate(&c.layout.usage, &compiler.target).unwrap();
        // Every live iteration contributes an incr and a set_min.
        assert_eq!(c.concrete.num_actions() as u64, 2 * rows);
        // Generated P4 mentions the first register instance.
        assert!(c.p4_text.contains("cms_0"));
        assert!(c.solve_stats.status == SolveStatus::Optimal);
    }

    #[test]
    fn elastic_stretch_with_memory() {
        // More per-stage memory -> more columns (Figure 12's mechanism).
        let small = Compiler::new({
            let mut t = presets::paper_example();
            t.memory_bits = 1024;
            t
        });
        let big = Compiler::new({
            let mut t = presets::paper_example();
            t.memory_bits = 8192;
            t
        });
        let cs = small.compile(CMS).unwrap();
        let cb = big.compile(CMS).unwrap();
        assert!(
            cb.layout.symbol_values["cols"] > cs.layout.symbol_values["cols"],
            "cols must stretch with memory: {} vs {}",
            cb.layout.symbol_values["cols"],
            cs.layout.symbol_values["cols"]
        );
    }

    #[test]
    fn plain_p4_compiles_through_the_same_pipeline() {
        let src = r#"
            header h { bit<32> dst; }
            struct metadata { bit<32> port; }
            register<bit<32>>[64] counters;
            action count_pkt() {
                counters[meta.port] = counters[meta.port] + 1;
            }
            control Main() { apply { count_pkt(); } }
        "#;
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(src).unwrap();
        assert_eq!(c.concrete.num_actions(), 1);
        assert_eq!(c.layout.registers[0].cells, 64);
    }

    #[test]
    fn infeasible_when_mandatory_work_exceeds_target() {
        // Four sequentially dependent inline statements on a 3-stage target.
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                    meta.c = meta.b + 1;
                    meta.d = meta.c + 1;
                }
            }
        "#;
        let compiler = Compiler::new(presets::paper_example());
        match compiler.compile(src) {
            Err(CompileError::Infeasible) => {}
            other => panic!("expected infeasible, got {:?}", other.err().map(|e| e.to_string())),
        }
    }

    #[test]
    fn utility_evaluation_matches_ilp_objective() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let u = evaluate_utility(program.optimize.as_ref().unwrap(), &c.layout.symbol_values)
            .unwrap();
        assert!(
            (u - c.layout.objective).abs() < 1e-6,
            "utility {} vs ILP objective {}",
            u,
            c.layout.objective
        );
    }

    #[test]
    fn greedy_never_beats_ilp() {
        let compiler = Compiler::new(presets::paper_example());
        let ilp = compiler.compile(CMS).unwrap();
        let greedy = compiler.compile_greedy(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let opt = program.optimize.as_ref().unwrap();
        let u_ilp = evaluate_utility(opt, &ilp.layout.symbol_values).unwrap();
        let u_greedy = evaluate_utility(opt, &greedy.symbol_values).unwrap();
        assert!(
            u_ilp >= u_greedy - 1e-9,
            "ILP utility {u_ilp} must dominate greedy {u_greedy}"
        );
    }
}

//! The end-to-end compile driver (Figure 8 of the paper).
//!
//! `P4All program + target spec  →  parse → elaborate → upper bounds →
//! unroll → dependency graph → ILP encode → solve → layout → concrete P4`.
//!
//! Each stage runs as a named pass through [`CompileCtx`] (see
//! [`crate::passes`]), producing a [`CompileTrace`] alongside the
//! [`Compilation`]. Failures are typed [`CompileError`]s carrying
//! span-annotated [`Diagnostic`]s; an infeasible ILP is explained by a
//! bounded IIS (see [`crate::explain`]) rather than reported bare.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use p4all_ilp::{IisOptions, ModelStats, SolveOptions, SolveStatus, SolveTelemetry};
use p4all_lang::ast::Expr;
use p4all_lang::diag::{Diagnostic, Severity};
use p4all_lang::errors::LangError;
use p4all_pisa::TargetSpec;

use crate::bounds::DEFAULT_MAX_UNROLL;
use crate::codegen::{concretize, print_p4, ConcreteProgram};
use crate::explain::{explain_infeasible, Infeasibility};
use crate::ilpgen::encode;
use crate::passes::{CompileCtx, CompileTrace};
use crate::solution::{extract, Layout};

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Hard cap on per-loop unrolling (see [`crate::bounds`]).
    pub max_unroll: usize,
    /// MIP solver knobs.
    pub solver: SolveOptions,
    /// Explain infeasible programs with a bounded IIS (deletion filter)
    /// instead of reporting bare infeasibility.
    pub explain_infeasible: bool,
    /// IIS probe budget. The driver additionally clamps the per-probe
    /// node limit to roughly `2 × original solve nodes / max_probes`, so
    /// the whole explanation costs at most about twice the failed solve.
    pub iis: IisOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        // Utilities reach 1e7 (memory bits); proving the last millionth of
        // the objective on a flat plateau is wasted work for a compiler.
        let solver = SolveOptions { rel_gap: 1e-6, ..SolveOptions::default() };
        CompileOptions {
            max_unroll: DEFAULT_MAX_UNROLL,
            solver,
            explain_infeasible: true,
            iis: IisOptions::default(),
        }
    }
}

impl CompileOptions {
    /// Set the solver's worker-thread count (`0` = all available cores,
    /// `1` = the exact sequential search; see
    /// [`SolveOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.solver.threads = threads;
        self
    }
}

/// Why a compilation failed.
///
/// Marked `#[non_exhaustive]`: future compiler versions may add failure
/// classes, so downstream matches need a wildcard arm. Each variant maps
/// to a stable process exit class (see [`CompileError::exit_class`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// The source program is invalid (lexing, parsing, elaboration,
    /// unrolling, or encoding rejected it). Carries the full
    /// span-annotated diagnostic.
    Source(Diagnostic),
    /// The ILP has no feasible layout on this target; carries the IIS
    /// explanation (conflicting rows, resources, symbolics, spans).
    Infeasible(Box<Infeasibility>),
    /// The solver failed numerically (singular basis, LP error).
    SolverNumerical(String),
    /// The solver stopped at a node/time limit without a definite answer.
    SolverLimit(String),
    /// A compiler invariant was violated — a bug in the compiler, never
    /// in the user's program.
    Internal(Diagnostic),
}

impl CompileError {
    /// The diagnostic form of this error, when it has one (`Source`,
    /// `Infeasible`, and `Internal` do).
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            CompileError::Source(d) | CompileError::Internal(d) => Some(d),
            CompileError::Infeasible(x) => Some(&x.diagnostic),
            _ => None,
        }
    }

    /// Stable per-failure-class process exit code: `2` invalid source,
    /// `3` infeasible, `4` solver failure/limit, `5` internal error.
    /// (`0` is success and `1` a usage error, both owned by the CLI.)
    pub fn exit_class(&self) -> u8 {
        match self {
            CompileError::Source(_) => 2,
            CompileError::Infeasible(_) => 3,
            CompileError::SolverNumerical(_) | CompileError::SolverLimit(_) => 4,
            CompileError::Internal(_) => 5,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Source(d) => write!(f, "{d}"),
            CompileError::Infeasible(_) => {
                write!(f, "no layout satisfies the target constraints and assumes")
            }
            CompileError::SolverNumerical(m) => write!(f, "solver failure: {m}"),
            CompileError::SolverLimit(m) => write!(f, "solver failure: {m}"),
            CompileError::Internal(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<Diagnostic> for CompileError {
    fn from(d: Diagnostic) -> Self {
        if d.severity == Severity::Internal {
            CompileError::Internal(d)
        } else {
            CompileError::Source(d)
        }
    }
}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Source(e.into())
    }
}

/// Phase timings of one compilation (aggregated from the pass trace; the
/// full per-pass breakdown lives in [`Compilation::trace`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    pub parse: Duration,
    pub analysis: Duration,
    pub encode: Duration,
    pub solve: Duration,
    pub total: Duration,
}

/// MIP solve statistics surfaced in reports.
#[derive(Debug, Clone)]
pub struct SolveStats {
    pub status: SolveStatus,
    pub nodes: usize,
    pub lp_solves: usize,
    /// Full solve telemetry: per-thread node/LP counts, the incumbent
    /// timeline, and the final optimality gap (the CLI's `--stats` solve
    /// summary renders this).
    pub telemetry: SolveTelemetry,
}

/// A successful compilation.
pub struct Compilation {
    /// The chosen layout (symbolic values, placements, memory).
    pub layout: Layout,
    /// Loop-free structured program (input to the simulator).
    pub concrete: ConcreteProgram,
    /// Generated P4 source text.
    pub p4_text: String,
    /// Computed unroll upper bounds per count symbolic.
    pub upper_bounds: BTreeMap<String, usize>,
    /// ILP size (the Fig. 11 `(vars, constraints)` column).
    pub ilp_stats: ModelStats,
    pub solve_stats: SolveStats,
    pub timings: Timings,
    /// Per-pass wall time, artifact sizes, and cache hits.
    pub trace: CompileTrace,
}

impl CompileCtx {
    /// Compile P4All source for `target`, reusing cached front-half
    /// artifacts when only the target's memory/PHV (or nothing) changed
    /// since the previous call.
    pub fn compile(
        &mut self,
        src: &str,
        target: &TargetSpec,
    ) -> Result<Compilation, CompileError> {
        let t_total = Instant::now();
        let mut trace = CompileTrace::default();
        let front = self.front(src, target, &mut trace)?;

        let t = Instant::now();
        let enc = encode(&front.info, &front.unrolled, &front.graph, target)?;
        let ilp_stats = enc.model.stats();
        trace.record(
            "encode",
            false,
            t.elapsed(),
            format!("{} vars, {} rows", ilp_stats.num_vars, ilp_stats.num_constraints),
        );

        let t = Instant::now();
        // Warm start: the greedy allocator's layout (when it succeeds and
        // is feasible for the encoding) seeds the incumbent, so the branch
        // and bound can prune from the first node. On a reused context
        // (e.g. a memory sweep) the previous solve's incumbent competes
        // with the greedy seed: whichever scores better on *this*
        // encoding's objective wins. Either candidate is re-validated
        // against the fresh model, so a stale incumbent from a different
        // program or a shrunken target is silently dropped.
        let mut solver_opts = self.options.solver.clone();
        let sgn = match enc.model.sense() {
            p4all_ilp::Sense::Maximize => 1.0,
            p4all_ilp::Sense::Minimize => -1.0,
        };
        let score = |v: &[f64]| -> Option<f64> {
            (v.len() == enc.model.num_vars() && enc.model.check_feasible(v, 1e-6).is_ok())
                .then(|| sgn * enc.model.objective_value(v))
        };
        let greedy_seed =
            crate::greedy::place_greedy(&front.info, &front.unrolled, &front.graph, target)
                .ok()
                .map(|gl| crate::ilpgen::warm_start_from_layout(&enc, &gl));
        let prev_seed = self.last_incumbent.as_deref();
        solver_opts.warm_start = match (prev_seed.and_then(score), &greedy_seed) {
            (Some(ps), Some(g)) if score(g).is_some_and(|gs| gs >= ps) => greedy_seed,
            (Some(_), _) => prev_seed.map(<[f64]>::to_vec),
            // No usable previous incumbent: keep the historical behavior
            // of handing the solver the greedy seed unconditionally (it
            // validates and drops infeasible seeds itself).
            (None, _) => greedy_seed,
        };
        let out = p4all_ilp::solve_with(&enc.model, &solver_opts)
            .map_err(|e| CompileError::SolverNumerical(e.to_string()))?;
        let solve_time = t.elapsed();
        trace.record(
            "solve",
            false,
            solve_time,
            format!("{:?}, {} nodes, {} LPs", out.status, out.nodes, out.lp_solves),
        );

        let sol = match (out.status, out.solution) {
            (SolveStatus::Optimal | SolveStatus::Feasible, Some(s)) => s,
            (SolveStatus::Infeasible, _) => {
                if !self.options.explain_infeasible {
                    return Err(CompileError::Infeasible(Box::new(Infeasibility {
                        diagnostic: Diagnostic::error(format!(
                            "program does not fit on target `{}`",
                            target.name
                        )),
                        rows: Vec::new(),
                        resources: Vec::new(),
                        symbolics: Vec::new(),
                        tenants: Vec::new(),
                        probes: 0,
                        minimal: false,
                    })));
                }
                let t = Instant::now();
                // Bound the whole filter to ~2x the failed solve: each of
                // the `max_probes` probes gets a slice of twice the node
                // budget the original search spent (floor 50 so root-LP
                // infeasibilities still resolve).
                let mut iis_opts = self.options.iis.clone();
                let per_probe =
                    (2 * out.nodes.max(1)).div_ceil(iis_opts.max_probes.max(1)).max(50);
                iis_opts.probe_node_limit = iis_opts.probe_node_limit.min(per_probe);
                let x = explain_infeasible(&enc, target, &iis_opts);
                trace.record(
                    "explain",
                    false,
                    t.elapsed(),
                    format!("{} core rows, {} probes", x.rows.len(), x.probes),
                );
                return Err(CompileError::Infeasible(Box::new(x)));
            }
            (status, _) => {
                return Err(CompileError::SolverLimit(format!(
                    "solver ended with status {status:?} and no solution"
                )))
            }
        };

        // Remember the incumbent for the next compile on this context
        // (the cross-solve warm start of parameter sweeps).
        self.last_incumbent = Some(sol.values.clone());

        let t = Instant::now();
        let layout = extract(&enc, &front.info, &sol, target);
        trace.record(
            "extract",
            false,
            t.elapsed(),
            format!("{} placements, {} registers", layout.placements.len(), layout.registers.len()),
        );

        let t = Instant::now();
        let concrete = concretize(&front.info, &front.unrolled, &layout, target.stages)?;
        let p4_text = print_p4(&concrete);
        trace.record(
            "codegen",
            false,
            t.elapsed(),
            format!("{} actions, {} LoC", concrete.num_actions(), crate::codegen::loc(&p4_text)),
        );

        let timings = timings_from(&trace, t_total.elapsed());
        Ok(Compilation {
            layout,
            concrete,
            p4_text,
            upper_bounds: front.bounds,
            ilp_stats,
            solve_stats: SolveStats {
                status: out.status,
                nodes: out.nodes,
                lp_solves: out.lp_solves,
                telemetry: out.telemetry,
            },
            timings,
            trace,
        })
    }

    /// Compile with the greedy first-fit allocator instead of the ILP
    /// (the ablation baseline). Shares the front-half cache with
    /// [`CompileCtx::compile`], so an ILP run followed by a greedy run
    /// re-executes only the placement itself.
    pub fn compile_greedy(
        &mut self,
        src: &str,
        target: &TargetSpec,
    ) -> Result<(Layout, CompileTrace), CompileError> {
        let mut trace = CompileTrace::default();
        let front = self.front(src, target, &mut trace)?;
        let t = Instant::now();
        let layout =
            crate::greedy::place_greedy(&front.info, &front.unrolled, &front.graph, target)?;
        trace.record(
            "greedy",
            false,
            t.elapsed(),
            format!("{} placements", layout.placements.len()),
        );
        Ok((layout, trace))
    }
}

/// Aggregate the pass trace into the coarse [`Timings`] quadrants.
fn timings_from(trace: &CompileTrace, total: Duration) -> Timings {
    let get = |name: &str| trace.pass(name).map(|p| p.duration).unwrap_or_default();
    Timings {
        parse: get("parse"),
        analysis: get("elaborate") + get("bounds") + get("unroll") + get("depgraph"),
        encode: get("encode"),
        solve: get("solve"),
        total,
    }
}

/// The P4All compiler for a fixed target.
///
/// A thin wrapper over a [`CompileCtx`] pinned to one [`TargetSpec`].
/// Repeated `compile`/`compile_greedy` calls on the same `Compiler` share
/// the front-half artifact cache; to share it across *targets* (e.g. a
/// memory sweep), use a [`CompileCtx`] directly.
pub struct Compiler {
    pub target: TargetSpec,
    pub options: CompileOptions,
    ctx: Mutex<CompileCtx>,
}

impl Compiler {
    pub fn new(target: TargetSpec) -> Self {
        Self::with_options(target, CompileOptions::default())
    }

    pub fn with_options(target: TargetSpec, options: CompileOptions) -> Self {
        let ctx = Mutex::new(CompileCtx::new(options.clone()));
        Compiler { target, options, ctx }
    }

    /// Compile P4All source text.
    pub fn compile(&self, src: &str) -> Result<Compilation, CompileError> {
        // A poisoned lock only means a previous compile panicked; the
        // cache is still structurally valid (worst case: stale miss).
        self.ctx.lock().unwrap_or_else(|p| p.into_inner()).compile(src, &self.target)
    }

    /// Compile with the greedy first-fit allocator instead of the ILP
    /// (the ablation baseline).
    pub fn compile_greedy(&self, src: &str) -> Result<Layout, CompileError> {
        self.ctx
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .compile_greedy(src, &self.target)
            .map(|(layout, _trace)| layout)
    }
}

/// Evaluate a utility expression at concrete symbolic values (used to
/// compare ILP and greedy layouts on equal footing).
pub fn evaluate_utility(utility: &Expr, values: &BTreeMap<String, u64>) -> Option<f64> {
    match utility {
        Expr::Int(v) => Some(*v as f64),
        Expr::Float(v) => Some(*v),
        Expr::Symbolic(s) => values.get(s).map(|&v| v as f64),
        Expr::Unary { op: p4all_lang::ast::UnOp::Neg, operand } => {
            evaluate_utility(operand, values).map(|v| -v)
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = evaluate_utility(lhs, values)?;
            let b = evaluate_utility(rhs, values)?;
            use p4all_lang::ast::BinOp::*;
            match op {
                Add => Some(a + b),
                Sub => Some(a - b),
                Mul => Some(a * b),
                Div if b != 0.0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilpgen::ResourceKind;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    #[test]
    fn end_to_end_cms_on_paper_example() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        assert_eq!(c.upper_bounds["rows"], 2);
        let rows = c.layout.symbol_values["rows"];
        let cols = c.layout.symbol_values["cols"];
        // Two co-optimal layouts exist (2x32 or 1x64); utility is 64.
        assert_eq!(rows * cols, 64);
        assert!((c.layout.objective - 64.0).abs() < 1e-6);
        // Validate the layout independently.
        p4all_pisa::validate(&c.layout.usage, &compiler.target).unwrap();
        // Every live iteration contributes an incr and a set_min.
        assert_eq!(c.concrete.num_actions() as u64, 2 * rows);
        // Generated P4 mentions the first register instance.
        assert!(c.p4_text.contains("cms_0"));
        assert!(c.solve_stats.status == SolveStatus::Optimal);
        // Cold compile: every pass ran, none cached.
        assert_eq!(c.trace.cache_hits(), 0);
        assert!(c.trace.pass("solve").is_some());
    }

    #[test]
    fn elastic_stretch_with_memory() {
        // More per-stage memory -> more columns (Figure 12's mechanism).
        let small = Compiler::new({
            let mut t = presets::paper_example();
            t.memory_bits = 1024;
            t
        });
        let big = Compiler::new({
            let mut t = presets::paper_example();
            t.memory_bits = 8192;
            t
        });
        let cs = small.compile(CMS).unwrap();
        let cb = big.compile(CMS).unwrap();
        assert!(
            cb.layout.symbol_values["cols"] > cs.layout.symbol_values["cols"],
            "cols must stretch with memory: {} vs {}",
            cb.layout.symbol_values["cols"],
            cs.layout.symbol_values["cols"]
        );
    }

    #[test]
    fn memory_sweep_reuses_front_half() {
        // One context, two memory points: the second compile must serve
        // the whole front half from cache and re-run only encode+solve.
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let mut target = presets::paper_example();
        target.memory_bits = 1024;
        let c1 = ctx.compile(CMS, &target).unwrap();
        assert_eq!(c1.trace.cache_hits(), 0, "cold compile must run every pass");
        target.memory_bits = 8192;
        let c2 = ctx.compile(CMS, &target).unwrap();
        for pass in ["parse", "elaborate", "bounds", "unroll", "depgraph"] {
            assert!(c2.trace.cached(pass), "pass `{pass}` should be cached on point 2");
        }
        for pass in ["encode", "solve", "extract", "codegen"] {
            assert!(!c2.trace.cached(pass), "pass `{pass}` must re-run on point 2");
        }
        assert!(c2.layout.symbol_values["cols"] > c1.layout.symbol_values["cols"]);
    }

    #[test]
    fn memory_sweep_threads_previous_incumbent() {
        // Sweeping memory upward on one context: the previous point's
        // layout stays feasible, so each later point starts from an
        // accepted warm-start incumbent. Sweeping back down invalidates
        // the cached incumbent (it no longer fits) and the compile must
        // silently fall back rather than fail.
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let mut target = presets::paper_example();
        target.memory_bits = 1024;
        let c1 = ctx.compile(CMS, &target).unwrap();
        assert!(ctx.last_incumbent.is_some(), "a successful solve must cache its incumbent");
        target.memory_bits = 8192;
        let c2 = ctx.compile(CMS, &target).unwrap();
        assert!(
            c2.solve_stats.telemetry.warm_start_accepted(),
            "point 2 of an upward sweep must seed from a warm start"
        );
        assert!(c2.layout.objective >= c1.layout.objective);
        target.memory_bits = 512;
        let c3 = ctx.compile(CMS, &target).unwrap();
        assert!(c3.layout.objective <= c2.layout.objective);
    }

    #[test]
    fn repeated_compile_on_one_compiler_hits_the_cache() {
        let compiler = Compiler::new(presets::paper_example());
        let _ = compiler.compile(CMS).unwrap();
        let c2 = compiler.compile(CMS).unwrap();
        assert!(c2.trace.cached("parse"));
        // Greedy shares the same cache.
        let layout = compiler.compile_greedy(CMS).unwrap();
        assert!(layout.symbol_values["rows"] >= 1);
    }

    #[test]
    fn plain_p4_compiles_through_the_same_pipeline() {
        let src = r#"
            header h { bit<32> dst; }
            struct metadata { bit<32> port; }
            register<bit<32>>[64] counters;
            action count_pkt() {
                counters[meta.port] = counters[meta.port] + 1;
            }
            control Main() { apply { count_pkt(); } }
        "#;
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(src).unwrap();
        assert_eq!(c.concrete.num_actions(), 1);
        assert_eq!(c.layout.registers[0].cells, 64);
    }

    #[test]
    fn infeasible_when_mandatory_work_exceeds_target() {
        // Four sequentially dependent inline statements on a 3-stage target.
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                    meta.c = meta.b + 1;
                    meta.d = meta.c + 1;
                }
            }
        "#;
        let compiler = Compiler::new(presets::paper_example());
        match compiler.compile(src) {
            Err(CompileError::Infeasible(x)) => {
                assert!(
                    x.resources.contains(&ResourceKind::Stages),
                    "stage-chain conflict must implicate S, got {:?}",
                    x.resources
                );
                assert!(!x.rows.is_empty());
            }
            other => panic!("expected infeasible, got {:?}", other.err().map(|e| e.to_string())),
        }
    }

    #[test]
    fn utility_evaluation_matches_ilp_objective() {
        let compiler = Compiler::new(presets::paper_example());
        let c = compiler.compile(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let u = evaluate_utility(program.optimize.as_ref().unwrap(), &c.layout.symbol_values)
            .unwrap();
        assert!(
            (u - c.layout.objective).abs() < 1e-6,
            "utility {} vs ILP objective {}",
            u,
            c.layout.objective
        );
    }

    #[test]
    fn greedy_never_beats_ilp() {
        let compiler = Compiler::new(presets::paper_example());
        let ilp = compiler.compile(CMS).unwrap();
        let greedy = compiler.compile_greedy(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let opt = program.optimize.as_ref().unwrap();
        let u_ilp = evaluate_utility(opt, &ilp.layout.symbol_values).unwrap();
        let u_greedy = evaluate_utility(opt, &greedy.symbol_values).unwrap();
        assert!(
            u_ilp >= u_greedy - 1e-9,
            "ILP utility {u_ilp} must dominate greedy {u_greedy}"
        );
    }

    #[test]
    fn source_errors_carry_spans() {
        let src = "symbolic int rows;\nassume rows >= oops;";
        match Compiler::new(presets::paper_example()).compile(src) {
            Err(CompileError::Source(d)) => {
                assert_eq!(d.span.expect("source errors are spanned").line, 2);
                assert!(d.render(src, "<test>").contains("assume rows >= oops;"));
            }
            other => panic!(
                "expected a spanned source error, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
    }

    #[test]
    fn exit_classes_are_stable() {
        assert_eq!(CompileError::Source(Diagnostic::error("x")).exit_class(), 2);
        assert_eq!(CompileError::SolverNumerical("x".into()).exit_class(), 4);
        assert_eq!(CompileError::SolverLimit("x".into()).exit_class(), 4);
        assert_eq!(
            CompileError::Internal(Diagnostic::internal("x")).exit_class(),
            5
        );
        // Display stays CLI-compatible.
        let compiler = Compiler::new(presets::paper_example());
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                    meta.c = meta.b + 1;
                    meta.d = meta.c + 1;
                }
            }
        "#;
        let err = compiler.compile(src).err().expect("infeasible");
        assert_eq!(err.exit_class(), 3);
        assert_eq!(
            err.to_string(),
            "no layout satisfies the target constraints and assumes"
        );
    }
}

//! Multi-tenant joint compilation: N elastic programs, one PISA pipeline.
//!
//! A production switch rarely runs a single program. This module compiles
//! N independent P4All programs — each a *tenant* with a utility weight —
//! into ONE jointly-optimal layout:
//!
//! 1. each tenant's source is validated standalone through the front half
//!    (parse → elaborate → bounds → unroll → depgraph), so errors are
//!    reported against the tenant's own source with its own spans;
//! 2. the tenant programs are namespaced (`tenant::name`) and merged into
//!    one program ([`p4all_lang::merge_programs`]) whose objective is the
//!    weighted sum `Σ weight_t · optimize_t` and whose entry control
//!    applies every tenant's pipeline in descending-weight order;
//! 3. the merged program runs through the ordinary [`CompileCtx::compile`]
//!    pipeline — ONE ILP whose stage/SRAM/ALU/PHV capacity rows are shared
//!    by all tenants, so the solver trades resources *between* tenants
//!    exactly as Figure 10 trades them between structures;
//! 4. the joint layout is split back into per-tenant reports: each
//!    tenant's own (unweighted) utility at the joint symbolic values and
//!    its symbolic values under their original local names.
//!
//! Single-program compilation is the N=1 case of this path (one tenant,
//! weight 1); nothing here is a bolt-on shim — the merged program is an
//! ordinary [`p4all_lang::ast::Program`] all the way down, and an
//! infeasible joint compile explains itself with tenant-aware IIS
//! provenance (see [`crate::explain`]).

use std::collections::BTreeMap;

use p4all_lang::ast::Program;
use p4all_lang::{merge_programs, namespace_program, Tenant};
use p4all_pisa::TargetSpec;

use crate::passes::{CompileCtx, CompileTrace};
use crate::pipeline::{evaluate_utility, Compilation, CompileError};
use crate::solution::Layout;
use crate::verify::{assumes_hold, verify_layout};

/// One tenant's input to a joint compile: its identity/weight plus its
/// standalone P4All source text.
#[derive(Debug, Clone)]
pub struct TenantProgram {
    pub tenant: Tenant,
    pub src: String,
}

impl TenantProgram {
    pub fn new(tenant: Tenant, src: impl Into<String>) -> Self {
        TenantProgram { tenant, src: src.into() }
    }
}

/// The merged form of N tenant programs: the per-tenant parsed ASTs (in
/// descending-weight merge order), the merged AST, and its printed source
/// — what the back half actually compiles, and what diagnostics for the
/// *joint* program render against.
#[derive(Debug, Clone)]
pub struct JointSource {
    /// `(tenant, un-namespaced program)` in merge (descending-weight) order.
    pub tenants: Vec<(Tenant, Program)>,
    /// The namespaced, weight-summed, single-entry merged program.
    pub merged: Program,
    /// `merged` printed back to P4All source text.
    pub src: String,
}

/// Parse and merge N tenant programs into one joint source.
///
/// Fails on zero tenants, duplicate tenant names, or a tenant whose
/// source does not parse (the error names the offending tenant).
pub fn merge_tenants(tenants: &[TenantProgram]) -> Result<JointSource, CompileError> {
    if tenants.is_empty() {
        return Err(CompileError::Source(p4all_lang::diag::Diagnostic::error(
            "joint compile needs at least one tenant program",
        )));
    }
    let mut parsed: Vec<(Tenant, Program)> = Vec::with_capacity(tenants.len());
    for t in tenants {
        let program = p4all_lang::parse(&t.src).map_err(|e| in_tenant(e, &t.tenant.name))?;
        parsed.push((t.tenant.clone(), program));
    }
    let merged = merge_programs(&parsed)?;
    // Re-establish merge order locally (merge_programs sorts internally).
    parsed.sort_by(|a, b| {
        b.0.weight.partial_cmp(&a.0.weight).unwrap_or(std::cmp::Ordering::Equal)
    });
    let src = p4all_lang::printer::print_program(&merged);
    Ok(JointSource { tenants: parsed, merged, src })
}

/// Prefix a tenant's own source error so a joint compile says *whose*
/// program is broken.
fn in_tenant(e: p4all_lang::errors::LangError, tenant: &str) -> CompileError {
    let d: p4all_lang::diag::Diagnostic = e.into();
    CompileError::Source(d.with_note(format!("in tenant `{tenant}`")))
}

/// One tenant's slice of a joint layout.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    pub weight: f64,
    /// The tenant's own (unweighted) `optimize` value at the joint
    /// symbolic values; `None` when the tenant has no `optimize` or it
    /// does not evaluate.
    pub utility: Option<f64>,
    /// The tenant's symbolic values under their original local names.
    pub symbol_values: BTreeMap<String, u64>,
}

/// A successful joint compilation: the merged-program compilation plus
/// the per-tenant utility split.
pub struct JointCompilation {
    pub compilation: Compilation,
    pub joint: JointSource,
    /// One report per tenant, in merge (descending-weight) order.
    pub tenants: Vec<TenantReport>,
}

impl JointCompilation {
    /// `Σ weight_t · utility_t` over tenants whose utility evaluates —
    /// equals the ILP objective when every tenant's does.
    pub fn weighted_utility(&self) -> f64 {
        self.tenants
            .iter()
            .filter_map(|t| t.utility.map(|u| t.weight * u))
            .sum()
    }
}

impl CompileCtx {
    /// Jointly compile N tenant programs into one layout on `target`.
    ///
    /// Each tenant's source first runs the front half standalone (errors
    /// carry the tenant's own spans; artifacts warm the front-half cache);
    /// the merged program then compiles through the ordinary pipeline.
    /// Single-program compilation is exactly `compile_joint` with one
    /// weight-1 tenant, minus the namespacing.
    pub fn compile_joint(
        &mut self,
        tenants: &[TenantProgram],
        target: &TargetSpec,
    ) -> Result<JointCompilation, CompileError> {
        // Standalone front-half validation per tenant. A tenant whose
        // program is malformed must be named before any merged-source
        // diagnostic (whose spans point into generated text) appears.
        for t in tenants {
            let mut scratch = CompileTrace::default();
            self.front(&t.src, target, &mut scratch).map_err(|e| match e {
                CompileError::Source(d) => {
                    CompileError::Source(d.with_note(format!("in tenant `{}`", t.tenant.name)))
                }
                other => other,
            })?;
        }

        let joint = merge_tenants(tenants)?;
        let compilation = self.compile(&joint.src, target)?;
        let tenants = tenant_reports(&joint, &compilation.layout);
        Ok(JointCompilation { compilation, joint, tenants })
    }
}

/// Split a joint layout into per-tenant reports (merge order).
pub fn tenant_reports(joint: &JointSource, layout: &Layout) -> Vec<TenantReport> {
    joint
        .tenants
        .iter()
        .map(|(tenant, program)| {
            let ns = namespace_program(program, &tenant.name);
            let utility = ns
                .optimize
                .as_ref()
                .and_then(|opt| evaluate_utility(opt, &layout.symbol_values));
            let prefix = format!("{}::", tenant.name);
            let symbol_values = layout
                .symbol_values
                .iter()
                .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|l| (l.to_string(), *v)))
                .collect();
            TenantReport {
                name: tenant.name.clone(),
                weight: tenant.weight,
                utility,
                symbol_values,
            }
        })
        .collect()
}

/// Verify a joint layout: the merged program's full layout check
/// ([`verify_layout`]) plus every tenant's `assume`s independently, so a
/// violation is attributed to the tenant whose contract broke.
pub fn verify_joint(
    joint: &JointSource,
    layout: &Layout,
    target: &TargetSpec,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    if let Err(mut v) = verify_layout(&joint.merged, layout, target) {
        violations.append(&mut v);
    }
    for (tenant, program) in &joint.tenants {
        let ns = namespace_program(program, &tenant.name);
        if let Err(v) = assumes_hold(&ns, &layout.symbol_values) {
            violations
                .extend(v.into_iter().map(|m| format!("tenant `{}`: {m}", tenant.name)));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompileOptions;
    use crate::verify::ilp_dominates_greedy;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata { bit<32>[rows] index; }
        register<bit<32>>[cols][rows] cms;
        action bump()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        }
        control Main() { apply { for (i < rows) { bump()[i]; } } }
    "#;

    fn tp(name: &str, weight: f64, src: &str) -> TenantProgram {
        TenantProgram::new(Tenant::new(name, weight).unwrap(), src)
    }

    #[test]
    fn two_tenant_joint_compile_splits_utility() {
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let target = presets::paper_eval(1 << 14);
        let jc = ctx
            .compile_joint(&[tp("cache", 2.0, CMS), tp("tele", 1.0, CMS)], &target)
            .unwrap();

        // Per-tenant reports: merge order, local names, evaluable utility.
        assert_eq!(jc.tenants.len(), 2);
        assert_eq!(jc.tenants[0].name, "cache");
        assert!(jc.tenants[0].symbol_values.contains_key("rows"));
        let u0 = jc.tenants[0].utility.expect("cache utility evaluates");
        let u1 = jc.tenants[1].utility.expect("tele utility evaluates");
        assert!(u0 >= 4.0 && u1 >= 4.0, "both tenants get a live structure");

        // The weighted sum is the ILP objective.
        assert!(
            (jc.weighted_utility() - jc.compilation.layout.objective).abs() < 1e-6,
            "weighted utility {} vs objective {}",
            jc.weighted_utility(),
            jc.compilation.layout.objective
        );

        // The higher-weight tenant gets at least as much utility.
        assert!(u0 >= u1, "weight-2 tenant got {u0}, weight-1 tenant {u1}");

        // The merged layout verifies against every tenant's assumes.
        verify_joint(&jc.joint, &jc.compilation.layout, &target).unwrap();
    }

    #[test]
    fn joint_compile_matches_single_compile_at_n1() {
        // One weight-1 tenant must land on the same objective as the
        // plain single-program path (names differ; the optimum does not).
        let target = presets::paper_example();
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let single = ctx.compile(CMS, &target).unwrap();
        let mut ctx2 = CompileCtx::new(CompileOptions::default().with_threads(1));
        let joint = ctx2.compile_joint(&[tp("solo", 1.0, CMS)], &target).unwrap();
        assert!(
            (single.layout.objective - joint.compilation.layout.objective).abs() < 1e-6,
            "single {} vs joint {}",
            single.layout.objective,
            joint.compilation.layout.objective
        );
        assert_eq!(joint.tenants[0].symbol_values.len(), single.layout.symbol_values.len());
    }

    #[test]
    fn joint_greedy_respects_weight_order_and_is_dominated() {
        // The merged program's declaration order IS descending-weight
        // order, so the greedy first-fit baseline allocates high-weight
        // tenants first — and the exact ILP still dominates it.
        let target = presets::paper_eval(1 << 13);
        let joint =
            merge_tenants(&[tp("light", 1.0, CMS), tp("heavy", 3.0, CMS)]).unwrap();
        assert_eq!(joint.tenants[0].0.name, "heavy");
        assert!(joint.merged.symbolics[0].name.starts_with("heavy::"));

        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let c = ctx.compile(&joint.src, &target).unwrap();
        let (greedy, _trace) = ctx.compile_greedy(&joint.src, &target).unwrap();
        let gap = ilp_dominates_greedy(&joint.merged, &c.layout, &greedy).unwrap();
        assert!(gap.is_some(), "joint utility must evaluate on both layouts");
    }

    #[test]
    fn tenant_source_errors_name_the_tenant() {
        let mut ctx = CompileCtx::new(CompileOptions::default().with_threads(1));
        let err = ctx
            .compile_joint(
                &[tp("ok", 1.0, CMS), tp("broken", 1.0, "symbolic int x; assume x >= oops;")],
                &presets::paper_example(),
            )
            .err()
            .expect("a broken tenant must fail the joint compile");
        let d = err.diagnostic().expect("source error carries a diagnostic");
        let text = format!("{d:?}");
        assert!(text.contains("broken"), "diagnostic must name the tenant: {text}");
    }

    #[test]
    fn merge_tenants_rejects_empty_and_duplicates() {
        assert!(merge_tenants(&[]).is_err());
        let err = merge_tenants(&[tp("x", 1.0, CMS), tp("x", 2.0, CMS)]);
        assert!(err.is_err());
    }
}

//! Upper bounds for loop unrolling (§4.2).
//!
//! For each count symbolic `v`, the compiler unrolls the loops bounded by
//! `v` at K = 1, 2, … and builds the dependency graph `G_v` over the
//! resulting instances, stopping at the first K where either
//!
//! 1. the longest simple path in `G_v` exceeds the stage count `S`, or
//! 2. the total ALU demand of `G_v` exceeds `(F + L) * S`.
//!
//! The upper bound is then `K - 1` — the largest K whose instances could
//! conceivably all fit (Figure 9's example: at K = 3 the longest path is 4
//! on a 3-stage target, so the bound is 2). Bounds mined from `assume`
//! statements and a configurable hard cap clamp the search.

use std::collections::BTreeMap;

use p4all_lang::diag::Diagnostic;
use p4all_pisa::TargetSpec;

use crate::depgraph::DepGraph;
use crate::elaborate::ProgramInfo;
use crate::ir::{instantiate, ActionInstance};

/// Hard cap on unrolling, protecting against unbounded growth when a loop
/// body has no cross-iteration dependencies and the target has a huge ALU
/// budget. Programs needing more should say so with an `assume`.
pub const DEFAULT_MAX_UNROLL: usize = 64;

/// Compute the unroll upper bound for count symbolic `sym`.
///
/// While probing `sym` at K, every *other* count symbolic is held at one
/// iteration — the most conservative assumption for nested/parallel loops
/// (§4.2, "Nested loops").
pub fn upper_bound(
    info: &ProgramInfo,
    sym: &str,
    target: &TargetSpec,
    max_unroll: usize,
) -> Result<usize, Diagnostic> {
    let cap = info
        .mined
        .get(sym)
        .and_then(|b| b.hi)
        .map(|h| h as usize)
        .unwrap_or(max_unroll)
        .min(max_unroll);
    if cap == 0 {
        return Ok(0);
    }

    let alu_budget = target.total_alus();
    let costs = &target.alu_costs;

    for k in 1..=cap {
        let mut bounds: BTreeMap<String, usize> = BTreeMap::new();
        for other in info.count_symbolics() {
            bounds.insert(other.to_string(), 1);
        }
        bounds.insert(sym.to_string(), k);
        let unrolled = instantiate(info, &bounds)?;
        // G_v covers only instances inside loops bounded by v.
        let members: Vec<&ActionInstance> = unrolled
            .instances
            .iter()
            .filter(|a| a.iters.iter().any(|it| it.symbolic == sym))
            .collect();
        if members.is_empty() {
            // The symbolic bounds no loop reached from the entry control
            // (e.g. a module library); the mined/hard cap is all we have.
            return Ok(cap);
        }
        let g = DepGraph::build(&members);
        if g.longest_simple_path() > target.stages {
            return Ok(k - 1);
        }
        if g.total_alus(&members, costs) > alu_budget {
            return Ok(k - 1);
        }
    }
    Ok(cap)
}

/// Upper bounds for every count symbolic of the program.
pub fn all_upper_bounds(
    info: &ProgramInfo,
    target: &TargetSpec,
    max_unroll: usize,
) -> Result<BTreeMap<String, usize>, Diagnostic> {
    let mut out = BTreeMap::new();
    for sym in info.count_symbolics() {
        let b = upper_bound(info, sym, target, max_unroll)?;
        // An `assume`d lower bound above the structural upper bound can
        // never be satisfied: report it here, with the declaration span,
        // instead of letting the ILP return a bare "infeasible".
        if let Some(lo) = info.mined.get(sym).and_then(|m| m.lo) {
            if lo as usize > b {
                let span = info
                    .program
                    .symbolics
                    .iter()
                    .find(|s| s.name == sym)
                    .map(|s| s.span);
                let mut d = Diagnostic::error(format!(
                    "unroll bound exceeded: `{sym}` is assumed >= {lo}, but target \
                     `{}` supports at most {b} iteration{} of the loops it bounds",
                    target.name,
                    if b == 1 { "" } else { "s" },
                ))
                .with_note(format!(
                    "the bound comes from the target's {} stages and {} ALUs (unrolling \
                     criteria 1 and 2)",
                    target.stages,
                    target.total_alus(),
                ));
                if let Some(span) = span {
                    d = d.with_span(span);
                }
                return Err(d);
            }
        }
        out.insert(sym.to_string(), b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use p4all_lang::parse;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    /// The worked example of §4.2 / Figure 9: on a three-stage target the
    /// CMS loop unrolls at most twice.
    #[test]
    fn figure_9_bound_is_2() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_example(); // S = 3
        let b = upper_bound(&info, "rows", &target, DEFAULT_MAX_UNROLL).unwrap();
        assert_eq!(b, 2);
    }

    #[test]
    fn more_stages_allow_more_iterations() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_eval(1 << 20); // S = 10
        let b = upper_bound(&info, "rows", &target, DEFAULT_MAX_UNROLL).unwrap();
        // Longest path at K is K+1 (incr_i then the chain of set_mins), so
        // the first violating K is 10 and the bound is 9.
        assert_eq!(b, 9);
    }

    #[test]
    fn assume_caps_the_bound() {
        let src = CMS.replace(
            "symbolic int rows;",
            "symbolic int rows;\nassume rows <= 3;",
        );
        let p = std::sync::Arc::new(parse(&src).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_eval(1 << 20);
        let b = upper_bound(&info, "rows", &target, DEFAULT_MAX_UNROLL).unwrap();
        assert_eq!(b, 3);
    }

    #[test]
    fn alu_criterion_bounds_parallel_loops() {
        // Independent per-iteration registers, no cross-iteration deps:
        // only the ALU budget stops unrolling.
        let src = r#"
            symbolic int n;
            header h { bit<32> key; }
            struct metadata { bit<32>[n] idx; }
            register<bit<32>>[64][n] tallies;
            action bump()[int i] {
                meta.idx[i] = hash(hdr.key, 64);
                tallies[i][meta.idx[i]] = tallies[i][meta.idx[i]] + 1;
            }
            control Main() { apply { for (i < n) { bump()[i]; } } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_example(); // (F+L)*S = 12 ALUs
        let b = upper_bound(&info, "n", &target, DEFAULT_MAX_UNROLL).unwrap();
        // Each bump costs Hash(1) + Rmw(1) = 2 ALUs: 7 iterations exceed 12.
        assert_eq!(b, 6);
    }

    #[test]
    fn hard_cap_applies_without_assumes() {
        let src = r#"
            symbolic int n;
            header h { bit<32> key; }
            struct metadata { bit<32>[n] idx; }
            register<bit<32>>[64][n] tallies;
            action bump()[int i] {
                meta.idx[i] = hash(hdr.key, 64);
                tallies[i][meta.idx[i]] = tallies[i][meta.idx[i]] + 1;
            }
            control Main() { apply { for (i < n) { bump()[i]; } } }
        "#;
        let p = std::sync::Arc::new(parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_eval(1 << 20); // 1040 ALUs
        let b = upper_bound(&info, "n", &target, 16).unwrap();
        assert_eq!(b, 16, "hard cap should clamp the ALU-bound search");
    }

    #[test]
    fn all_bounds_covers_every_count_symbolic() {
        let p = std::sync::Arc::new(parse(CMS).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_example();
        let all = all_upper_bounds(&info, &target, DEFAULT_MAX_UNROLL).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all["rows"], 2);
    }
}

//! Solution extraction: from an ILP solution back to a concrete layout.
//!
//! A [`Layout`] is the compiler's answer: concrete values for every
//! symbolic, a stage for every placed group, a memory allocation for every
//! register instance, and an independent [`PipelineUsage`] record that
//! `p4all_pisa::validate` can re-check against the target.

use std::collections::BTreeMap;

use p4all_ilp::Solution;
use p4all_pisa::{PipelineUsage, TargetSpec};

use crate::elaborate::ProgramInfo;
use crate::ilpgen::Encoding;

/// One placed group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    pub group: usize,
    pub label: String,
    pub stage: usize,
}

/// Memory given to one register instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAllocation {
    pub reg: String,
    pub instance: usize,
    pub stage: usize,
    pub cells: u64,
    pub elem_bits: u32,
}

impl RegisterAllocation {
    pub fn bits(&self) -> u64 {
        self.cells * self.elem_bits as u64
    }
}

/// The compiled layout.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Concrete assignment for every symbolic value (counts and sizes).
    pub symbol_values: BTreeMap<String, u64>,
    pub placements: Vec<Placement>,
    pub registers: Vec<RegisterAllocation>,
    /// Achieved utility (the ILP objective).
    pub objective: f64,
    /// Independent resource accounting for validation.
    pub usage: PipelineUsage,
}

impl Layout {
    /// Value of a symbolic, if assigned.
    pub fn value_of(&self, sym: &str) -> Option<u64> {
        self.symbol_values.get(sym).copied()
    }

    /// Stage of a placed group by label, if placed.
    pub fn stage_of(&self, label: &str) -> Option<usize> {
        self.placements.iter().find(|p| p.label == label).map(|p| p.stage)
    }

    /// Total register memory bits allocated.
    pub fn total_memory_bits(&self) -> u64 {
        self.registers.iter().map(|r| r.bits()).sum()
    }

    /// Human-readable per-stage summary (the Figure 7 style layout dump).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "symbolic assignment:");
        for (k, v) in &self.symbol_values {
            let _ = writeln!(out, "  {k} = {v}");
        }
        let _ = writeln!(out, "pipeline layout:");
        for (s, su) in self.usage.stages.iter().enumerate() {
            let actions: Vec<&str> = self
                .placements
                .iter()
                .filter(|p| p.stage == s)
                .map(|p| p.label.as_str())
                .collect();
            let regs: Vec<String> = self
                .registers
                .iter()
                .filter(|r| r.stage == s && r.cells > 0)
                .map(|r| format!("{}[{}]:{}x{}b", r.reg, r.instance, r.cells, r.elem_bits))
                .collect();
            if actions.is_empty() && regs.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "  stage {s}: actions=[{}] registers=[{}] mem={}b",
                actions.join(", "),
                regs.join(", "),
                su.memory_bits
            );
        }
        out
    }
}

/// Read a layout out of a solved encoding.
pub fn extract(
    enc: &Encoding,
    info: &ProgramInfo,
    sol: &Solution,
    target: &TargetSpec,
) -> Layout {
    let mut placements = Vec::new();
    let mut usage = PipelineUsage::new(target.stages);

    for (g, grp) in enc.groups.iter().enumerate() {
        for s in 0..enc.stages {
            if sol.int_value(enc.x[g][s]) == 1 {
                placements.push(Placement { group: g, label: grp.label.clone(), stage: s });
                usage.stages[s].stateful_alus += grp.stateful_alus;
                usage.stages[s].stateless_alus += grp.stateless_alus;
            }
        }
    }

    let mut registers = Vec::new();
    for (r, ri) in enc.regs.iter().enumerate() {
        for s in 0..enc.stages {
            let cells = sol.int_value(enc.cells[r][s]).max(0) as u64;
            if cells > 0 {
                registers.push(RegisterAllocation {
                    reg: ri.reg.clone(),
                    instance: ri.instance,
                    stage: s,
                    cells,
                    elem_bits: ri.elem_bits,
                });
                usage.stages[s].memory_bits += cells * ri.elem_bits as u64;
            }
        }
    }

    // Symbolic values: counts from live iteration indicators, sizes from
    // their dedicated variables.
    let mut symbol_values: BTreeMap<String, u64> = BTreeMap::new();
    for ((v, _i), &dv) in &enc.d {
        *symbol_values.entry(v.clone()).or_insert(0) += sol.int_value(dv).max(0) as u64;
    }
    for sym in info.count_symbolics() {
        symbol_values.entry(sym.to_string()).or_insert(0);
    }
    for (sz, &v) in &enc.sizes {
        symbol_values.insert(sz.clone(), sol.int_value(v).max(0) as u64);
    }

    // Elastic PHV: live chunks plus the program's fixed fields.
    let mut phv = info.fixed_phv_bits();
    for ((v, _i), &dv) in &enc.d {
        if sol.int_value(dv) == 1 {
            phv += info.meta_chunk_bits(v);
        }
    }
    usage.phv_elastic_bits = phv;

    Layout { symbol_values, placements, registers, objective: sol.objective, usage }
}

//! Code generation: from a solved layout to concrete, loop-free P4.
//!
//! Two artifacts are produced:
//!
//! - a [`ConcreteProgram`]: structured, stage-ordered IR consumed by the
//!   behavioral simulator (`p4all-sim`) and by validation;
//! - P4-16-flavoured source text with `@stage` pragmas, the human-readable
//!   artifact a target-specific P4 compiler would ingest (the paper's
//!   prototype hands exactly such a file to the Tofino compiler).

use std::fmt::Write;

use p4all_lang::ast::{Expr, Size, Stmt, TableDecl};
use p4all_lang::diag::Diagnostic;
use p4all_lang::printer::{print_expr, print_lvalue};

use crate::elaborate::ProgramInfo;
use crate::ir::Unrolled;
use crate::solution::Layout;

/// One placed, fully concrete action.
#[derive(Debug, Clone)]
pub struct ConcreteAction {
    pub label: String,
    pub stage: usize,
    /// Gateway condition; the action fires only when it evaluates true.
    pub guard: Option<Expr>,
    /// Statements with loop indices and hash ranges fully resolved.
    pub stmts: Vec<Stmt>,
    /// Set when this action is a table apply.
    pub table: Option<String>,
}

/// One placed register array with concrete size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteRegister {
    pub reg: String,
    pub instance: usize,
    pub cells: u64,
    pub elem_bits: u32,
    pub stage: usize,
}

/// A concrete metadata field (arrays resolved to their live element count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteMetaField {
    pub name: String,
    pub bits: u32,
    /// `None` = scalar; `Some(n)` = array of `n` live elements.
    pub count: Option<u64>,
}

/// The loop-free compiled program.
#[derive(Debug, Clone)]
pub struct ConcreteProgram {
    /// Actions grouped per stage, in stage order.
    pub stages: Vec<Vec<ConcreteAction>>,
    pub registers: Vec<ConcreteRegister>,
    pub tables: Vec<TableDecl>,
    pub metadata: Vec<ConcreteMetaField>,
    pub headers: Vec<(String, u32)>,
}

impl ConcreteProgram {
    /// Find a register allocation.
    pub fn register(&self, reg: &str, instance: usize) -> Option<&ConcreteRegister> {
        self.registers.iter().find(|r| r.reg == reg && r.instance == instance)
    }

    /// Total placed actions.
    pub fn num_actions(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }
}

/// Build the concrete program for a solved layout.
pub fn concretize(
    info: &ProgramInfo,
    unrolled: &Unrolled,
    layout: &Layout,
    stages: usize,
) -> Result<ConcreteProgram, Diagnostic> {
    let mut out_stages: Vec<Vec<ConcreteAction>> = vec![Vec::new(); stages];

    // An instance is placed at the stage of the placement whose label
    // contains its label (group labels are `+`-joined member labels).
    for inst in &unrolled.instances {
        let stage = layout
            .placements
            .iter()
            .find(|p| p.label.split('+').any(|part| part == inst.label))
            .map(|p| p.stage);
        let Some(stage) = stage else { continue };
        let stmts: Result<Vec<Stmt>, Diagnostic> =
            inst.stmts.iter().map(|s| resolve_stmt(s, layout)).collect();
        out_stages[stage].push(ConcreteAction {
            label: inst.label.clone(),
            stage,
            guard: inst.guard.clone(),
            stmts: stmts?,
            table: inst.table.clone(),
        });
    }

    let registers = layout
        .registers
        .iter()
        .map(|r| ConcreteRegister {
            reg: r.reg.clone(),
            instance: r.instance,
            cells: r.cells,
            elem_bits: r.elem_bits,
            stage: r.stage,
        })
        .collect();

    let metadata = info
        .program
        .metadata
        .iter()
        .map(|m| ConcreteMetaField {
            name: m.name.clone(),
            bits: m.bits,
            count: m.count.as_ref().map(|c| match c {
                Size::Const(k) => *k,
                Size::Symbolic(v) => layout.value_of(v).unwrap_or(0),
            }),
        })
        .collect();

    let headers = info
        .program
        .headers
        .iter()
        .flat_map(|h| h.fields.iter().cloned())
        .collect();

    Ok(ConcreteProgram {
        stages: out_stages,
        registers,
        tables: info.program.tables.clone(),
        metadata,
        headers,
    })
}

/// Resolve symbolic hash ranges to constants.
fn resolve_stmt(s: &Stmt, layout: &Layout) -> Result<Stmt, Diagnostic> {
    Ok(match s {
        Stmt::HashAssign { lhs, inputs, range, span } => {
            let cells = match range {
                Size::Const(k) => *k,
                Size::Symbolic(v) => layout.value_of(v).ok_or_else(|| {
                    Diagnostic::internal(format!(
                        "no concrete value for hash range symbolic `{v}`"
                    ))
                    .with_span(*span)
                })?,
            };
            Stmt::HashAssign {
                lhs: lhs.clone(),
                inputs: inputs.clone(),
                range: Size::Const(cells),
                span: *span,
            }
        }
        Stmt::If { cond, then_body, else_body, span } => Stmt::If {
            cond: cond.clone(),
            then_body: then_body.iter().map(|t| resolve_stmt(t, layout)).collect::<Result<_, _>>()?,
            else_body: else_body.iter().map(|t| resolve_stmt(t, layout)).collect::<Result<_, _>>()?,
            span: *span,
        },
        other => other.clone(),
    })
}

/// Render the concrete program as P4-16-flavoured source with `@stage`
/// pragmas — the textual artifact handed to a target-specific compiler.
pub fn print_p4(p: &ConcreteProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Generated by the P4All elastic compiler.");
    let _ = writeln!(out, "// Loop-free, concrete program with stage pragmas.\n");

    if !p.headers.is_empty() {
        let _ = writeln!(out, "header headers_t {{");
        for (f, b) in &p.headers {
            let _ = writeln!(out, "    bit<{b}> {f};");
        }
        let _ = writeln!(out, "}}\n");
    }
    let _ = writeln!(out, "struct metadata {{");
    for m in &p.metadata {
        match m.count {
            Some(n) => {
                for i in 0..n {
                    let _ = writeln!(out, "    bit<{}> {}_{i};", m.bits, m.name);
                }
            }
            None => {
                let _ = writeln!(out, "    bit<{}> {};", m.bits, m.name);
            }
        }
    }
    let _ = writeln!(out, "}}\n");

    for r in &p.registers {
        let _ = writeln!(out, "@stage({})", r.stage);
        let _ = writeln!(
            out,
            "register<bit<{}>>({}) {}_{};",
            r.elem_bits, r.cells, r.reg, r.instance
        );
    }
    for t in &p.tables {
        let _ = writeln!(out, "\ntable {} {{", t.name);
        let keys: Vec<String> = t.keys.iter().map(print_expr).collect();
        let _ = writeln!(out, "    key = {{ {} : exact; }}", keys.join(", "));
        let _ = writeln!(out, "    actions = {{ {}; }}", t.actions.join("; "));
        let _ = writeln!(out, "    size = {};", t.size);
        let _ = writeln!(out, "}}");
    }

    let _ = writeln!(out, "\ncontrol Ingress(inout headers_t hdr, inout metadata meta) {{");
    let _ = writeln!(out, "    apply {{");
    for (s, actions) in p.stages.iter().enumerate() {
        if actions.is_empty() {
            continue;
        }
        let _ = writeln!(out, "        // ---- stage {s} ----");
        for a in actions {
            let _ = writeln!(out, "        @stage({s}) // {}", a.label);
            let indent = if let Some(g) = &a.guard {
                let _ = writeln!(out, "        if ({}) {{", print_expr(g));
                "            "
            } else {
                "        "
            };
            if let Some(t) = &a.table {
                let _ = writeln!(out, "{indent}{t}.apply();");
            }
            for st in &a.stmts {
                print_concrete_stmt(&mut out, st, indent);
            }
            if a.guard.is_some() {
                let _ = writeln!(out, "        }}");
            }
        }
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn print_concrete_stmt(out: &mut String, s: &Stmt, indent: &str) {
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            let _ = writeln!(out, "{indent}{} = {};", print_lvalue(lhs), print_expr(rhs));
        }
        Stmt::HashAssign { lhs, inputs, range, .. } => {
            let args: Vec<String> = inputs.iter().map(print_expr).collect();
            let range = match range {
                Size::Const(k) => k.to_string(),
                Size::Symbolic(v) => v.clone(),
            };
            let _ = writeln!(
                out,
                "{indent}hash({}, HashAlgorithm.crc32, {}, {{ {} }});",
                print_lvalue(lhs),
                range,
                args.join(", ")
            );
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            let _ = writeln!(out, "{indent}if ({}) {{", print_expr(cond));
            let deeper = format!("{indent}    ");
            for t in then_body {
                print_concrete_stmt(out, t, &deeper);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{indent}}}");
            } else {
                let _ = writeln!(out, "{indent}}} else {{");
                for t in else_body {
                    print_concrete_stmt(out, t, &deeper);
                }
                let _ = writeln!(out, "{indent}}}");
            }
        }
        other => {
            let _ = writeln!(out, "{indent}// unsupported in concrete output: {other:?}");
        }
    }
}

/// Count the lines of a generated/printed program — the "LoC" metric of
/// Figure 11.
pub fn loc(text: &str) -> usize {
    text.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ignores_blank_lines() {
        assert_eq!(loc("a\n\n  \nb\n"), 2);
    }
}

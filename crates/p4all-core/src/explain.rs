//! Infeasibility explanations.
//!
//! When the placement ILP of Figure 10 is infeasible, "no layout" is the
//! correct answer but a useless one: the programmer wants to know *which*
//! elastic structures collide on *which* PISA resource, and *where* in the
//! source the conflict originates. This module turns the bare
//! `Infeasible` verdict into that answer:
//!
//! 1. run the bounded deletion-filter IIS from `p4all-ilp`
//!    ([`p4all_ilp::find_iis`]) to shrink the model to a small jointly
//!    infeasible row core;
//! 2. map every surviving row back through the [`RowProvenance`] the
//!    generator attached to it — symbolic values, resource kind
//!    (S/M/F/L/P), source span;
//! 3. aggregate those into one [`Diagnostic`] naming the conflicting
//!    elastic structures, the exhausted resources, and at least one
//!    source anchor.
//!
//! The explanation is *bounded*: the caller fixes the probe budget (see
//! [`IisOptions`]), and the compile driver additionally clamps the
//! per-probe node limit so the whole filter costs at most about twice the
//! original solve.

use p4all_ilp::{find_iis, IisOptions};
use p4all_lang::diag::Diagnostic;
use p4all_pisa::TargetSpec;

use crate::ilpgen::{Encoding, ResourceKind, RowProvenance};

/// One IIS member mapped back to its origin.
#[derive(Debug, Clone)]
pub struct ExplainedRow {
    /// Row index into the encoding's model.
    pub row: usize,
    /// The constraint's model name (e.g. `stage_mem_s2`).
    pub name: String,
    /// Generator provenance, when the row has one (every generated row
    /// does; `None` only for rows added outside the generator).
    pub provenance: Option<RowProvenance>,
}

/// Why a program does not fit: a conflicting constraint core plus the
/// aggregated, human-readable diagnostic built from it.
#[derive(Debug, Clone)]
pub struct Infeasibility {
    /// The rendered explanation (message, notes, spans).
    pub diagnostic: Diagnostic,
    /// The conflicting rows, mapped through provenance.
    pub rows: Vec<ExplainedRow>,
    /// Distinct resource kinds implicated, in S/M/F/L/P order.
    pub resources: Vec<ResourceKind>,
    /// Distinct symbolic values implicated, sorted.
    pub symbolics: Vec<String>,
    /// Distinct tenants implicated (joint compiles only), sorted. Derived
    /// from row provenance and symbolic `tenant::` prefixes.
    pub tenants: Vec<String>,
    /// Feasibility probes the deletion filter spent.
    pub probes: usize,
    /// True when the core is irreducible (the filter ran to completion).
    pub minimal: bool,
}

/// Explain an infeasible encoding. The caller must already hold an
/// `Infeasible` solver verdict for `enc.model`; this runs the bounded IIS
/// filter and aggregates provenance into a diagnostic.
pub fn explain_infeasible(
    enc: &Encoding,
    target: &TargetSpec,
    opts: &IisOptions,
) -> Infeasibility {
    let report = find_iis(&enc.model, opts);

    let rows: Vec<ExplainedRow> = report
        .rows
        .iter()
        .map(|&i| ExplainedRow {
            row: i,
            name: enc.model.constraints()[i].name.clone(),
            provenance: enc.provenance_of(i).cloned(),
        })
        .collect();

    let mut symbolics: Vec<String> = rows
        .iter()
        .filter_map(|r| r.provenance.as_ref())
        .flat_map(|p| p.symbolics.iter().cloned())
        .collect();
    symbolics.sort();
    symbolics.dedup();

    let mut resources: Vec<ResourceKind> = rows
        .iter()
        .filter_map(|r| r.provenance.as_ref())
        .map(|p| p.resource)
        .collect();

    // Capacity limits folded into *column* bounds never show up as IIS
    // rows; when a core symbolic is clamped by one, the clamp is part of
    // the conflict and its resource must be named too.
    let implicated_bounds: Vec<&crate::ilpgen::DerivedBound> = enc
        .derived_bounds
        .iter()
        .filter(|b| symbolics.contains(&b.symbolic))
        .collect();
    resources.extend(implicated_bounds.iter().map(|b| b.resource));
    resources.sort();
    resources.dedup();

    // Tenants implicated by the core: from each row's derived tenant and
    // from the `tenant::` prefixes of the conflicting symbolics.
    let mut tenants: Vec<String> = rows
        .iter()
        .filter_map(|r| r.provenance.as_ref())
        .filter_map(|p| p.tenant.clone())
        .chain(symbolics.iter().filter_map(|s| p4all_lang::tenant_of(s).map(str::to_string)))
        .collect();
    tenants.sort();
    tenants.dedup();

    let mut d = Diagnostic::error(format!(
        "program does not fit on target `{}`: no assignment of its elastic \
         parameters satisfies every placement constraint",
        target.name
    ));

    if tenants.len() > 1 {
        let list: Vec<String> = tenants.iter().map(|t| format!("`{t}`")).collect();
        d = d.with_note(format!(
            "tenants {} conflict over shared pipeline capacity",
            list.join(", ")
        ));
    }

    if !symbolics.is_empty() {
        let list: Vec<String> = symbolics.iter().map(|s| format!("`{s}`")).collect();
        d = d.with_note(format!(
            "the conflict involves the elastic structure{} sized by {}",
            if symbolics.len() == 1 { "" } else { "s" },
            list.join(", ")
        ));
    }

    let physical: Vec<&'static str> =
        resources.iter().filter(|r| r.is_physical()).map(|r| r.describe()).collect();
    if !physical.is_empty() {
        d = d.with_note(format!("exhausted target resources: {}", physical.join(", ")));
    }
    for b in &implicated_bounds {
        d = match b.span {
            Some(span) => d.with_note_at(b.detail.clone(), span),
            None => d.with_note(b.detail.clone()),
        };
    }
    if resources.contains(&ResourceKind::Assumption) {
        d = d.with_note(
            "user `assume` constraints participate in the conflict; relaxing \
             them may restore feasibility",
        );
    }

    // Anchor the diagnostic at the first spanned row and attach up to four
    // of the most informative rows (spanned, non-structural first) as
    // spanned notes the renderer can show snippets for. In a joint compile
    // the first pass anchors one row per conflicting tenant — a two-tenant
    // SRAM fight must show *both* tenants' source spans, not four spans
    // from whichever tenant sorts first — and the second pass fills the
    // remaining slots in quality order.
    let mut anchored = 0usize;
    let mut best_first: Vec<&ExplainedRow> = rows.iter().collect();
    best_first.sort_by_key(|r| match r.provenance.as_ref() {
        Some(p) if p.span.is_some() && p.resource.is_physical() => 0,
        Some(p) if p.span.is_some() => 1,
        Some(_) => 2,
        None => 3,
    });
    let mut seen: Vec<(String, p4all_lang::Span)> = Vec::new();
    let mut tenants_anchored: Vec<&str> = Vec::new();
    let mut anchor = |d: &mut Diagnostic, p: &RowProvenance, span: p4all_lang::Span| {
        if d.span.is_none() {
            *d = d.clone().with_span(span);
        }
        // A single logical constraint often contributes several model rows
        // (e.g. the big-M pair of a precedence constraint); show it once.
        if anchored < 4 && !seen.contains(&(p.detail.clone(), span)) {
            seen.push((p.detail.clone(), span));
            *d = d.clone().with_note_at(format!("conflicting constraint: {}", p.detail), span);
            anchored += 1;
        }
    };
    if tenants.len() > 1 {
        for r in &best_first {
            let Some(p) = r.provenance.as_ref() else { continue };
            let (Some(span), Some(t)) = (p.span, p.tenant.as_deref()) else { continue };
            if !tenants_anchored.contains(&t) {
                tenants_anchored.push(t);
                anchor(&mut d, p, span);
            }
        }
    }
    for r in &best_first {
        let Some(p) = r.provenance.as_ref() else { continue };
        let Some(span) = p.span else { continue };
        anchor(&mut d, p, span);
    }

    if d.span.is_none() {
        if let Some(span) = implicated_bounds.iter().find_map(|b| b.span) {
            d = d.with_span(span);
        }
    }

    d = d.with_note(format!(
        "conflict core: {} of {} constraints{}",
        rows.len(),
        enc.model.num_constraints(),
        if report.minimal { " (irreducible)" } else { " (probe budget reached)" }
    ));

    Infeasibility {
        diagnostic: d,
        rows,
        resources,
        symbolics,
        tenants,
        probes: report.probes,
        minimal: report.minimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_full;
    use crate::elaborate::elaborate;
    use crate::ilpgen::encode;
    use crate::ir::instantiate;
    use p4all_pisa::presets;
    use std::collections::BTreeMap;

    /// Four sequentially dependent mandatory statements cannot fit three
    /// stages; the explanation must name the stage resource and carry at
    /// least one span.
    #[test]
    fn explains_a_stage_chain_conflict() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
            control Main() {
                apply {
                    meta.a = hdr.key;
                    meta.b = meta.a + 1;
                    meta.c = meta.b + 1;
                    meta.d = meta.c + 1;
                }
            }
        "#;
        let p = std::sync::Arc::new(p4all_lang::parse(src).unwrap());
        let info = elaborate(&p).unwrap();
        let target = presets::paper_example();
        let bounds = BTreeMap::new();
        let u = instantiate(&info, &bounds).unwrap();
        let g = build_full(&u);
        let enc = encode(&info, &u, &g, &target).unwrap();
        let x = explain_infeasible(&enc, &target, &IisOptions::default());
        assert!(!x.rows.is_empty());
        assert!(
            x.resources.contains(&ResourceKind::Stages),
            "stage conflict must implicate S, got {:?}",
            x.resources
        );
        let has_span = x.diagnostic.span.is_some()
            || x.diagnostic.notes.iter().any(|n| n.span.is_some());
        assert!(has_span, "explanation must carry a source anchor");
        let text = x.diagnostic.render(src, "<test>");
        assert!(text.contains("does not fit"), "{text}");
        assert!(text.contains("pipeline stages (S)"), "{text}");
    }
}

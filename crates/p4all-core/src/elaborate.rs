//! Elaboration: symbol-table construction and semantic validation.
//!
//! Classifies every symbolic value by *role*:
//!
//! - **count** symbolics bound loops, size metadata arrays, and count
//!   instances of register-array arrays (`rows` in the paper's CMS);
//! - **size** symbolics size register cells and hash ranges (`cols`).
//!
//! A symbolic used in both roles has no single linearization in the ILP and
//! is rejected with a spanned error. Elaboration also enforces the PISA
//! constraints the compiler relies on: each action touches at most one
//! register, controls do not recurse, and the program has an entry control.

use std::collections::BTreeMap;
use std::sync::Arc;

use p4all_lang::ast::*;
use p4all_lang::diag::Diagnostic;
use p4all_lang::span::Span;

/// Role of a symbolic value (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymRole {
    /// Bounds loops / array-of-arrays instance counts / metadata arrays.
    Count,
    /// Sizes register cells / hash ranges.
    Size,
}

/// Bounds mined from `assume` statements (used to cap unrolling and seed
/// ILP variable bounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinedBounds {
    pub lo: Option<u64>,
    pub hi: Option<u64>,
}

/// The elaborated program: the AST plus symbol roles and derived tables.
///
/// Owns the AST behind an `Arc` so the artifact is `'static` and can be
/// cached/shared across compilations by the pass manager (front-half reuse
/// in target sweeps).
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    pub program: Arc<Program>,
    pub roles: BTreeMap<String, SymRole>,
    /// Simple per-symbolic bounds extracted from conjunctive assumes.
    pub mined: BTreeMap<String, MinedBounds>,
    /// Flat `hdr.field -> bits` table.
    pub header_bits: BTreeMap<String, u32>,
}

impl ProgramInfo {
    /// All count symbolics, in declaration order.
    pub fn count_symbolics(&self) -> Vec<&str> {
        self.program
            .symbolics
            .iter()
            .filter(|s| self.roles.get(&s.name) == Some(&SymRole::Count))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// All size symbolics, in declaration order.
    pub fn size_symbolics(&self) -> Vec<&str> {
        self.program
            .symbolics
            .iter()
            .filter(|s| self.roles.get(&s.name) == Some(&SymRole::Size))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Total metadata bits of the elastic arrays counted by `sym` (one
    /// "chunk" in the paper's PHV accounting).
    pub fn meta_chunk_bits(&self, sym: &str) -> u64 {
        self.program
            .metadata
            .iter()
            .filter(|m| m.count.as_ref().and_then(|c| c.symbolic_name()) == Some(sym))
            .map(|m| m.bits as u64)
            .sum()
    }

    /// PHV bits of fixed (non-array) metadata plus header fields.
    pub fn fixed_phv_bits(&self) -> u64 {
        let meta: u64 = self
            .program
            .metadata
            .iter()
            .filter(|m| m.count.is_none())
            .map(|m| m.bits as u64)
            .sum();
        let hdr: u64 = self.header_bits.values().map(|&b| b as u64).sum();
        meta + hdr
    }
}

/// Elaborate a parsed program.
///
/// Accepts the AST behind an `Arc` (clone the parse artifact once; every
/// downstream pass shares it).
pub fn elaborate(program: &Arc<Program>) -> Result<ProgramInfo, Diagnostic> {
    let mut roles: BTreeMap<String, SymRole> = BTreeMap::new();
    let mut set_role = |name: &str, role: SymRole, span: Span| -> Result<(), Diagnostic> {
        match roles.get(name) {
            None => {
                roles.insert(name.to_string(), role);
                Ok(())
            }
            Some(r) if *r == role => Ok(()),
            Some(r) => Err(Diagnostic::error_at(
                format!("symbolic `{name}` used both as a {} and as a {}", role_name(*r), role_name(role)),
                span,
            )
            .with_note("split it into two symbolic values")),
        }
    };

    // Roles from register declarations.
    for r in &program.registers {
        if let Some(sym) = r.cells.symbolic_name() {
            set_role(sym, SymRole::Size, r.span)?;
        }
        if let Some(inst) = &r.instances {
            if let Some(sym) = inst.symbolic_name() {
                set_role(sym, SymRole::Count, r.span)?;
            }
        }
    }
    // Roles from metadata arrays.
    for m in &program.metadata {
        if let Some(sym) = m.count.as_ref().and_then(|c| c.symbolic_name()) {
            set_role(sym, SymRole::Count, m.span)?;
        }
    }
    // Roles from loops and hash ranges (walk every statement).
    let mut stmt_stack: Vec<(&Stmt, Span)> = Vec::new();
    for a in &program.actions {
        for s in &a.body {
            stmt_stack.push((s, a.span));
        }
    }
    for c in &program.controls {
        for s in &c.body {
            stmt_stack.push((s, c.span));
        }
    }
    while let Some((s, span)) = stmt_stack.pop() {
        match s {
            Stmt::For { bound, body, span: fspan, .. } => {
                if let Some(sym) = bound.symbolic_name() {
                    set_role(sym, SymRole::Count, *fspan)?;
                }
                for b in body {
                    stmt_stack.push((b, *fspan));
                }
            }
            Stmt::HashAssign { range, span: hspan, .. } => {
                if let Some(sym) = range.symbolic_name() {
                    set_role(sym, SymRole::Size, *hspan)?;
                }
            }
            Stmt::If { then_body, else_body, span: ispan, .. } => {
                for b in then_body.iter().chain(else_body) {
                    stmt_stack.push((b, *ispan));
                }
            }
            _ => {
                let _ = span;
            }
        }
    }

    // Every declared symbolic must have acquired a role (otherwise the ILP
    // has no handle on it).
    for s in &program.symbolics {
        if !roles.contains_key(&s.name) {
            // A symbolic referenced only in assume/optimize is meaningless.
            return Err(Diagnostic::error_at(
                format!(
                    "symbolic `{}` is never used as a loop bound, array extent, or hash \
                     range",
                    s.name
                ),
                s.span,
            )
            .with_note(
                "a symbolic referenced only in `assume`/`optimize` gives the ILP nothing \
                 to place",
            ));
        }
    }

    // Header namespace.
    let mut header_bits = BTreeMap::new();
    for h in &program.headers {
        for (f, b) in &h.fields {
            header_bits.insert(f.clone(), *b);
        }
    }

    // Each action accesses at most one register (atomic stateful action).
    for a in &program.actions {
        let mut regs: Vec<&str> = Vec::new();
        collect_action_registers(&a.body, &mut regs);
        regs.sort_unstable();
        regs.dedup();
        if regs.len() > 1 {
            return Err(Diagnostic::error_at(
                format!(
                    "action `{}` accesses {} registers ({}); PISA stateful actions may \
                     access only one",
                    a.name,
                    regs.len(),
                    regs.join(", ")
                ),
                a.span,
            ));
        }
    }

    // Controls must not recurse and must reference declared controls.
    check_control_recursion(program)?;

    if program.entry_control().is_none() && !program.actions.is_empty() {
        // Programs that are pure module libraries (actions only) are
        // allowed; a compilable program needs a control.
    }

    let mined = mine_assume_bounds(program);

    Ok(ProgramInfo { program: Arc::clone(program), roles, mined, header_bits })
}

fn role_name(r: SymRole) -> &'static str {
    match r {
        SymRole::Count => "count (loop bound / instance count)",
        SymRole::Size => "size (register cells / hash range)",
    }
}

fn collect_action_registers<'a>(body: &'a [Stmt], out: &mut Vec<&'a str>) {
    fn expr_regs<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        match e {
            Expr::RegisterRead { reg, instance, cell } => {
                out.push(reg);
                if let Some(i) = instance {
                    expr_regs(i, out);
                }
                expr_regs(cell, out);
            }
            Expr::Unary { operand, .. } => expr_regs(operand, out),
            Expr::Binary { lhs, rhs, .. } => {
                expr_regs(lhs, out);
                expr_regs(rhs, out);
            }
            Expr::Meta { index: Some(i), .. } => expr_regs(i, out),
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::Register { reg, .. } = lhs {
                    out.push(reg);
                }
                expr_regs(rhs, out);
            }
            Stmt::HashAssign { lhs, inputs, .. } => {
                if let LValue::Register { reg, .. } = lhs {
                    out.push(reg);
                }
                for i in inputs {
                    expr_regs(i, out);
                }
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                expr_regs(cond, out);
                collect_action_registers(then_body, out);
                collect_action_registers(else_body, out);
            }
            Stmt::For { body, .. } => collect_action_registers(body, out),
            _ => {}
        }
    }
}

fn check_control_recursion(program: &Program) -> Result<(), Diagnostic> {
    fn visit(
        program: &Program,
        name: &str,
        stack: &mut Vec<String>,
        span: Span,
    ) -> Result<(), Diagnostic> {
        if stack.iter().any(|s| s == name) {
            return Err(Diagnostic::error_at(
                format!("control `{name}` is applied recursively ({})", stack.join(" -> ")),
                span,
            ));
        }
        let Some(ctl) = program.control(name) else {
            return Err(Diagnostic::error_at(format!("undeclared control `{name}`"), span));
        };
        stack.push(name.to_string());
        let mut work: Vec<&Stmt> = ctl.body.iter().collect();
        while let Some(s) = work.pop() {
            match s {
                Stmt::ApplyControl { name: inner, span } => {
                    visit(program, inner, stack, *span)?;
                }
                Stmt::If { then_body, else_body, .. } => {
                    work.extend(then_body.iter().chain(else_body));
                }
                Stmt::For { body, .. } => work.extend(body.iter()),
                _ => {}
            }
        }
        stack.pop();
        Ok(())
    }
    for c in &program.controls {
        visit(program, &c.name, &mut Vec::new(), c.span)?;
    }
    Ok(())
}

/// Extract per-symbolic `lo`/`hi` from top-level conjunctive assumes of the
/// shapes `sym cmp const` / `const cmp sym`. Richer assumes still reach the
/// ILP verbatim; this mining only serves the unroll cap and variable
/// bounds.
fn mine_assume_bounds(program: &Program) -> BTreeMap<String, MinedBounds> {
    let mut out: BTreeMap<String, MinedBounds> = BTreeMap::new();
    fn walk(e: &Expr, out: &mut BTreeMap<String, MinedBounds>) {
        match e {
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Binary { op, lhs, rhs } => {
                let (sym, k, flipped) = match (&**lhs, &**rhs) {
                    (Expr::Symbolic(s), Expr::Int(k)) => (s.clone(), *k, false),
                    (Expr::Int(k), Expr::Symbolic(s)) => (s.clone(), *k, true),
                    _ => return,
                };
                let b = out.entry(sym).or_default();
                // Normalize to sym OP k.
                let op = if flipped {
                    match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        o => *o,
                    }
                } else {
                    *op
                };
                match op {
                    BinOp::Le => b.hi = Some(b.hi.map_or(k, |h| h.min(k))),
                    BinOp::Lt => b.hi = Some(b.hi.map_or(k.saturating_sub(1), |h| h.min(k.saturating_sub(1)))),
                    BinOp::Ge => b.lo = Some(b.lo.map_or(k, |l| l.max(k))),
                    BinOp::Gt => b.lo = Some(b.lo.map_or(k + 1, |l| l.max(k + 1))),
                    BinOp::Eq => {
                        b.lo = Some(b.lo.map_or(k, |l| l.max(k)));
                        b.hi = Some(b.hi.map_or(k, |h| h.min(k)));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    for a in &program.assumes {
        walk(&a.expr, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_lang::parse;

    fn parse_arc(src: &str) -> Arc<Program> {
        Arc::new(parse(src).unwrap())
    }

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 16;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply { for (i < rows) { if (meta.count[i] < meta.min) { set_min()[i]; } } }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    #[test]
    fn roles_for_cms() {
        let p = parse_arc(CMS);
        let info = elaborate(&p).unwrap();
        assert_eq!(info.roles["rows"], SymRole::Count);
        assert_eq!(info.roles["cols"], SymRole::Size);
        assert_eq!(info.count_symbolics(), vec!["rows"]);
        assert_eq!(info.size_symbolics(), vec!["cols"]);
    }

    #[test]
    fn mined_bounds_from_assumes() {
        let p = parse_arc(CMS);
        let info = elaborate(&p).unwrap();
        assert_eq!(info.mined["rows"], MinedBounds { lo: Some(1), hi: Some(4) });
        assert_eq!(info.mined["cols"], MinedBounds { lo: Some(16), hi: None });
    }

    #[test]
    fn meta_chunk_bits_sums_arrays() {
        let p = parse_arc(CMS);
        let info = elaborate(&p).unwrap();
        assert_eq!(info.meta_chunk_bits("rows"), 64); // index + count
    }

    #[test]
    fn fixed_phv_counts_scalars_and_headers() {
        let p = parse_arc(CMS);
        let info = elaborate(&p).unwrap();
        assert_eq!(info.fixed_phv_bits(), 32 + 32); // meta.min + hdr.key
    }

    #[test]
    fn conflicting_roles_rejected() {
        let src = r#"
            symbolic int n;
            header h { bit<32> key; }
            struct metadata { bit<32> idx; }
            register<bit<32>>[n] r;
            control Main() { apply { for (i < n) { } } }
        "#;
        let e = elaborate(&parse_arc(src)).unwrap_err();
        assert!(e.message.contains("both"), "{e}");
    }

    #[test]
    fn unused_symbolic_rejected() {
        let src = "symbolic int ghost; assume ghost >= 1;";
        let e = elaborate(&parse_arc(src)).unwrap_err();
        assert!(e.message.contains("never used"), "{e}");
    }

    #[test]
    fn two_register_action_rejected() {
        let src = r#"
            struct metadata { bit<32> a; }
            register<bit<32>>[8] r1;
            register<bit<32>>[8] r2;
            action bad() {
                r1[0] = r2[0];
            }
        "#;
        let e = elaborate(&parse_arc(src)).unwrap_err();
        assert!(e.message.contains("only one"), "{e}");
    }

    #[test]
    fn recursive_controls_rejected() {
        // Mutual recursion requires forward references, which the parser
        // forbids; self-recursion is the reachable case.
        let src = r#"
            struct metadata { bit<32> a; }
            control c() { apply { c.apply(); } }
        "#;
        // `c.apply()` inside `c` is rejected at parse (declare-before-use),
        // so craft recursion through the AST directly.
        assert!(parse(src).is_err());
    }

    #[test]
    fn mined_bounds_flipped_comparisons() {
        let src = r#"
            symbolic int n;
            struct metadata { bit<32>[n] a; }
            assume 2 <= n && 8 >= n;
        "#;
        let p = parse_arc(src);
        let info = elaborate(&p).unwrap();
        assert_eq!(info.mined["n"], MinedBounds { lo: Some(2), hi: Some(8) });
    }

    #[test]
    fn strict_comparisons_mined() {
        let src = r#"
            symbolic int n;
            struct metadata { bit<32>[n] a; }
            assume n < 5 && n > 0;
        "#;
        let info_prog = parse_arc(src);
        let info = elaborate(&info_prog).unwrap();
        assert_eq!(info.mined["n"], MinedBounds { lo: Some(1), hi: Some(4) });
    }
}

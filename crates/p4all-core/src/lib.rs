//! # p4all-core — the P4All elastic compiler
//!
//! Implementation of the compiler from *Elastic Switch Programming with
//! P4All* (HotNets 2020). Given a P4All program (see `p4all-lang`) and a
//! PISA target specification (see `p4all-pisa`), the compiler:
//!
//! 1. **elaborates** the program, classifying symbolic values into count
//!    and size roles ([`elaborate`]);
//! 2. computes **upper bounds for loop unrolling** from the dependency
//!    structure and the target's stage/ALU budget (§4.2, [`bounds`]);
//! 3. **unrolls** to those bounds ([`ir`]) and builds the **dependency
//!    graph** with precedence and exclusion edges ([`depgraph`]);
//! 4. generates the **ILP** of Figure 10 ([`ilpgen`]) and solves it with
//!    the exact MILP solver in `p4all-ilp`;
//! 5. extracts the **layout** — concrete symbolic values, stage placement,
//!    memory allocation ([`solution`]) — and emits loop-free **concrete
//!    P4** ([`codegen`]).
//!
//! A greedy first-fit allocator ([`greedy`]) serves as the ablation
//! baseline the evaluation compares against.
//!
//! ## Example
//!
//! ```
//! use p4all_core::Compiler;
//! use p4all_pisa::presets;
//!
//! let src = r#"
//!     symbolic int rows;
//!     symbolic int cols;
//!     assume rows >= 1 && rows <= 4;
//!     optimize rows * cols;
//!     header h { bit<32> key; }
//!     struct metadata { bit<32>[rows] index; }
//!     register<bit<32>>[cols][rows] cms;
//!     action bump()[int i] {
//!         meta.index[i] = hash(hdr.key, cols);
//!         cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
//!     }
//!     control Main() { apply { for (i < rows) { bump()[i]; } } }
//! "#;
//! let c = Compiler::new(presets::paper_example()).compile(src).unwrap();
//! assert!(c.layout.symbol_values["rows"] >= 1);
//! assert!(c.layout.symbol_values["cols"] >= 1);
//! ```

pub mod bounds;
pub mod codegen;
pub mod depgraph;
pub mod elaborate;
pub mod explain;
pub mod greedy;
pub mod ilpgen;
pub mod ir;
pub mod joint;
pub mod passes;
pub mod pipeline;
pub mod solution;
pub mod verify;

pub use codegen::{loc, print_p4, ConcreteAction, ConcreteProgram, ConcreteRegister};
pub use explain::{explain_infeasible, ExplainedRow, Infeasibility};
pub use ilpgen::{DerivedBound, ResourceKind, RowProvenance};
pub use joint::{
    merge_tenants, tenant_reports, verify_joint, JointCompilation, JointSource, TenantProgram,
    TenantReport,
};
pub use passes::{CompileCtx, CompileTrace, PassRecord};
pub use pipeline::{
    evaluate_utility, Compilation, CompileError, CompileOptions, Compiler, SolveStats, Timings,
};
pub use solution::{Layout, Placement, RegisterAllocation};
pub use verify::{assumes_hold, evaluate_predicate, ilp_dominates_greedy, verify_layout};

//! Heavy-hitter ground truth for monitoring experiments (Precision-style
//! apps report the top flows; this module computes the exact answer).

use crate::packets::Trace;

/// Exact top-`k` keys by packet count, ties broken by key for determinism.
pub fn top_k(trace: &Trace, k: usize) -> Vec<(u64, u64)> {
    let mut counts: Vec<(u64, u64)> = trace.true_counts().into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(k);
    counts
}

/// Keys whose count meets `threshold`.
pub fn hitters_above(trace: &Trace, threshold: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = trace
        .true_counts()
        .into_iter()
        .filter(|&(_, c)| c >= threshold)
        .map(|(k, _)| k)
        .collect();
    keys.sort_unstable();
    keys
}

/// Precision/recall of a reported heavy-hitter set against ground truth.
pub fn precision_recall(reported: &[u64], truth: &[u64]) -> (f64, f64) {
    if reported.is_empty() {
        return (if truth.is_empty() { 1.0 } else { 0.0 }, if truth.is_empty() { 1.0 } else { 0.0 });
    }
    let truth_set: std::collections::HashSet<u64> = truth.iter().copied().collect();
    let hits = reported.iter().filter(|k| truth_set.contains(k)).count() as f64;
    let precision = hits / reported.len() as f64;
    let recall = if truth.is_empty() { 1.0 } else { hits / truth.len() as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::zipf_trace;

    #[test]
    fn top_k_orders_by_count() {
        let t = zipf_trace(100, 1.2, 20_000, 11);
        let top = top_k(&t, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let counts = t.true_counts();
        let global_max = counts.values().max().copied().unwrap();
        assert_eq!(top[0].1, global_max);
    }

    #[test]
    fn hitters_above_threshold() {
        let t = zipf_trace(100, 1.2, 20_000, 11);
        let hh = hitters_above(&t, 500);
        let counts = t.true_counts();
        for k in &hh {
            assert!(counts[k] >= 500);
        }
        for (k, c) in &counts {
            if *c >= 500 {
                assert!(hh.contains(k));
            }
        }
    }

    #[test]
    fn precision_recall_math() {
        let truth = vec![1, 2, 3, 4];
        let reported = vec![1, 2, 9];
        let (p, r) = precision_recall(&reported, &truth);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        let (p, r) = precision_recall(&[], &truth);
        assert_eq!((p, r), (0.0, 0.0));
        let (p, r) = precision_recall(&[], &[]);
        assert_eq!((p, r), (1.0, 1.0));
    }
}

//! Trace and packet types plus generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A keyed packet: the simulator hashes/matches on `key`; `value` carries
/// payload for key-value workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    pub key: u64,
    pub value: u64,
}

/// A packet trace with its key universe size.
#[derive(Debug, Clone)]
pub struct Trace {
    pub packets: Vec<Packet>,
    pub num_keys: u64,
}

impl Trace {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Exact per-key packet counts (ground truth for sketch accuracy and
    /// heavy-hitter experiments).
    pub fn true_counts(&self) -> std::collections::HashMap<u64, u64> {
        let mut m = std::collections::HashMap::new();
        for p in &self.packets {
            *m.entry(p.key).or_insert(0) += 1;
        }
        m
    }
}

/// Zipf-distributed key-request trace (the NetCache workload): `packets`
/// requests over `num_keys` keys with skew `alpha`. Keys are permuted so
/// popularity is not correlated with key value.
pub fn zipf_trace(num_keys: u64, alpha: f64, packets: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = Zipf::new(num_keys as usize, alpha);
    // Random rank -> key permutation (Fisher-Yates).
    let mut perm: Vec<u64> = (0..num_keys).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let packets = (0..packets)
        .map(|_| {
            let rank = z.sample(&mut rng);
            Packet { key: perm[rank], value: perm[rank].wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        })
        .collect();
    Trace { packets, num_keys }
}

/// Uniform key-request trace (the unskewed control).
pub fn uniform_trace(num_keys: u64, packets: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = (0..packets)
        .map(|_| {
            let key = rng.gen_range(0..num_keys);
            Packet { key, value: key.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        })
        .collect();
    Trace { packets, num_keys }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trace_is_skewed() {
        let t = zipf_trace(1_000, 1.0, 50_000, 42);
        assert_eq!(t.len(), 50_000);
        let counts = t.true_counts();
        let max = counts.values().max().copied().unwrap();
        let avg = t.len() as u64 / counts.len() as u64;
        assert!(max > avg * 5, "hottest key ({max}) should dwarf the average ({avg})");
    }

    #[test]
    fn uniform_trace_is_flat() {
        let t = uniform_trace(100, 100_000, 7);
        let counts = t.true_counts();
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(max / min < 1.6, "uniform trace spread too wide: {min}..{max}");
    }

    #[test]
    fn traces_are_deterministic_by_seed() {
        let a = zipf_trace(100, 0.9, 1000, 5);
        let b = zipf_trace(100, 0.9, 1000, 5);
        assert_eq!(a.packets, b.packets);
        let c = zipf_trace(100, 0.9, 1000, 6);
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn keys_stay_in_universe() {
        let t = zipf_trace(64, 1.2, 10_000, 3);
        assert!(t.packets.iter().all(|p| p.key < 64));
    }
}

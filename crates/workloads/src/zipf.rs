//! Zipf-distributed key sampling.
//!
//! NetCache's evaluation (and most key-value cache studies) uses Zipf
//! workloads with skew `alpha` around 0.9–1.2. This sampler precomputes the
//! CDF over `n` ranks and draws with a binary search — O(n) setup, O(log n)
//! per sample, exact distribution.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with skew `alpha` (`alpha = 0` gives the
/// uniform distribution).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew `alpha`.
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad Zipf alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has exactly one item.
    pub fn is_empty(&self) -> bool {
        false // n > 0 enforced at construction
    }

    /// Probability mass of `rank` (0-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draw a rank (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.99);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_orders_popularity() {
        let z = Zipf::new(100, 1.1);
        for r in 1..100 {
            assert!(z.pmf(r - 1) >= z.pmf(r), "pmf must be non-increasing in rank");
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Top rank should be within 5% of its expectation.
        let expect = z.pmf(0) * n as f64;
        assert!((counts[0] as f64 - expect).abs() < 0.05 * expect);
        // And hugely more popular than the tail.
        assert!(counts[0] > counts[49] * 10);
    }

    #[test]
    fn single_item_always_rank_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}

//! # p4all-workloads — synthetic traffic for evaluating compiled programs
//!
//! The paper's NetCache experiments run against skewed key-request
//! workloads; monitoring apps need flow traces with known heavy hitters.
//! This crate generates both, deterministically by seed: Zipf and uniform
//! key traces, exact ground-truth counts, and heavy-hitter scoring.

pub mod heavyhitter;
pub mod packets;
pub mod zipf;

pub use heavyhitter::{hitters_above, precision_recall, top_k};
pub use packets::{uniform_trace, zipf_trace, Packet, Trace};
pub use zipf::Zipf;

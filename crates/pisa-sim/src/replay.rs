//! Batched, sharded trace replay.
//!
//! [`Switch::run_trace`] replays a whole packet trace through the
//! pipeline at once. With one thread it runs in place (honoring the
//! selected backend); with `threads > 1` it shards the trace by **flow
//! hash** over the header fields — mirroring how a real switch's CRC
//! partitions flows across pipes — and executes the shards on worker
//! threads with private copies of the register file.
//!
//! Sharding is one fused linear sweep: each packet is flow-hashed to its
//! shard and its slot vector copied into the shard's **contiguous input
//! buffer**. Workers then stream their buffers with unit stride — no
//! per-packet pointer chasing through the (heap-scattered) `Phv` list,
//! which previously cost a cache miss per packet and erased the parallel
//! win. Shards are executed on at most `available_parallelism` OS threads
//! (static shard → thread assignment), so an oversubscribed `threads`
//! request degrades to sequential shard execution instead of thrashing
//! one core's cache with N register-file copies. One private register
//! file per OS thread is enough for the merge below: every packet of a
//! flow lands in one shard, and every shard runs on exactly one thread.
//! With a single OS thread the whole partition collapses to in-order
//! sequential replay (one register file holds every flow), skipping the
//! hash-and-gather sweep entirely.
//!
//! Merging after the join is the delta-sum rule: for every register cell,
//! `merged = base + Σ_w (worker_w − base)` (wrapping, element-masked).
//! This is exact for the two state classes elastic data planes use:
//!
//! - **mergeable counters** (count-min rows, Bloom/counting-Bloom cells):
//!   every update is an increment, and increments commute — the summed
//!   deltas equal the sequential count;
//! - **per-flow state** (key/value slots, per-flow trackers): the cell
//!   index derives from the flow key, every packet of a flow lands in the
//!   same shard, so at most one worker has a nonzero delta.
//!
//! A per-packet fault (division by zero, out-of-bounds index) drops just
//! that packet: its register writes are rolled back from the undo log and
//! [`SimStats::dropped`] counts it — the trace keeps going, as a real
//! pipeline would keep forwarding.

use std::time::{Duration, Instant};

use crate::compiled::{self, ExecCtx};
use crate::interp::{splitmix, RegUndo, Switch};
use crate::state::{Phv, RegState};


/// Telemetry of one [`Switch::run_trace`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Packets offered (processed + dropped).
    pub packets: u64,
    /// Packets dropped on a per-packet fault, with their writes undone.
    pub dropped: u64,
    /// Shards requested (executed on at most `available_parallelism`
    /// OS threads; the merged result is identical either way).
    pub threads: usize,
    /// Wall-clock of the replay (excludes trace construction).
    pub elapsed: Duration,
    /// Instructions (bytecode) / statements (interpreter) executed per
    /// stage, summed over all packets and workers: where the pipeline's
    /// cost concentrates.
    pub stage_cost: Vec<u64>,
}

impl SimStats {
    /// Packets per second of wall-clock.
    pub fn pkts_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }

    /// Total per-stage cost (all stages).
    pub fn total_cost(&self) -> u64 {
        self.stage_cost.iter().sum()
    }
}

/// One replay worker: a private register file plus all per-packet scratch.
struct Worker<'a> {
    prog: &'a compiled::CompiledProgram,
    ctables: &'a [compiled::CompiledTableState],
    regs: Vec<RegState>,
    cur: Phv,
    ctx: ExecCtx,
    undo: Vec<RegUndo>,
    stage_cost: Vec<u64>,
    dropped: u64,
}

impl Worker<'_> {
    /// Execute one packet given its input slot vector.
    #[inline]
    fn step(&mut self, slots: &[u64]) {
        self.cur.slots.copy_from_slice(slots);
        self.undo.clear();
        let r = compiled::run_packet(
            self.prog,
            self.ctables,
            &mut self.regs,
            &mut self.cur,
            &mut self.ctx,
            &mut self.undo,
            &mut self.stage_cost,
        );
        if r.is_err() {
            while let Some((reg, cell, old)) = self.undo.pop() {
                self.regs[reg as usize].cells[cell as usize] = old;
            }
            self.dropped += 1;
        }
    }

    /// Run one shard's gathered inputs: `inputs` holds the packets'
    /// slot vectors back to back, `stride` slots per packet.
    fn run_packed(&mut self, inputs: &[u64], stride: usize) {
        for slots in inputs.chunks_exact(stride) {
            self.step(slots);
        }
    }

    /// Run the whole trace in order (the one-OS-thread degenerate case:
    /// no hashing or gathering — any shard partition executed on a
    /// single register file in trace order is exactly sequential replay).
    fn run_seq(&mut self, trace: &[Phv]) {
        for p in trace {
            self.step(&p.slots);
        }
    }
}

impl Switch {
    /// Replay `trace` (inputs built with [`Switch::make_packet`]) and
    /// return throughput + drop + per-stage-cost telemetry. `threads = 0`
    /// uses every available core; `threads = 1` runs in place with the
    /// selected backend; `threads > 1` always runs the bytecode engine
    /// (the interpreter exists as the single-threaded oracle).
    ///
    /// Register state after the call reflects the whole trace (sharded
    /// runs are merged by the delta-sum rule — see the module docs for
    /// when that is exact). The working PHV afterwards is the final PHV
    /// of whichever packet ran last, so per-packet PHV observations only
    /// make sense single-threaded.
    pub fn run_trace(&mut self, trace: &[Phv], threads: usize) -> SimStats {
        let threads = match threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let threads = threads.min(trace.len()).max(1);
        self.stage_cost.iter_mut().for_each(|c| *c = 0);
        let start = Instant::now();

        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut dropped = 0u64;
        if threads == 1 || self.masks.is_empty() {
            for input in trace {
                self.cur.slots.copy_from_slice(&input.slots);
                // `run_packet` rolls the faulting packet's register
                // writes back before returning the error.
                if self.run_packet().is_err() {
                    dropped += 1;
                }
            }
        } else {
            // Never oversubscribe the machine: extra shards run
            // sequentially on the available cores (same merged result,
            // no cache thrash).
            dropped = self.run_trace_sharded(trace, threads, threads.min(cores).max(1));
        }

        SimStats {
            packets: trace.len() as u64,
            dropped,
            threads,
            elapsed: start.elapsed(),
            stage_cost: self.stage_cost.clone(),
        }
    }

    fn run_trace_sharded(&mut self, trace: &[Phv], shards: usize, os_threads: usize) -> u64 {
        let header_count = self.header_count;
        let stride = self.masks.len();
        let base = self.registers.clone();
        let prog = &self.compiled;
        let ctables = &self.ctables;
        let masks = &self.masks;
        let stages = self.stage_cost.len();

        let workers: Vec<Worker> = if os_threads == 1 {
            // One OS thread executes every shard on one register file, so
            // the shard partition is irrelevant: run the trace in order
            // with no hashing or gathering. The delta-sum merge below is
            // still exact (one worker holds every flow's state).
            let mut worker = Worker {
                prog,
                ctables,
                regs: base.clone(),
                cur: Phv::new(masks.clone()),
                ctx: ExecCtx::for_program(prog),
                undo: Vec::new(),
                stage_cost: vec![0; stages],
                dropped: 0,
            };
            worker.run_seq(trace);
            vec![worker]
        } else {
            // One fused sweep: flow-hash each packet over the header
            // slots (the first `header_count` slots of the layout) and
            // gather its slot vector into the shard's contiguous input
            // buffer, in trace order (per-flow packet order preserved;
            // every packet of a flow lands in the same shard, so
            // per-flow register state is shard-private by construction).
            // Workers then stream their buffers with unit stride instead
            // of chasing `trace[i]` pointers per packet.
            let per_shard = (trace.len() / shards + trace.len() / (4 * shards) + 16) * stride;
            let mut packed: Vec<Vec<u64>> =
                (0..shards).map(|_| Vec::with_capacity(per_shard)).collect();
            for p in trace {
                let mut h = 0xa076_1d64_78bd_642fu64;
                for &v in &p.slots[..header_count] {
                    h = splitmix(h ^ v);
                }
                packed[(h % shards as u64) as usize].extend_from_slice(&p.slots);
            }

            let (base_ref, packed_ref) = (&base, &packed);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..os_threads)
                    .map(|w| {
                        scope.spawn(move || {
                            // Build the worker on its own thread so the
                            // register copy and scratch are allocated
                            // (and first-touched) thread-locally.
                            let mut worker = Worker {
                                prog,
                                ctables,
                                regs: base_ref.clone(),
                                cur: Phv::new(masks.clone()),
                                ctx: ExecCtx::for_program(prog),
                                undo: Vec::new(),
                                stage_cost: vec![0; stages],
                                dropped: 0,
                            };
                            for s in (w..shards).step_by(os_threads) {
                                worker.run_packed(&packed_ref[s], stride);
                            }
                            worker
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("replay worker panicked"))
                    .collect()
            })
        };

        // Delta-sum merge back into the live register file.
        for (ri, reg) in self.registers.iter_mut().enumerate() {
            for (ci, cell) in reg.cells.iter_mut().enumerate() {
                let b = base[ri].cells[ci];
                let mut v = b;
                for w in &workers {
                    v = v.wrapping_add(w.regs[ri].cells[ci].wrapping_sub(b));
                }
                *cell = v & reg.elem_mask;
            }
        }

        let mut dropped = 0;
        for w in workers {
            dropped += w.dropped;
            for (s, c) in w.stage_cost.iter().enumerate() {
                self.stage_cost[s] += c;
            }
            // Expose *some* final PHV so post-trace metadata reads don't
            // see stale single-thread state.
            self.cur.slots.copy_from_slice(&w.cur.slots);
        }
        dropped
    }

    /// Accumulated per-stage execution cost since the last `run_trace`
    /// reset (also grows across plain `run_packet` calls).
    pub fn stage_cost(&self) -> &[u64] {
        &self.stage_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Backend, SimError};
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    fn build(src: &str) -> Switch {
        let c = Compiler::new(presets::paper_eval(1 << 14)).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        Switch::build(&c.concrete, &program).unwrap()
    }

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 2 && rows <= 2;
        assume cols >= 16 && cols <= 16;
        optimize rows * cols;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[rows] index; bit<32>[rows] count; bit<32> min; }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control sketch() { apply { for (i < rows) { incr()[i]; } } }
        control minimum() {
            apply {
                for (i < rows) {
                    if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
                }
            }
        }
        control Main() { apply { sketch.apply(); minimum.apply(); } }
    "#;

    /// Two independent registers: `a` counts every packet, `b[hdr.i]`
    /// faults when `i` is out of bounds — the faulting packet's increment
    /// of `a` must be rolled back.
    const FAULTY_IDX: &str = r#"
        header h { bit<32> x; bit<32> i; }
        struct metadata { bit<32> t; }
        register<bit<32>>[4] a;
        register<bit<32>>[4] b;
        action first() { a[0] = a[0] + 1; meta.t = a[0]; }
        action second() { b[hdr.i] = hdr.x; }
        control Main() { apply { first(); second(); } }
    "#;

    /// `q = x / y` faults on y == 0, after `a` was bumped.
    const FAULTY_DIV: &str = r#"
        header h { bit<32> x; bit<32> y; }
        struct metadata { bit<32> q; }
        register<bit<32>>[4] a;
        action tally() { a[0] = a[0] + 1; }
        action divide() { meta.q = hdr.x / hdr.y; }
        control Main() { apply { tally(); divide(); } }
    "#;

    fn cms_trace(sw: &Switch, n: u64) -> Vec<Phv> {
        (0..n).map(|k| sw.make_packet(&[("key", k % 7)]).unwrap()).collect()
    }

    #[test]
    fn run_trace_matches_per_packet_execution() {
        let mut a = build(CMS);
        a.set_backend(Backend::Interp);
        for k in 0..50u64 {
            a.begin_packet();
            a.set_header("key", k % 7).unwrap();
            a.run_packet().unwrap();
        }
        let mut b = build(CMS);
        let trace = cms_trace(&b, 50);
        let stats = b.run_trace(&trace, 1);
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.dropped, 0);
        assert_eq!(a.registers_snapshot(), b.registers_snapshot());
        assert_eq!(a.phv_snapshot(), b.phv_snapshot());
    }

    #[test]
    fn sharded_replay_merges_sketch_counters_exactly() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        for threads in [2, 4, 8] {
            let mut par = build(CMS);
            let trace = cms_trace(&par, 400);
            let stats = par.run_trace(&trace, threads);
            assert_eq!(stats.threads, threads);
            assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "merged counters diverge at {threads} threads"
            );
        }
    }

    /// The gather + multi-worker merge path, pinned to several OS threads
    /// regardless of the host's core count (on a small box `run_trace`
    /// legitimately collapses to the sequential worker, which would leave
    /// this machinery untested).
    #[test]
    fn oversharded_gather_and_merge_match_sequential() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        for (shards, os_threads) in [(4, 2), (8, 4), (8, 8)] {
            let mut par = build(CMS);
            let trace = cms_trace(&par, 400);
            let dropped = par.run_trace_sharded(&trace, shards, os_threads);
            assert_eq!(dropped, 0);
            assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "merged counters diverge at {shards} shards on {os_threads} threads"
            );
        }
    }

    #[test]
    fn stats_report_stage_cost_and_rate() {
        let mut sw = build(CMS);
        let trace = cms_trace(&sw, 100);
        let stats = sw.run_trace(&trace, 1);
        assert_eq!(stats.stage_cost.len(), sw.stage_count());
        assert!(stats.total_cost() > 0, "cost telemetry must be populated");
        assert!(stats.pkts_per_sec() > 0.0);
    }

    #[test]
    fn out_of_bounds_packet_drops_and_rolls_back_mid_trace() {
        for backend in [Backend::Interp, Backend::Compiled] {
            let mut sw = build(FAULTY_IDX);
            sw.set_backend(backend);
            let mut trace = Vec::new();
            for p in 0..10u64 {
                // Packet 5 indexes b[9] — out of bounds (len 4).
                let i = if p == 5 { 9 } else { p % 4 };
                trace.push(sw.make_packet(&[("x", p), ("i", i)]).unwrap());
            }
            let stats = sw.run_trace(&trace, 1);
            assert_eq!(stats.dropped, 1, "{backend:?}");
            assert_eq!(stats.packets, 10);
            // 10 packets, 1 dropped: its increment of a[0] was undone.
            assert_eq!(sw.read_register("a", 0, 0).unwrap(), 9, "{backend:?}");
        }
    }

    #[test]
    fn div_by_zero_packet_drops_and_rolls_back_mid_trace() {
        for backend in [Backend::Interp, Backend::Compiled] {
            let mut sw = build(FAULTY_DIV);
            sw.set_backend(backend);
            let trace: Vec<Phv> = (0..20u64)
                .map(|p| {
                    let y = if p % 10 == 3 { 0 } else { 2 }; // packets 3, 13 fault
                    sw.make_packet(&[("x", 100 + p), ("y", y)]).unwrap()
                })
                .collect();
            let stats = sw.run_trace(&trace, 1);
            assert_eq!(stats.dropped, 2, "{backend:?}");
            assert_eq!(sw.read_register("a", 0, 0).unwrap(), 18, "{backend:?}");
        }
    }

    #[test]
    fn run_packet_surfaces_error_but_leaves_state_clean() {
        let mut sw = build(FAULTY_DIV);
        sw.begin_packet();
        sw.set_header("x", 4).unwrap();
        sw.set_header("y", 2).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 1);
        sw.begin_packet();
        sw.set_header("x", 4).unwrap();
        sw.set_header("y", 0).unwrap();
        let err = sw.run_packet().unwrap_err();
        assert_eq!(err, SimError::DivByZero);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 1, "faulting write must roll back");
    }

    #[test]
    fn sharded_replay_counts_drops() {
        let mut sw = build(FAULTY_DIV);
        let trace: Vec<Phv> = (0..64u64)
            .map(|p| sw.make_packet(&[("x", p), ("y", p % 4)]).unwrap())
            .collect();
        let stats = sw.run_trace(&trace, 4);
        assert_eq!(stats.dropped, 16);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 48);

        // Same trace through the pinned multi-worker gather path: drops
        // and rollbacks must merge identically.
        let mut sw = build(FAULTY_DIV);
        let trace: Vec<Phv> = (0..64u64)
            .map(|p| sw.make_packet(&[("x", p), ("y", p % 4)]).unwrap())
            .collect();
        assert_eq!(sw.run_trace_sharded(&trace, 4, 4), 16);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 48);
    }
}

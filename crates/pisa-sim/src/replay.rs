//! Batched, sharded trace replay.
//!
//! [`Switch::run_trace`] replays a whole packet trace through the
//! pipeline at once. With one thread it runs in place (honoring the
//! selected backend); with `threads > 1` it shards the trace by **flow
//! hash** over the header fields — mirroring how a real switch's CRC
//! partitions flows across pipes — and executes the shards on worker
//! threads with private copies of the register file. The shard count is
//! capped at `available_parallelism`: oversubscription buys nothing (the
//! extra gather and merge work used to cost ~2% versus sequential on a
//! small box), so an oversubscribed request degrades to the capped
//! configuration instead of below the sequential path.
//!
//! **SoA batches** ([`Switch::set_batch_width`]): when a batch width is
//! requested and the program admits it (see
//! `compiled::analyze_batch_safety`), the bytecode engine gathers
//! packets into column-major structure-of-arrays batches and runs each
//! instruction over all lanes before the next dispatch — one tight
//! stride-1 loop per instruction instead of one full dispatch loop per
//! packet. Batched replay is bit-identical to scalar replay (enforced by
//! `tests/batch_equivalence.rs` and the fuzz oracle); a lane fault rolls
//! the whole batch back and replays it scalar, so per-packet drop and
//! rollback semantics are preserved exactly. The native backend instead
//! uses its batched FFI entry point (`p4n_run_batch`), amortizing the
//! per-packet call and fault-word traffic.
//!
//! The sharded front end is **pipelined**: the main thread flow-hashes
//! and gathers chunk `k + 1` into contiguous per-worker segments while
//! the workers execute chunk `k` (bounded channels provide the
//! backpressure). Each packet is flow-hashed to its shard and its slot
//! vector copied into the owning worker's segment in trace order, so
//! per-flow packet order is preserved; every packet of a flow lands in
//! one shard, and every shard belongs to exactly one worker, so per-flow
//! register state stays worker-private by construction. Workers stream
//! contiguous segments with unit stride — no per-packet pointer chasing
//! through the heap-scattered `Phv` list.
//!
//! Merging is **lock-free delta publication**: there is no join barrier.
//! Each worker, as it finishes, publishes its register deltas
//! (`worker − base`, wrapping), drop count, stage costs and final PHV
//! through an atomic slot, and the main thread consumes and folds each
//! publication as it lands — a fast worker's delta is merged while slow
//! workers are still executing. The folded result is the delta-sum rule:
//! for every register cell, `merged = base + Σ_w (worker_w − base)`
//! (wrapping, element-masked), exact for the two state classes elastic
//! data planes use:
//!
//! - **mergeable counters** (count-min rows, Bloom/counting-Bloom cells):
//!   every update is an increment, and increments commute — the summed
//!   deltas equal the sequential count;
//! - **per-flow state** (key/value slots, per-flow trackers): the cell
//!   index derives from the flow key, every packet of a flow lands in the
//!   same shard, so at most one worker has a nonzero delta.
//!
//! A per-packet fault (division by zero, out-of-bounds index) drops just
//! that packet: its register writes are rolled back from the undo log and
//! [`SimStats::dropped`] counts it — the trace keeps going, as a real
//! pipeline would keep forwarding.

use std::time::{Duration, Instant};

use crate::compiled::{self, BatchCtx, ExecCtx};
use crate::interp::{splitmix, Backend, RegUndo, Switch};
use crate::state::{gather_lane, scatter_lane, Phv, RegState};

/// Packets hashed and gathered per pipeline step of the sharded front
/// end: small enough that the gather of chunk `k + 1` overlaps the
/// execution of chunk `k`, large enough to amortize the channel hop.
const PIPELINE_CHUNK: usize = 4096;

/// Telemetry of one [`Switch::run_trace`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Packets offered (processed + dropped).
    pub packets: u64,
    /// Packets dropped on a per-packet fault, with their writes undone.
    pub dropped: u64,
    /// Shards executed (the request is capped at `available_parallelism`
    /// and the trace length; the merged result is identical either way).
    pub threads: usize,
    /// SoA batch width the replay actually executed with: `0` means the
    /// scalar per-packet loop ran — either no width was requested
    /// ([`Switch::set_batch_width`]) or the program's register access
    /// pattern forced the scalar fallback.
    pub batch_width: usize,
    /// Fraction of the replay workers' wall-clock spent executing
    /// packets (versus waiting on the pipelined gather front end),
    /// averaged over workers. `1.0` for single-threaded replay.
    pub overlap_occupancy: f64,
    /// Wall-clock of the replay (excludes trace construction).
    pub elapsed: Duration,
    /// Instructions (bytecode) / statements (interpreter) executed per
    /// stage, summed over all packets and workers: where the pipeline's
    /// cost concentrates.
    pub stage_cost: Vec<u64>,
}

impl SimStats {
    /// Packets per second of wall-clock.
    pub fn pkts_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }

    /// Total per-stage cost (all stages).
    pub fn total_cost(&self) -> u64 {
        self.stage_cost.iter().sum()
    }
}

/// What one sharded-replay worker publishes when it finishes — everything
/// the merge needs, so the main thread consumes results as they land
/// instead of waiting on a join barrier.
struct ShardDelta {
    /// Per register, per cell: `worker − base` (wrapping).
    deltas: Vec<Vec<u64>>,
    dropped: u64,
    stage_cost: Vec<u64>,
    final_phv: Vec<u64>,
    /// Time spent executing packets (vs waiting on the front end).
    busy: Duration,
    /// Worker lifetime, spawn to publish.
    wall: Duration,
}

/// One replay worker: a private register file plus all per-packet scratch.
struct Worker<'a> {
    prog: &'a compiled::CompiledProgram,
    ctables: &'a [compiled::CompiledTableState],
    regs: Vec<RegState>,
    cur: Phv,
    ctx: ExecCtx,
    bctx: BatchCtx,
    /// Effective SoA batch width (`>= 2` selects the batched path).
    width: usize,
    undo: Vec<RegUndo>,
    stage_cost: Vec<u64>,
    dropped: u64,
}

impl<'a> Worker<'a> {
    fn new(
        prog: &'a compiled::CompiledProgram,
        ctables: &'a [compiled::CompiledTableState],
        base: &[RegState],
        masks: &[u64],
        stages: usize,
        width: usize,
    ) -> Worker<'a> {
        Worker {
            prog,
            ctables,
            regs: base.to_vec(),
            cur: Phv::new(masks.to_vec()),
            ctx: ExecCtx::for_program(prog),
            bctx: BatchCtx::default(),
            width,
            undo: Vec::new(),
            stage_cost: vec![0; stages],
            dropped: 0,
        }
    }

    /// Execute one packet given its input slot vector.
    #[inline]
    fn step(&mut self, slots: &[u64]) {
        self.cur.slots.copy_from_slice(slots);
        self.undo.clear();
        let r = compiled::run_packet(
            self.prog,
            self.ctables,
            &mut self.regs,
            &mut self.cur,
            &mut self.ctx,
            &mut self.undo,
            &mut self.stage_cost,
        );
        if r.is_err() {
            while let Some((reg, cell, old)) = self.undo.pop() {
                self.regs[reg as usize].cells[cell as usize] = old;
            }
            self.dropped += 1;
        }
    }

    /// Run one gathered segment: `inputs` holds the packets' slot vectors
    /// back to back, `stride` slots per packet.
    fn run_packed(&mut self, inputs: &[u64], stride: usize) {
        if self.width >= 2 && stride > 0 {
            let rows = inputs.len() / stride;
            let mut row = 0;
            while row < rows {
                let n = self.width.min(rows - row);
                self.run_batch_rows(&inputs[row * stride..(row + n) * stride], stride, n);
                row += n;
            }
        } else {
            for slots in inputs.chunks_exact(stride) {
                self.step(slots);
            }
        }
    }

    /// One SoA batch of `n` packets stored back to back in `rows`.
    fn run_batch_rows(&mut self, rows: &[u64], stride: usize, n: usize) {
        self.bctx.prepare(self.prog, stride, n);
        for (lane, slots) in rows.chunks_exact(stride).enumerate() {
            scatter_lane(&mut self.bctx.slots, n, lane, slots);
        }
        let ok = compiled::run_batch(
            self.prog,
            self.ctables,
            &mut self.regs,
            &self.cur.masks,
            n,
            &mut self.bctx,
            &mut self.undo,
            &mut self.stage_cost,
        );
        match ok {
            Ok(()) => gather_lane(&self.bctx.slots, n, n - 1, &mut self.cur.slots),
            // Some lane faulted. The batch's register writes are already
            // rolled back; replay the packets through the scalar path for
            // exact per-packet drop/rollback/cost semantics.
            Err(()) => {
                for slots in rows.chunks_exact(stride) {
                    self.step(slots);
                }
            }
        }
    }

    /// Run the whole trace in order (the one-OS-thread degenerate case:
    /// no hashing or gathering — any shard partition executed on a
    /// single register file in trace order is exactly sequential replay).
    fn run_seq(&mut self, trace: &[Phv]) {
        if self.width >= 2 {
            let stride = self.cur.masks.len();
            let mut i = 0;
            while i < trace.len() {
                let n = self.width.min(trace.len() - i);
                let chunk = &trace[i..i + n];
                self.bctx.prepare(self.prog, stride, n);
                for (lane, p) in chunk.iter().enumerate() {
                    scatter_lane(&mut self.bctx.slots, n, lane, &p.slots);
                }
                let ok = compiled::run_batch(
                    self.prog,
                    self.ctables,
                    &mut self.regs,
                    &self.cur.masks,
                    n,
                    &mut self.bctx,
                    &mut self.undo,
                    &mut self.stage_cost,
                );
                match ok {
                    Ok(()) => gather_lane(&self.bctx.slots, n, n - 1, &mut self.cur.slots),
                    Err(()) => {
                        for p in chunk {
                            self.step(&p.slots);
                        }
                    }
                }
                i += n;
            }
        } else {
            for p in trace {
                self.step(&p.slots);
            }
        }
    }
}

impl Switch {
    /// The batch width the bytecode engine will actually execute with:
    /// the requested width when the program's register access pattern
    /// admits instruction-major batching, else `0` (scalar fallback).
    fn effective_batch_width(&self) -> usize {
        if self.batch_width >= 2 && self.compiled.batch_safe && !self.masks.is_empty() {
            self.batch_width
        } else {
            0
        }
    }

    /// Replay `trace` (inputs built with [`Switch::make_packet`]) and
    /// return throughput + drop + per-stage-cost telemetry. `threads = 0`
    /// uses every available core; `threads = 1` runs in place with the
    /// selected backend; `threads > 1` always runs the bytecode engine
    /// (the interpreter exists as the single-threaded oracle). Requests
    /// beyond `available_parallelism` are capped — oversubscription never
    /// degrades replay below the sequential path.
    ///
    /// Register state after the call reflects the whole trace (sharded
    /// runs are merged by the delta-sum rule — see the module docs for
    /// when that is exact). The working PHV afterwards is the final PHV
    /// of whichever packet ran last, so per-packet PHV observations only
    /// make sense single-threaded.
    pub fn run_trace(&mut self, trace: &[Phv], threads: usize) -> SimStats {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let threads = match threads {
            0 => cores,
            n => n,
        };
        // Never oversubscribe the machine: more shards than cores buys
        // nothing (same merged result) and the extra gather + merge work
        // used to cost ~2% versus the sequential path.
        let threads = threads.min(cores).min(trace.len()).max(1);
        self.stage_cost.iter_mut().for_each(|c| *c = 0);
        let start = Instant::now();

        let mut dropped = 0u64;
        let mut used_width = 0usize;
        let mut occupancy = 1.0f64;
        if threads == 1 || self.masks.is_empty() {
            let width = match self.backend {
                // The native engine's batched FFI entry is scalar inside;
                // it needs no batch-safety analysis.
                Backend::Native if self.batch_width >= 2 => self.batch_width,
                Backend::Compiled => self.effective_batch_width(),
                _ => 0,
            };
            let mut scalar = true;
            if width >= 2 {
                match self.backend {
                    Backend::Native => {
                        if let Some(d) = self.run_trace_native_batched(trace, width) {
                            dropped = d;
                            used_width = width;
                            scalar = false;
                        }
                    }
                    Backend::Compiled => {
                        dropped = self.run_trace_batched(trace, width);
                        used_width = width;
                        scalar = false;
                    }
                    _ => {}
                }
            }
            if scalar {
                for input in trace {
                    self.cur.slots.copy_from_slice(&input.slots);
                    // `run_packet` rolls the faulting packet's register
                    // writes back before returning the error.
                    if self.run_packet().is_err() {
                        dropped += 1;
                    }
                }
            }
        } else {
            used_width = self.effective_batch_width();
            let (d, occ) = self.run_trace_sharded(trace, threads, threads);
            dropped = d;
            occupancy = occ;
        }

        SimStats {
            packets: trace.len() as u64,
            dropped,
            threads,
            batch_width: used_width,
            overlap_occupancy: occupancy,
            elapsed: start.elapsed(),
            stage_cost: self.stage_cost.clone(),
        }
    }

    /// Single-thread SoA batch replay against the live register file.
    fn run_trace_batched(&mut self, trace: &[Phv], width: usize) -> u64 {
        let stride = self.masks.len();
        let mut bctx = BatchCtx::default();
        let mut dropped = 0u64;
        let mut i = 0;
        while i < trace.len() {
            let n = width.min(trace.len() - i);
            let chunk = &trace[i..i + n];
            bctx.prepare(&self.compiled, stride, n);
            for (lane, p) in chunk.iter().enumerate() {
                scatter_lane(&mut bctx.slots, n, lane, &p.slots);
            }
            let ok = compiled::run_batch(
                &self.compiled,
                &self.ctables,
                &mut self.registers,
                &self.masks,
                n,
                &mut bctx,
                &mut self.undo,
                &mut self.stage_cost,
            );
            match ok {
                Ok(()) => gather_lane(&bctx.slots, n, n - 1, &mut self.cur.slots),
                // A lane faulted: the batch is rolled back; replay its
                // packets scalar for exact per-packet drop semantics.
                Err(()) => {
                    for p in chunk {
                        self.cur.slots.copy_from_slice(&p.slots);
                        if self.run_packet().is_err() {
                            dropped += 1;
                        }
                    }
                }
            }
            i += n;
        }
        dropped
    }

    /// Sharded replay: pipelined hash + gather on the main thread,
    /// execution on `os_threads` workers, lock-free delta publication
    /// for the merge. Returns `(dropped, overlap occupancy)`.
    fn run_trace_sharded(&mut self, trace: &[Phv], shards: usize, os_threads: usize) -> (u64, f64) {
        use std::sync::atomic::{AtomicPtr, Ordering};
        use std::sync::mpsc;

        let header_count = self.header_count;
        let stride = self.masks.len();
        let base = self.registers.clone();
        let prog = &self.compiled;
        let ctables = &self.ctables;
        let masks = &self.masks;
        let stages = self.stage_cost.len();
        let width = if self.batch_width >= 2 && prog.batch_safe { self.batch_width } else { 0 };
        let registers = &mut self.registers;
        let stage_cost = &mut self.stage_cost;
        let final_phv = &mut self.cur;

        if os_threads == 1 {
            // One OS thread executes every shard on one register file, so
            // the shard partition is irrelevant: run the trace in order
            // with no hashing or gathering. The delta-sum merge below is
            // still exact (one worker holds every flow's state).
            let mut worker = Worker::new(prog, ctables, &base, masks, stages, width);
            worker.run_seq(trace);
            for (ri, reg) in registers.iter_mut().enumerate() {
                for (ci, cell) in reg.cells.iter_mut().enumerate() {
                    *cell = worker.regs[ri].cells[ci];
                }
            }
            for (s, c) in worker.stage_cost.iter().enumerate() {
                stage_cost[s] += c;
            }
            final_phv.slots.copy_from_slice(&worker.cur.slots);
            return (worker.dropped, 1.0);
        }

        // Per-worker publication slots for the lock-free merge.
        let publish: Vec<AtomicPtr<ShardDelta>> =
            (0..os_threads).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        let base_ref = &base;
        let publish_ref = &publish;

        let mut dropped = 0u64;
        let mut occ_sum = 0.0f64;
        std::thread::scope(|scope| {
            // Bounded channels give the pipeline its backpressure: the
            // main thread gathers at most a couple of chunks ahead of the
            // slowest worker.
            let mut senders = Vec::with_capacity(os_threads);
            let mut handles = Vec::with_capacity(os_threads);
            for slot in publish_ref.iter() {
                let (tx, rx) = mpsc::sync_channel::<Vec<u64>>(2);
                senders.push(tx);
                handles.push(Some(scope.spawn(move || {
                    // Build the worker on its own thread so the register
                    // copy and scratch are allocated (and first-touched)
                    // thread-locally.
                    let spawned = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut worker = Worker::new(prog, ctables, base_ref, masks, stages, width);
                    while let Ok(seg) = rx.recv() {
                        let t = Instant::now();
                        worker.run_packed(&seg, stride);
                        busy += t.elapsed();
                    }
                    let delta = ShardDelta {
                        deltas: worker
                            .regs
                            .iter()
                            .enumerate()
                            .map(|(ri, r)| {
                                r.cells
                                    .iter()
                                    .zip(&base_ref[ri].cells)
                                    .map(|(wv, bv)| wv.wrapping_sub(*bv))
                                    .collect()
                            })
                            .collect(),
                        dropped: worker.dropped,
                        stage_cost: worker.stage_cost,
                        final_phv: worker.cur.slots,
                        busy,
                        wall: spawned.elapsed(),
                    };
                    // Publish with Release so the merge's Acquire swap
                    // sees the fully-built delta.
                    slot.store(Box::into_raw(Box::new(delta)), Ordering::Release);
                })));
            }

            // Pipelined front end: flow-hash and gather chunk k + 1 into
            // contiguous per-worker segments while the workers execute
            // chunk k. Packets append in trace order, so per-flow order
            // is preserved inside each worker.
            for chunk in trace.chunks(PIPELINE_CHUNK) {
                let per_worker =
                    (chunk.len() / os_threads + chunk.len() / (4 * os_threads) + 16) * stride;
                let mut segs: Vec<Vec<u64>> =
                    (0..os_threads).map(|_| Vec::with_capacity(per_worker)).collect();
                for p in chunk {
                    let mut h = 0xa076_1d64_78bd_642fu64;
                    for &v in &p.slots[..header_count] {
                        h = splitmix(h ^ v);
                    }
                    let shard = (h % shards as u64) as usize;
                    segs[shard % os_threads].extend_from_slice(&p.slots);
                }
                for (w, seg) in segs.into_iter().enumerate() {
                    if !seg.is_empty() {
                        senders[w].send(seg).expect("replay worker hung up");
                    }
                }
            }
            drop(senders); // close the channels: workers drain and publish

            // Lock-free merge: consume each worker's delta as it lands —
            // no join barrier, a fast worker's state folds in while slow
            // workers are still executing.
            let mut pending: Vec<usize> = (0..os_threads).collect();
            while !pending.is_empty() {
                pending.retain(|&w| {
                    let mut p = publish_ref[w].swap(std::ptr::null_mut(), Ordering::Acquire);
                    if p.is_null() {
                        let finished =
                            handles[w].as_ref().map(|h| h.is_finished()).unwrap_or(false);
                        if !finished {
                            return true; // still executing
                        }
                        // The worker exited: surface its panic, or pick
                        // up the publication that exit ordered before us.
                        handles[w].take().unwrap().join().expect("replay worker panicked");
                        p = publish_ref[w].swap(std::ptr::null_mut(), Ordering::Acquire);
                        assert!(!p.is_null(), "worker exited without publishing");
                    }
                    // SAFETY: the pointer came from `Box::into_raw` in
                    // exactly one worker and was swapped out exactly once.
                    let d = unsafe { Box::from_raw(p) };
                    for (ri, cells) in d.deltas.iter().enumerate() {
                        let reg = &mut registers[ri];
                        for (ci, delta) in cells.iter().enumerate() {
                            reg.cells[ci] =
                                reg.cells[ci].wrapping_add(*delta) & reg.elem_mask;
                        }
                    }
                    dropped += d.dropped;
                    for (s, c) in d.stage_cost.iter().enumerate() {
                        stage_cost[s] += c;
                    }
                    // Expose *some* final PHV so post-trace metadata
                    // reads don't see stale single-thread state.
                    final_phv.slots.copy_from_slice(&d.final_phv);
                    occ_sum += if d.wall > Duration::ZERO {
                        (d.busy.as_secs_f64() / d.wall.as_secs_f64()).min(1.0)
                    } else {
                        1.0
                    };
                    false
                });
                if !pending.is_empty() {
                    std::thread::yield_now();
                }
            }
        });

        (dropped, occ_sum / os_threads as f64)
    }

    /// Accumulated per-stage execution cost since the last `run_trace`
    /// reset (also grows across plain `run_packet` calls).
    pub fn stage_cost(&self) -> &[u64] {
        &self.stage_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Backend, SimError};
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    fn build(src: &str) -> Switch {
        let c = Compiler::new(presets::paper_eval(1 << 14)).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        Switch::build(&c.concrete, &program).unwrap()
    }

    fn cores() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 2 && rows <= 2;
        assume cols >= 16 && cols <= 16;
        optimize rows * cols;
        header pkt { bit<32> key; }
        struct metadata { bit<32>[rows] index; bit<32>[rows] count; bit<32> min; }
        register<bit<32>>[cols][rows] cms;
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.min = meta.count[i]; }
        control sketch() { apply { for (i < rows) { incr()[i]; } } }
        control minimum() {
            apply {
                for (i < rows) {
                    if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
                }
            }
        }
        control Main() { apply { sketch.apply(); minimum.apply(); } }
    "#;

    /// Two independent registers: `a` counts every packet, `b[hdr.i]`
    /// faults when `i` is out of bounds — the faulting packet's increment
    /// of `a` must be rolled back. Also batch-*unsafe*: `a` is written by
    /// one statement and read back by another, so instruction-major
    /// execution would interleave lanes across that dependency.
    const FAULTY_IDX: &str = r#"
        header h { bit<32> x; bit<32> i; }
        struct metadata { bit<32> t; }
        register<bit<32>>[4] a;
        register<bit<32>>[4] b;
        action first() { a[0] = a[0] + 1; meta.t = a[0]; }
        action second() { b[hdr.i] = hdr.x; }
        control Main() { apply { first(); second(); } }
    "#;

    /// `q = x / y` faults on y == 0, after `a` was bumped.
    const FAULTY_DIV: &str = r#"
        header h { bit<32> x; bit<32> y; }
        struct metadata { bit<32> q; }
        register<bit<32>>[4] a;
        action tally() { a[0] = a[0] + 1; }
        action divide() { meta.q = hdr.x / hdr.y; }
        control Main() { apply { tally(); divide(); } }
    "#;

    fn cms_trace(sw: &Switch, n: u64) -> Vec<Phv> {
        (0..n).map(|k| sw.make_packet(&[("key", k % 7)]).unwrap()).collect()
    }

    #[test]
    fn run_trace_matches_per_packet_execution() {
        let mut a = build(CMS);
        a.set_backend(Backend::Interp);
        for k in 0..50u64 {
            a.begin_packet();
            a.set_header("key", k % 7).unwrap();
            a.run_packet().unwrap();
        }
        let mut b = build(CMS);
        let trace = cms_trace(&b, 50);
        let stats = b.run_trace(&trace, 1);
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.dropped, 0);
        assert_eq!(a.registers_snapshot(), b.registers_snapshot());
        assert_eq!(a.phv_snapshot(), b.phv_snapshot());
    }

    #[test]
    fn sharded_replay_merges_sketch_counters_exactly() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        for threads in [2, 4, 8] {
            let mut par = build(CMS);
            let trace = cms_trace(&par, 400);
            let stats = par.run_trace(&trace, threads);
            assert_eq!(stats.threads, threads.min(cores()));
            assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "merged counters diverge at {threads} threads"
            );
        }
    }

    /// Satellite of the 8-thread regression fix: an oversubscribed
    /// request is capped at `available_parallelism` (never more shards
    /// than cores), so it can never degrade below the sequential path.
    #[test]
    fn oversubscribed_request_caps_at_available_parallelism() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        let mut par = build(CMS);
        let trace = cms_trace(&par, 400);
        let stats = par.run_trace(&trace, 64);
        assert_eq!(stats.threads, 64.min(cores()));
        assert!(stats.threads <= cores(), "oversubscribed request must be capped");
        assert_eq!(seq.registers_snapshot(), par.registers_snapshot());
    }

    /// The gather + multi-worker merge path, pinned to several OS threads
    /// regardless of the host's core count (on a small box `run_trace`
    /// legitimately collapses to the sequential worker, which would leave
    /// this machinery untested).
    #[test]
    fn oversharded_gather_and_merge_match_sequential() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        for (shards, os_threads) in [(4, 2), (8, 4), (8, 8)] {
            let mut par = build(CMS);
            let trace = cms_trace(&par, 400);
            let (dropped, occupancy) = par.run_trace_sharded(&trace, shards, os_threads);
            assert_eq!(dropped, 0);
            assert!((0.0..=1.0).contains(&occupancy), "occupancy {occupancy} out of range");
            assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "merged counters diverge at {shards} shards on {os_threads} threads"
            );
        }
    }

    /// Batched sharded workers (pinned multi-worker path) merge to the
    /// same state as sequential scalar replay.
    #[test]
    fn batched_sharded_replay_matches_sequential() {
        let mut seq = build(CMS);
        let trace = cms_trace(&seq, 400);
        seq.run_trace(&trace, 1);
        for width in [2, 7, 64] {
            let mut par = build(CMS);
            par.set_batch_width(width);
            let trace = cms_trace(&par, 400);
            let (dropped, _) = par.run_trace_sharded(&trace, 4, 2);
            assert_eq!(dropped, 0);
            assert_eq!(
                seq.registers_snapshot(),
                par.registers_snapshot(),
                "batched sharded replay diverges at width {width}"
            );
        }
    }

    #[test]
    fn stats_report_stage_cost_and_rate() {
        let mut sw = build(CMS);
        let trace = cms_trace(&sw, 100);
        let stats = sw.run_trace(&trace, 1);
        assert_eq!(stats.stage_cost.len(), sw.stage_count());
        assert!(stats.total_cost() > 0, "cost telemetry must be populated");
        assert!(stats.pkts_per_sec() > 0.0);
        assert_eq!(stats.batch_width, 0, "no batch width requested");
        assert_eq!(stats.overlap_occupancy, 1.0, "single-threaded replay");
    }

    /// Batched replay is bit-identical to scalar replay: registers, final
    /// PHV, and per-stage cost — across widths that do and do not divide
    /// the trace length.
    #[test]
    fn batched_replay_matches_scalar_bit_for_bit() {
        let mut scalar = build(CMS);
        let trace = cms_trace(&scalar, 50);
        let sstats = scalar.run_trace(&trace, 1);
        for width in [1, 2, 3, 7, 64] {
            let mut batched = build(CMS);
            batched.set_batch_width(width);
            let trace = cms_trace(&batched, 50);
            let bstats = batched.run_trace(&trace, 1);
            assert_eq!(bstats.dropped, 0);
            assert_eq!(bstats.batch_width, if width >= 2 { width } else { 0 });
            assert_eq!(scalar.registers_snapshot(), batched.registers_snapshot(), "w={width}");
            assert_eq!(scalar.phv_snapshot(), batched.phv_snapshot(), "w={width}");
            assert_eq!(sstats.stage_cost, bstats.stage_cost, "w={width}");
        }
    }

    /// A faulting lane rolls the whole batch back and the scalar replay
    /// reproduces exact per-packet drop + rollback semantics.
    #[test]
    fn batched_replay_with_faults_matches_scalar() {
        let mut scalar = build(FAULTY_DIV);
        let trace: Vec<Phv> = (0..20u64)
            .map(|p| {
                let y = if p % 10 == 3 { 0 } else { 2 };
                scalar.make_packet(&[("x", 100 + p), ("y", y)]).unwrap()
            })
            .collect();
        let sstats = scalar.run_trace(&trace, 1);
        assert_eq!(sstats.dropped, 2);

        let mut batched = build(FAULTY_DIV);
        batched.set_batch_width(4);
        let bstats = batched.run_trace(&trace, 1);
        assert_eq!(bstats.batch_width, 4, "FAULTY_DIV is batch-safe");
        assert_eq!(bstats.dropped, 2);
        assert_eq!(scalar.registers_snapshot(), batched.registers_snapshot());
        assert_eq!(sstats.stage_cost, bstats.stage_cost);
        assert_eq!(batched.read_register("a", 0, 0).unwrap(), 18);
    }

    /// A program whose register dataflow rules out instruction-major
    /// execution falls back to the scalar loop — and says so in stats.
    #[test]
    fn batch_unsafe_program_falls_back_to_scalar() {
        let mut scalar = build(FAULTY_IDX);
        let mk = |sw: &Switch| -> Vec<Phv> {
            (0..10u64)
                .map(|p| {
                    let i = if p == 5 { 9 } else { p % 4 };
                    sw.make_packet(&[("x", p), ("i", i)]).unwrap()
                })
                .collect()
        };
        let trace = mk(&scalar);
        scalar.run_trace(&trace, 1);

        let mut batched = build(FAULTY_IDX);
        batched.set_batch_width(8);
        let trace = mk(&batched);
        let stats = batched.run_trace(&trace, 1);
        assert_eq!(stats.batch_width, 0, "FAULTY_IDX must fall back to scalar");
        assert_eq!(stats.dropped, 1);
        assert_eq!(scalar.registers_snapshot(), batched.registers_snapshot());
        assert_eq!(batched.read_register("a", 0, 0).unwrap(), 9);
    }

    #[test]
    fn out_of_bounds_packet_drops_and_rolls_back_mid_trace() {
        for backend in [Backend::Interp, Backend::Compiled] {
            let mut sw = build(FAULTY_IDX);
            sw.set_backend(backend);
            let mut trace = Vec::new();
            for p in 0..10u64 {
                // Packet 5 indexes b[9] — out of bounds (len 4).
                let i = if p == 5 { 9 } else { p % 4 };
                trace.push(sw.make_packet(&[("x", p), ("i", i)]).unwrap());
            }
            let stats = sw.run_trace(&trace, 1);
            assert_eq!(stats.dropped, 1, "{backend:?}");
            assert_eq!(stats.packets, 10);
            // 10 packets, 1 dropped: its increment of a[0] was undone.
            assert_eq!(sw.read_register("a", 0, 0).unwrap(), 9, "{backend:?}");
        }
    }

    #[test]
    fn div_by_zero_packet_drops_and_rolls_back_mid_trace() {
        for backend in [Backend::Interp, Backend::Compiled] {
            let mut sw = build(FAULTY_DIV);
            sw.set_backend(backend);
            let trace: Vec<Phv> = (0..20u64)
                .map(|p| {
                    let y = if p % 10 == 3 { 0 } else { 2 }; // packets 3, 13 fault
                    sw.make_packet(&[("x", 100 + p), ("y", y)]).unwrap()
                })
                .collect();
            let stats = sw.run_trace(&trace, 1);
            assert_eq!(stats.dropped, 2, "{backend:?}");
            assert_eq!(sw.read_register("a", 0, 0).unwrap(), 18, "{backend:?}");
        }
    }

    #[test]
    fn run_packet_surfaces_error_but_leaves_state_clean() {
        let mut sw = build(FAULTY_DIV);
        sw.begin_packet();
        sw.set_header("x", 4).unwrap();
        sw.set_header("y", 2).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 1);
        sw.begin_packet();
        sw.set_header("x", 4).unwrap();
        sw.set_header("y", 0).unwrap();
        let err = sw.run_packet().unwrap_err();
        assert_eq!(err, SimError::DivByZero);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 1, "faulting write must roll back");
    }

    #[test]
    fn sharded_replay_counts_drops() {
        let mut sw = build(FAULTY_DIV);
        let trace: Vec<Phv> = (0..64u64)
            .map(|p| sw.make_packet(&[("x", p), ("y", p % 4)]).unwrap())
            .collect();
        let stats = sw.run_trace(&trace, 4);
        assert_eq!(stats.dropped, 16);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 48);

        // Same trace through the pinned multi-worker gather path: drops
        // and rollbacks must merge identically.
        let mut sw = build(FAULTY_DIV);
        let trace: Vec<Phv> = (0..64u64)
            .map(|p| sw.make_packet(&[("x", p), ("y", p % 4)]).unwrap())
            .collect();
        assert_eq!(sw.run_trace_sharded(&trace, 4, 4).0, 16);
        assert_eq!(sw.read_register("a", 0, 0).unwrap(), 48);
    }
}

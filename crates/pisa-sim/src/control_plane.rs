//! Control-plane API: table entry management and register access.
//!
//! Mirrors what a switch OS agent (or P4Runtime) exposes: install/remove
//! exact-match entries with action data, and read/write/clear register
//! state. Application runtimes (e.g. [`crate::netcache_rt`]) are built on
//! these calls.

use crate::interp::{SimError, Switch};

impl Switch {
    /// Install an exact-match entry: `key` (one value per key field) →
    /// `action`, with `data` assignments applied to metadata on match
    /// (modelling P4 action parameters).
    pub fn install_entry(
        &mut self,
        table: &str,
        key: Vec<u64>,
        action: &str,
        data: &[(&str, u64)],
    ) -> Result<(), SimError> {
        let entry = self.make_entry(table, action, data)?;
        // Resolve the bytecode form now, while the names are at hand:
        // install time is the last moment a string may be hashed.
        let centry = crate::compiled::compile_entry(self, &self.compiled.action_ids, &entry);
        let tidx = self.compiled.table_ids[table] as usize;
        let t = self
            .tables_mut()
            .get_mut(table)
            .ok_or_else(|| SimError::UnknownTable(table.to_string()))?;
        if !t.entries.contains_key(&key) && t.is_full() {
            return Err(SimError::TableFull(table.to_string()));
        }
        t.entries.insert(key.clone(), entry);
        // The native engine (if prepared) keeps its own table mirror;
        // forward the pre-resolved form there too.
        if let Some(engine) = &self.native {
            engine.install(tidx as u64, &key, &centry);
        }
        self.ctables[tidx].entries.insert(key, centry);
        Ok(())
    }

    /// Remove one entry; returns whether it existed.
    pub fn remove_entry(&mut self, table: &str, key: &[u64]) -> Result<bool, SimError> {
        let t = self
            .tables_mut()
            .get_mut(table)
            .ok_or_else(|| SimError::UnknownTable(table.to_string()))?;
        let existed = t.entries.remove(key).is_some();
        let tidx = self.compiled.table_ids[table] as usize;
        self.ctables[tidx].entries.remove(key);
        if let Some(engine) = &self.native {
            engine.remove(tidx as u64, key);
        }
        Ok(existed)
    }

    /// Drop every entry of a table.
    pub fn clear_table(&mut self, table: &str) -> Result<(), SimError> {
        let t = self
            .tables_mut()
            .get_mut(table)
            .ok_or_else(|| SimError::UnknownTable(table.to_string()))?;
        t.entries.clear();
        let tidx = self.compiled.table_ids[table] as usize;
        self.ctables[tidx].entries.clear();
        if let Some(engine) = &self.native {
            engine.clear_table(tidx as u64);
        }
        Ok(())
    }

    /// Current entry count of a table.
    pub fn table_len(&self, table: &str) -> Result<usize, SimError> {
        self.tables()
            .get(table)
            .map(|t| t.entries.len())
            .ok_or_else(|| SimError::UnknownTable(table.to_string()))
    }

    /// Read one register cell.
    pub fn read_register(&self, reg: &str, instance: usize, cell: usize) -> Result<u64, SimError> {
        let idx = self.reg_idx(reg, instance)?;
        let r = &self.registers()[idx];
        r.cells.get(cell).copied().ok_or(SimError::IndexOutOfBounds {
            what: format!("{reg}[{instance}]"),
            index: cell as u64,
            len: r.cells.len(),
        })
    }

    /// Write one register cell.
    pub fn write_register(
        &mut self,
        reg: &str,
        instance: usize,
        cell: usize,
        value: u64,
    ) -> Result<(), SimError> {
        let idx = self.reg_idx(reg, instance)?;
        let r = &mut self.registers_mut()[idx];
        let len = r.cells.len();
        let slot = r.cells.get_mut(cell).ok_or(SimError::IndexOutOfBounds {
            what: format!("{reg}[{instance}]"),
            index: cell as u64,
            len,
        })?;
        *slot = value & r.elem_mask;
        Ok(())
    }

    /// Zero every cell of every instance of `reg` (epoch reset).
    pub fn clear_register(&mut self, reg: &str) {
        for r in self.registers_mut() {
            if r.reg == reg {
                r.clear();
            }
        }
    }

    /// Cell count of a register instance.
    pub fn register_cells(&self, reg: &str, instance: usize) -> Result<usize, SimError> {
        let idx = self.reg_idx(reg, instance)?;
        Ok(self.registers()[idx].cells.len())
    }

    /// Number of placed instances of `reg`.
    pub fn register_instances(&self, reg: &str) -> usize {
        self.registers().iter().filter(|r| r.reg == reg).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::{SimError, Switch};
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    const TBL: &str = r#"
        header h { bit<32> key; }
        struct metadata { bit<8> hit; bit<32> slot; bit<32> val; }
        register<bit<32>>[16] values;
        action on_hit() { meta.hit = 1; }
        action on_miss() { meta.hit = 0; }
        table cache {
            key = { hdr.key; }
            actions = { on_hit; on_miss; }
            size = 2;
            default_action = on_miss;
        }
        action fetch() {
            meta.val = values[meta.slot];
        }
        control Main() {
            apply {
                cache.apply();
                if (meta.hit == 1) { fetch(); }
            }
        }
    "#;

    fn build() -> Switch {
        let c = Compiler::new(presets::paper_eval(1 << 14)).compile(TBL).unwrap();
        let program = p4all_lang::parse(TBL).unwrap();
        Switch::build(&c.concrete, &program).unwrap()
    }

    #[test]
    fn entry_hit_runs_action_with_data() {
        let mut sw = build();
        sw.write_register("values", 0, 5, 777).unwrap();
        sw.install_entry("cache", vec![42], "on_hit", &[("slot", 5)]).unwrap();
        // Hit.
        sw.begin_packet();
        sw.set_header("key", 42).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("hit").unwrap(), 1);
        assert_eq!(sw.meta("val").unwrap(), 777);
        // Miss.
        sw.begin_packet();
        sw.set_header("key", 43).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("hit").unwrap(), 0);
        assert_eq!(sw.meta("val").unwrap(), 0);
    }

    #[test]
    fn table_capacity_enforced() {
        let mut sw = build();
        sw.install_entry("cache", vec![1], "on_hit", &[]).unwrap();
        sw.install_entry("cache", vec![2], "on_hit", &[]).unwrap();
        let e = sw.install_entry("cache", vec![3], "on_hit", &[]).unwrap_err();
        assert!(matches!(e, SimError::TableFull(_)));
        // Replacing an existing key is fine even when full.
        sw.install_entry("cache", vec![2], "on_hit", &[("slot", 1)]).unwrap();
        assert_eq!(sw.table_len("cache").unwrap(), 2);
        // Remove frees space.
        assert!(sw.remove_entry("cache", &[1]).unwrap());
        sw.install_entry("cache", vec![3], "on_hit", &[]).unwrap();
    }

    #[test]
    fn invalid_installs_rejected() {
        let mut sw = build();
        assert!(matches!(
            sw.install_entry("nope", vec![1], "on_hit", &[]),
            Err(SimError::UnknownTable(_))
        ));
        assert!(matches!(
            sw.install_entry("cache", vec![1], "fetch", &[]),
            Err(SimError::UnknownAction(_)) // fetch is not a cache action
        ));
        assert!(matches!(
            sw.install_entry("cache", vec![1], "on_hit", &[("ghost", 0)]),
            Err(SimError::UnknownField(_))
        ));
    }

    #[test]
    fn register_read_write_clear() {
        let mut sw = build();
        sw.write_register("values", 0, 3, 9).unwrap();
        assert_eq!(sw.read_register("values", 0, 3).unwrap(), 9);
        sw.clear_register("values");
        assert_eq!(sw.read_register("values", 0, 3).unwrap(), 0);
        assert_eq!(sw.register_cells("values", 0).unwrap(), 16);
        assert_eq!(sw.register_instances("values"), 1);
        assert!(sw.read_register("values", 0, 99).is_err());
    }
}

//! The bytecode backend: a flat, slot-resolved register machine.
//!
//! `lower` takes the slot-indexed action trees the reference
//! interpreter walks ([`crate::interp`]) and flattens them into one
//! contiguous instruction stream. The instruction set is built around
//! inline operands (`Opnd`): an instruction input is a temp, a static
//! PHV slot, or an immediate, so constants and plain field reads cost
//! zero dispatches. On top of that, the lowerer fuses the patterns the
//! interpreter pays for dearly:
//!
//! - guards and `if` conditions become fused compare-and-branch
//!   (`Instr::JF`/`Instr::JT`) instead of a materialized boolean plus
//!   a separate test, and *pure* `&&`/`||` chains lower structurally into
//!   branch sequences (skipping a pure operand is unobservable — it
//!   cannot fault and has no effects — so the interpreter's
//!   both-operands-evaluated semantics are preserved);
//! - the ubiquitous single-input `hash(x, range)`-to-slot statement
//!   becomes one `Instr::Hash1Mask`/`Instr::Hash1Mod` with the salt
//!   pre-mixed at lower time;
//! - the sketch idiom `reg[c] = reg[c] + v` becomes one undo-logged
//!   `Instr::RegAdd`;
//! - a table apply is a single `Instr::Apply` whose key operands are
//!   read inline; installed entries resolve action names and action-data
//!   field names to dense indices *at install time*.
//!
//! A stage is one contiguous code range, so packet execution is a single
//! dispatch loop per stage: **zero** string hashing, no `Box` pointer
//! chasing, no per-packet clones, no per-action call overhead.
//!
//! The engine runs **in place** on one PHV buffer. That is bit-for-bit
//! the interpreter's stage-snapshot semantics: the interpreter also reads
//! and writes the stage write buffer (an action sees all earlier writes
//! of its stage, as a PISA stateful ALU does), and its per-stage
//! copy-then-swap reduces to plain in-place mutation. The one observable
//! difference is the PHV *after a faulting packet*, which is unspecified
//! in both backends (the packet is dropped; only the register rollback is
//! contractual).
//!
//! Semantics are otherwise pinned to the interpreter by
//! `tests/backend_equivalence.rs`: same evaluation order (faultable
//! sub-expressions still lower to temps in source order; only pure
//! operands fold inline), same error surface, same hash function.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use p4all_lang::ast::BinOp;

use crate::interp::{CDst, CExpr, CStmt, RegUndo, SimError, Switch};
use crate::state::{Phv, RegState, TableEntry};

/// Index into the per-packet temporary file.
pub(crate) type Temp = u16;

/// An inline instruction operand: a temp, a static PHV slot (read from
/// the stage write buffer at execution time), or an immediate. Pure
/// values (constants, plain field reads) fold into the consuming
/// instruction instead of costing a dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Opnd {
    /// Temporary `t[i]`.
    T(Temp),
    /// Static PHV slot.
    S(u32),
    /// Immediate.
    I(u64),
}

/// One register-machine instruction. Slot/register/table references are
/// dense indices fixed at build time; `diag` indexes the side table of
/// error strings so the hot path carries no `String`s.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `t[dst] = phv[base + idx]`, bounds-checked against `count`.
    LoadSlotDyn { dst: Temp, base: u32, count: u32, idx: Opnd, diag: u16 },
    /// `t[dst] = reg[cell]`, bounds-checked.
    LoadReg { dst: Temp, reg: u16, cell: Opnd },
    /// `t[dst] = a <op> b` (wrapping; comparisons yield 0/1).
    Bin { dst: Temp, op: BinOp, a: Opnd, b: Opnd },
    /// `t[dst] = (a == 0)`
    Not { dst: Temp, a: Opnd },
    /// `t[dst] = -a` (wrapping)
    Neg { dst: Temp, a: Opnd },
    /// `t[dst] = val` — seeds a multi-input hash chain with the pre-mixed
    /// salt.
    HashInit { dst: Temp, val: u64 },
    /// `t[acc] = splitmix(t[acc] ^ src)`
    HashMix { acc: Temp, src: Opnd },
    /// `t[acc] = t[acc] % range` (`range` is nonzero by construction).
    HashMod { acc: Temp, range: u64 },
    /// `t[acc] = t[acc] & mask` — strength-reduced `HashMod` for
    /// power-of-two ranges (identical result for unsigned values).
    HashMask { acc: Temp, mask: u64 },
    /// Fused single-input hash to a static slot:
    /// `phv[slot] = splitmix(salt ^ src) & mask` (`salt` is pre-mixed at
    /// lower time, so the whole statement is one dispatch).
    Hash1Mask { slot: u32, salt: u64, src: Opnd, mask: u64 },
    /// `phv[slot] = splitmix(salt ^ src) % range`
    Hash1Mod { slot: u32, salt: u64, src: Opnd, range: u64 },
    /// `phv[slot] = src` (width-masked).
    StoreSlot { slot: u32, src: Opnd },
    /// `phv[base + idx] = src`, bounds-checked.
    StoreSlotDyn { base: u32, count: u32, idx: Opnd, src: Opnd, diag: u16 },
    /// `reg[cell] = src` (element-masked, undo-logged).
    StoreReg { reg: u16, cell: Opnd, src: Opnd },
    /// Fused sketch increment: `reg[cell] = reg[cell] + add`
    /// (element-masked, undo-logged, one bounds check).
    RegAdd { reg: u16, cell: Opnd, add: Opnd },
    /// Fused register-to-field copy: `phv[slot] = reg[cell]`
    /// (width-masked, one bounds check) — the read-back half of the
    /// sketch idiom (`meta.count[i] = cms[i][idx]`).
    RegToSlot { slot: u32, reg: u16, cell: Opnd },
    /// Jump to `target` when `a <op> b` is **false** (`op` is always a
    /// comparison). Guards and `if` conditions compile to this.
    JF { op: BinOp, a: Opnd, b: Opnd, target: u32 },
    /// Jump to `target` when `a <op> b` is **true** — the dual, used by
    /// structural `||` lowering.
    JT { op: BinOp, a: Opnd, b: Opnd, target: u32 },
    /// Fused `&&` of two comparisons: jump when **either** is false.
    /// Guards like `flag == 1 && idx == 2` are one dispatch.
    JFAnd { op1: BinOp, a1: Opnd, b1: Opnd, op2: BinOp, a2: Opnd, b2: Opnd, target: u32 },
    /// Fused `||` of two comparisons: jump when **both** are false.
    /// The min-update guard `count < min || min == 0` is one dispatch.
    JFOr { op1: BinOp, a1: Opnd, b1: Opnd, op2: BinOp, a2: Opnd, b2: Opnd, target: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Stage boundary: subsequent cost accrues to stage `s`. Emitted at
    /// the start of every non-empty stage so a whole packet is **one**
    /// dispatch loop instead of one `exec_range` call per stage.
    Stage { s: u16 },
    /// Table dispatch: read `apply_sites[site]`'s key operands, look the
    /// key up, write the entry's action data, run the matched action's
    /// body range.
    Apply { site: u16 },
    /// The whole CMS idiom (`Hash1Mask; RegAdd; RegToSlot` over the same
    /// index slot) in one dispatch:
    /// `phv[idx_slot] = h = splitmix(salt ^ src) & mask;`
    /// `reg[h] += add; phv[dst_slot] = reg[h]`.
    /// Formed by [`peephole`] only when `mask & slot-mask < cells`, so
    /// the register index is in bounds by construction.
    SketchStep { idx_slot: u32, salt: u64, src: Opnd, mask: u64, reg: u16, add: Opnd, dst_slot: u32 },
    /// The running-min idiom (`JFOr(Lt, Eq 0)` jumping over its own
    /// `StoreSlot`) in one dispatch:
    /// `if src < phv[slot] || phv[slot] == 0 { phv[slot] = src }`.
    MinOrInit { slot: u32, src: Opnd },
}

/// A table apply site: which table, and where the key comes from.
#[derive(Debug, Clone, Default)]
pub(crate) struct ApplySite {
    pub table: u16,
    pub key_ops: Vec<Opnd>,
}

/// What a table does on a miss.
#[derive(Debug, Clone, Default)]
pub(crate) enum DefaultAction {
    /// No default: a miss is a no-op.
    #[default]
    None,
    /// Dense id of the default action's body.
    Run(u32),
    /// Declared default never compiled — faults like the interpreter.
    Unknown(String),
}

/// Static per-table data (dynamic entries live in [`CompiledTableState`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct TableMeta {
    pub default_action: DefaultAction,
}

/// An installed entry with everything pre-resolved: dense action id and
/// `(slot, value)` action-data writes.
#[derive(Debug, Clone)]
pub(crate) struct CEntry {
    pub action: u32,
    pub data: Vec<(u32, u64)>,
}

/// Multiply-xor hash (FxHash-style) for the per-packet table lookup: the
/// default SipHash is DoS-resistant but costs more than the lookup
/// itself, and table keys here are switch-internal values, not attacker-
/// chosen map keys.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// The dynamic half of a table, mirrored from the interpreter's
/// [`crate::state::TableState`] on every control-plane mutation.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledTableState {
    pub entries: HashMap<Vec<u64>, CEntry, FxBuild>,
}

/// A lowered program: one flat code vector plus dense dispatch metadata.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledProgram {
    pub code: Vec<Instr>,
    /// One contiguous code range per stage (includes its `Stage` mark).
    pub stages: Vec<(u32, u32)>,
    /// The whole pipeline as one contiguous range: every non-empty stage
    /// in order, each opened by its `Stage` mark. A packet is a single
    /// dispatch loop over this range — empty preset stages cost nothing.
    pub body: (u32, u32),
    pub tables: Vec<TableMeta>,
    pub apply_sites: Vec<ApplySite>,
    pub table_ids: HashMap<String, u16>,
    /// Dense id -> code range, for table-dispatched action bodies.
    pub action_code: Vec<(u32, u32)>,
    pub action_ids: HashMap<String, u32>,
    /// Error strings for dynamic-index bounds faults.
    pub diags: Vec<String>,
    /// Size of the temporary file a packet needs.
    pub temp_count: usize,
    /// Whether instruction-major SoA batch execution ([`run_batch`]) is
    /// bit-identical to packet-major execution for this program — see
    /// [`analyze_batch_safety`]. When false, batched replay falls back to
    /// the scalar loop.
    pub batch_safe: bool,
}

/// Per-executor scratch: the temporary file and the reusable key buffer.
/// Each replay worker owns one, so packet execution allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecCtx {
    pub temps: Vec<u64>,
    pub keys: Vec<u64>,
}

impl ExecCtx {
    pub fn for_program(prog: &CompiledProgram) -> ExecCtx {
        ExecCtx { temps: vec![0; prog.temp_count.max(1)], keys: Vec::new() }
    }
}

// ------------------------------------------------------------- lowering

/// True when evaluating `e` can neither fault nor touch mutable state:
/// skipping or reordering it is unobservable. Division is impure (it can
/// fault), as are dynamic slots and register reads (bounds faults).
fn pure(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Slot(_) => true,
        CExpr::Bin { op: BinOp::Div, .. } => false,
        CExpr::Bin { a, b, .. } => pure(a) && pure(b),
        CExpr::Not(a) | CExpr::Neg(a) => pure(a),
        CExpr::DynSlot { .. } | CExpr::RegRead { .. } => false,
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
}

struct Lowerer {
    code: Vec<Instr>,
    diags: Vec<String>,
    diag_ids: HashMap<String, u16>,
    next_temp: usize,
    max_temps: usize,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            code: Vec::new(),
            diags: Vec::new(),
            diag_ids: HashMap::new(),
            next_temp: 0,
            max_temps: 0,
        }
    }

    fn alloc(&mut self) -> Temp {
        let t = self.next_temp;
        self.next_temp += 1;
        self.max_temps = self.max_temps.max(self.next_temp);
        t as Temp
    }

    /// Temps are statement-local: each top-level statement restarts the
    /// file (values never flow between statements except through the PHV
    /// or registers, exactly as in the interpreter).
    fn reset_temps(&mut self) {
        self.next_temp = 0;
    }

    fn diag(&mut self, what: &str) -> u16 {
        if let Some(&id) = self.diag_ids.get(what) {
            return id;
        }
        let id = self.diags.len() as u16;
        self.diags.push(what.to_string());
        self.diag_ids.insert(what.to_string(), id);
        id
    }

    /// Lower `e` to an inline operand: constants and static slots fold
    /// directly; anything else materializes into a temp *here*, so
    /// faultable sub-expressions still run in source order.
    fn operand(&mut self, e: &CExpr) -> Opnd {
        match e {
            CExpr::Const(v) => Opnd::I(*v),
            CExpr::Slot(s) => Opnd::S(*s as u32),
            _ => Opnd::T(self.lower_expr(e)),
        }
    }

    fn lower_expr(&mut self, e: &CExpr) -> Temp {
        match e {
            CExpr::Const(_) | CExpr::Slot(_) => {
                // Pure leaves normally fold via `operand`; when a temp is
                // demanded (e.g. a hash accumulator seed), copy through a
                // no-op `Bin Add 0`.
                let o = self.operand(e);
                let dst = self.alloc();
                self.code.push(Instr::Bin { dst, op: BinOp::Add, a: o, b: Opnd::I(0) });
                dst
            }
            CExpr::DynSlot { base, count, idx, what } => {
                let i = self.operand(idx);
                let diag = self.diag(what);
                let dst = self.alloc();
                self.code.push(Instr::LoadSlotDyn {
                    dst,
                    base: *base as u32,
                    count: *count as u32,
                    idx: i,
                    diag,
                });
                dst
            }
            CExpr::RegRead { reg, cell } => {
                let c = self.operand(cell);
                let dst = self.alloc();
                self.code.push(Instr::LoadReg { dst, reg: *reg as u16, cell: c });
                dst
            }
            CExpr::Bin { op, a, b } => {
                // Both operands always evaluate (no short-circuit), as in
                // the interpreter: error behavior must match exactly.
                // (Folding a *pure* operand inline is unobservable.)
                let ta = self.operand(a);
                let tb = self.operand(b);
                let dst = self.alloc();
                self.code.push(Instr::Bin { dst, op: *op, a: ta, b: tb });
                dst
            }
            CExpr::Not(a) => {
                let ta = self.operand(a);
                let dst = self.alloc();
                self.code.push(Instr::Not { dst, a: ta });
                dst
            }
            CExpr::Neg(a) => {
                let ta = self.operand(a);
                let dst = self.alloc();
                self.code.push(Instr::Neg { dst, a: ta });
                dst
            }
        }
    }

    /// Value is already in `src`; emit the destination store (dynamic
    /// indices evaluate after the value, matching the interpreter — and
    /// reordering a *pure* folded value past the index read is
    /// unobservable, since expression evaluation never writes the PHV).
    fn lower_store(&mut self, dst: &CDst, src: Opnd) {
        match dst {
            CDst::Slot(s) => self.code.push(Instr::StoreSlot { slot: *s as u32, src }),
            CDst::DynSlot { base, count, idx, what } => {
                let i = self.operand(idx);
                let diag = self.diag(what);
                self.code.push(Instr::StoreSlotDyn {
                    base: *base as u32,
                    count: *count as u32,
                    idx: i,
                    src,
                    diag,
                });
            }
            CDst::Reg { reg, cell } => {
                let c = self.operand(cell);
                self.code.push(Instr::StoreReg { reg: *reg as u16, cell: c, src });
            }
        }
    }

    /// Emit branching code for a condition: control **falls through**
    /// when `e` is true; every index pushed to `false_jumps` is an
    /// unpatched jump taken when `e` is false. Comparisons fuse into one
    /// `JF`; pure `&&`/`||` lower structurally (safe: a pure operand
    /// cannot fault and has no effects, so skipping it is unobservable);
    /// everything else materializes a boolean and tests it against zero.
    fn lower_cond_jf(&mut self, e: &CExpr, false_jumps: &mut Vec<usize>) {
        match e {
            CExpr::Bin { op: BinOp::And, a, b } if pure(a) && pure(b) => {
                // Two bare comparisons fuse into one JFAnd dispatch.
                if let Some((c1, c2)) = self.fuse_cmp_pair(a, b) {
                    false_jumps.push(self.code.len());
                    let ((op1, a1, b1), (op2, a2, b2)) = (c1, c2);
                    self.code.push(Instr::JFAnd { op1, a1, b1, op2, a2, b2, target: 0 });
                    return;
                }
                self.lower_cond_jf(a, false_jumps);
                self.lower_cond_jf(b, false_jumps);
            }
            CExpr::Bin { op: BinOp::Or, a, b } if pure(a) && pure(b) => {
                if let Some((c1, c2)) = self.fuse_cmp_pair(a, b) {
                    false_jumps.push(self.code.len());
                    let ((op1, a1, b1), (op2, a2, b2)) = (c1, c2);
                    self.code.push(Instr::JFOr { op1, a1, b1, op2, a2, b2, target: 0 });
                    return;
                }
                let mut true_jumps = Vec::new();
                self.lower_cond_jt(a, &mut true_jumps);
                self.lower_cond_jf(b, false_jumps);
                let here = self.code.len() as u32;
                for at in true_jumps {
                    self.patch(at, here);
                }
            }
            CExpr::Bin { op, a, b } if is_cmp(*op) => {
                let oa = self.operand(a);
                let ob = self.operand(b);
                false_jumps.push(self.code.len());
                self.code.push(Instr::JF { op: *op, a: oa, b: ob, target: 0 });
            }
            CExpr::Not(a) => self.lower_cond_jt(a, false_jumps),
            _ => {
                let o = self.operand(e);
                false_jumps.push(self.code.len());
                self.code.push(Instr::JF { op: BinOp::Ne, a: o, b: Opnd::I(0), target: 0 });
            }
        }
    }

    /// The dual: control falls through when `e` is **false**; jumps in
    /// `true_jumps` are taken when it is true.
    fn lower_cond_jt(&mut self, e: &CExpr, true_jumps: &mut Vec<usize>) {
        match e {
            CExpr::Bin { op: BinOp::Or, a, b } if pure(a) && pure(b) => {
                self.lower_cond_jt(a, true_jumps);
                self.lower_cond_jt(b, true_jumps);
            }
            CExpr::Bin { op: BinOp::And, a, b } if pure(a) && pure(b) => {
                let mut false_jumps = Vec::new();
                self.lower_cond_jf(a, &mut false_jumps);
                self.lower_cond_jt(b, true_jumps);
                let here = self.code.len() as u32;
                for at in false_jumps {
                    self.patch(at, here);
                }
            }
            CExpr::Bin { op, a, b } if is_cmp(*op) => {
                let oa = self.operand(a);
                let ob = self.operand(b);
                true_jumps.push(self.code.len());
                self.code.push(Instr::JT { op: *op, a: oa, b: ob, target: 0 });
            }
            CExpr::Not(a) => self.lower_cond_jf(a, true_jumps),
            _ => {
                let o = self.operand(e);
                true_jumps.push(self.code.len());
                self.code.push(Instr::JT { op: BinOp::Ne, a: o, b: Opnd::I(0), target: 0 });
            }
        }
    }

    fn lower_stmt(&mut self, s: &CStmt) {
        self.reset_temps();
        match s {
            CStmt::Assign { dst, val } => {
                // The sketch idiom `reg[c] = reg[c] + v` fuses into one
                // RegAdd when the cell is static (slot/const, so reading
                // it once is unobservable) and `v` folds to an operand.
                if let Some(i) = self.fuse_reg_add(dst, val) {
                    self.code.push(i);
                    return;
                }
                // `meta.f = reg[cell]` with a static cell is one copy.
                if let (CDst::Slot(s), CExpr::RegRead { reg, cell }) = (dst, val) {
                    if let Some(c) = static_opnd(cell) {
                        self.code.push(Instr::RegToSlot {
                            slot: *s as u32,
                            reg: *reg as u16,
                            cell: c,
                        });
                        return;
                    }
                }
                let v = self.operand(val);
                self.lower_store(dst, v);
            }
            CStmt::Hash { dst, inputs, range, salt } => {
                // `slot = hash(x, range)` — the count-min index pattern —
                // fuses into a single instruction with a pre-mixed salt.
                if let (CDst::Slot(s), [input]) = (dst, inputs.as_slice()) {
                    let src = self.operand(input);
                    let slot = *s as u32;
                    let salt = splitmix(*salt);
                    self.code.push(if range.is_power_of_two() {
                        Instr::Hash1Mask { slot, salt, src, mask: *range - 1 }
                    } else {
                        Instr::Hash1Mod { slot, salt, src, range: *range }
                    });
                    return;
                }
                let acc = self.alloc();
                self.code.push(Instr::HashInit { dst: acc, val: splitmix(*salt) });
                for i in inputs {
                    let t = self.operand(i);
                    self.code.push(Instr::HashMix { acc, src: t });
                }
                if range.is_power_of_two() {
                    self.code.push(Instr::HashMask { acc, mask: *range - 1 });
                } else {
                    self.code.push(Instr::HashMod { acc, range: *range });
                }
                self.lower_store(dst, Opnd::T(acc));
            }
            CStmt::If { cond, then_body, else_body } => {
                let mut false_jumps = Vec::new();
                self.lower_cond_jf(cond, &mut false_jumps);
                for t in then_body {
                    self.lower_stmt(t);
                }
                if else_body.is_empty() {
                    let end = self.code.len() as u32;
                    for at in false_jumps {
                        self.patch(at, end);
                    }
                } else {
                    let jmp_at = self.code.len();
                    self.code.push(Instr::Jmp { target: 0 });
                    let else_start = self.code.len() as u32;
                    for at in false_jumps {
                        self.patch(at, else_start);
                    }
                    for t in else_body {
                        self.lower_stmt(t);
                    }
                    let end = self.code.len() as u32;
                    self.patch(jmp_at, end);
                }
            }
        }
    }

    /// When `a` and `b` are both bare comparisons (callers have already
    /// established they are pure), lower their operands and return the
    /// two `(op, a, b)` halves of a fused double-comparison branch.
    #[allow(clippy::type_complexity)]
    fn fuse_cmp_pair(
        &mut self,
        a: &CExpr,
        b: &CExpr,
    ) -> Option<((BinOp, Opnd, Opnd), (BinOp, Opnd, Opnd))> {
        let (CExpr::Bin { op: op1, a: a1, b: b1 }, CExpr::Bin { op: op2, a: a2, b: b2 }) = (a, b)
        else {
            return None;
        };
        if !is_cmp(*op1) || !is_cmp(*op2) {
            return None;
        }
        let (oa1, ob1) = (self.operand(a1), self.operand(b1));
        let (oa2, ob2) = (self.operand(a2), self.operand(b2));
        Some(((*op1, oa1, ob1), (*op2, oa2, ob2)))
    }

    /// Match `reg[cell] = reg[cell] + v` (either operand order) with a
    /// static cell and an operand-foldable `v`.
    fn fuse_reg_add(&mut self, dst: &CDst, val: &CExpr) -> Option<Instr> {
        let CDst::Reg { reg, cell } = dst else { return None };
        let CExpr::Bin { op: BinOp::Add, a, b } = val else { return None };
        let (read, v) = match (&**a, &**b) {
            (CExpr::RegRead { reg: r2, cell: c2 }, other) if *r2 == *reg => (c2, other),
            (other, CExpr::RegRead { reg: r2, cell: c2 }) if *r2 == *reg => (c2, other),
            _ => return None,
        };
        let cell_op = static_opnd(cell)?;
        if static_opnd(read)? != cell_op {
            return None;
        }
        let add = static_opnd(v)?;
        Some(Instr::RegAdd { reg: *reg as u16, cell: cell_op, add })
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Instr::JF { target, .. }
            | Instr::JT { target, .. }
            | Instr::JFAnd { target, .. }
            | Instr::JFOr { target, .. }
            | Instr::Jmp { target } => *target = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn lower_block(&mut self, body: &[CStmt]) -> (u32, u32) {
        let start = self.code.len() as u32;
        for s in body {
            self.lower_stmt(s);
        }
        (start, self.code.len() as u32)
    }
}

/// `Opnd` for an expression that is trivially pure — a constant or a
/// static slot. Used by fusions that read a value twice or out of source
/// order, where anything faultable must be rejected.
fn static_opnd(e: &CExpr) -> Option<Opnd> {
    match e {
        CExpr::Const(v) => Some(Opnd::I(*v)),
        CExpr::Slot(s) => Some(Opnd::S(*s as u32)),
        _ => None,
    }
}

/// Lower the switch's interpreter structures into bytecode, and mirror
/// any already-installed table entries. Infallible: everything it
/// consumes was validated by [`Switch::build`].
pub(crate) fn lower(sw: &Switch) -> (CompiledProgram, Vec<CompiledTableState>) {
    let mut lo = Lowerer::new();

    // Dense action ids for table-dispatched bodies (sorted for a
    // deterministic numbering).
    let mut action_names: Vec<&String> = sw.table_actions.keys().collect();
    action_names.sort();
    let mut action_ids = HashMap::new();
    let mut action_code = Vec::with_capacity(action_names.len());
    for (id, name) in action_names.iter().enumerate() {
        action_ids.insert((*name).clone(), id as u32);
        action_code.push(lo.lower_block(&sw.table_actions[*name]));
    }

    // Dense table ids (sorted for determinism).
    let mut table_names: Vec<&String> = sw.tables().keys().collect();
    table_names.sort();
    let mut table_ids = HashMap::new();
    let mut tables = Vec::with_capacity(table_names.len());
    let mut ctables = Vec::with_capacity(table_names.len());
    for (id, name) in table_names.iter().enumerate() {
        table_ids.insert((*name).clone(), id as u16);
        let ts = &sw.tables()[*name];
        let default_action = match &ts.default_action {
            None => DefaultAction::None,
            Some(a) => match action_ids.get(a) {
                Some(&id) => DefaultAction::Run(id),
                None => DefaultAction::Unknown(a.clone()),
            },
        };
        tables.push(TableMeta { default_action });
        let mut cts = CompiledTableState::default();
        for (key, entry) in &ts.entries {
            cts.entries.insert(key.clone(), compile_entry(sw, &action_ids, entry));
        }
        ctables.push(cts);
    }

    // Stage programs: each stage is one contiguous range. A guard lowers
    // to fused conditional jumps over the rest of its action; a table
    // apply lowers to one `Apply` over inline key operands.
    let mut apply_sites = Vec::new();
    let mut stages = Vec::with_capacity(sw.stages.len());
    let body_start = lo.code.len() as u32;
    for (s, stage) in sw.stages.iter().enumerate() {
        let start = lo.code.len() as u32;
        // Open with the cost-attribution mark; popped again below if the
        // stage turns out to hold no code.
        lo.code.push(Instr::Stage { s: s as u16 });
        for a in stage {
            let guard_jumps = a.guard.as_ref().map(|g| {
                lo.reset_temps();
                let mut jumps = Vec::new();
                lo.lower_cond_jf(g, &mut jumps);
                jumps
            });
            if let Some((tname, keys)) = &a.table {
                lo.reset_temps();
                let key_ops: Vec<Opnd> = keys.iter().map(|k| lo.operand(k)).collect();
                let site = apply_sites.len() as u16;
                apply_sites.push(ApplySite { table: table_ids[tname], key_ops });
                lo.code.push(Instr::Apply { site });
            }
            lo.lower_block(&a.body);
            if let Some(jumps) = guard_jumps {
                let end = lo.code.len() as u32;
                for at in jumps {
                    lo.patch(at, end);
                }
            }
        }
        if lo.code.len() == start as usize + 1 {
            // Nothing but the mark: the stage is empty, drop it.
            lo.code.pop();
        }
        stages.push((start, lo.code.len() as u32));
    }

    let body = (body_start, lo.code.len() as u32);
    let mut prog = CompiledProgram {
        code: lo.code,
        stages,
        body,
        tables,
        apply_sites,
        table_ids,
        action_code,
        action_ids,
        diags: lo.diags,
        temp_count: lo.max_temps,
        batch_safe: false,
    };
    peephole(&mut prog, &sw.masks, &sw.registers);
    validate(&prog, sw.masks.len(), sw.registers.len());
    prog.batch_safe = analyze_batch_safety(&prog, sw.registers.len());
    (prog, ctables)
}

/// Decide whether **instruction-major** batch execution is bit-identical
/// to packet-major (scalar) execution.
///
/// In instruction-major order every lane runs instruction `pc` before any
/// lane runs `pc + 1`. Per-lane state (PHV slots, temps) never flows
/// between lanes, so the only cross-lane state is the register file. A
/// register write at one pc observed by a read at a *different* pc sees a
/// different interleaving than scalar order would (all lanes' writes land
/// before any lane's later read), so the program is batch-safe iff every
/// register that is ever written is touched (read *or* written) from at
/// most one **atom**:
///
/// - a plain top-level instruction is its own atom, and single fused
///   instructions like [`Instr::SketchStep`] keep their read-modify-
///   write-readback sequence inside one atom by construction;
/// - an [`Instr::Apply`] atom conservatively includes **every** action
///   body (entries bind actions at install time, so any action may run),
///   because the batch executor runs the whole lookup + action body
///   scalar per lane, in lane order, inside the one Apply dispatch.
///
/// Read-only registers are always safe — nothing mutates them mid-batch.
/// The batch loop also requires all top-level jumps to be forward (lanes
/// are reactivated by `pc` *reaching* their wait target), which the
/// if/else lowering guarantees; this is re-checked here rather than
/// assumed.
fn analyze_batch_safety(prog: &CompiledProgram, reg_count: usize) -> bool {
    fn touch(i: &Instr, f: &mut dyn FnMut(u16, bool)) {
        match i {
            Instr::LoadReg { reg, .. } | Instr::RegToSlot { reg, .. } => f(*reg, false),
            Instr::StoreReg { reg, .. }
            | Instr::RegAdd { reg, .. }
            | Instr::SketchStep { reg, .. } => f(*reg, true),
            _ => {}
        }
    }

    // Register accesses of the union of all action bodies: charged to
    // every Apply atom.
    let mut action_touch: Vec<(u16, bool)> = Vec::new();
    for &(s, e) in &prog.action_code {
        for i in &prog.code[s as usize..e as usize] {
            touch(i, &mut |r, w| action_touch.push((r, w)));
        }
    }

    let mut owner: Vec<Option<u32>> = vec![None; reg_count];
    let mut multi = vec![false; reg_count];
    let mut written = vec![false; reg_count];
    let mut record = |atom: u32, r: u16, w: bool| {
        let r = r as usize;
        written[r] |= w;
        match owner[r] {
            None => owner[r] = Some(atom),
            Some(a) if a != atom => multi[r] = true,
            Some(_) => {}
        }
    };

    let (bs, be) = prog.body;
    for pc in bs as usize..be as usize {
        let i = &prog.code[pc];
        match i {
            Instr::JF { target, .. }
            | Instr::JT { target, .. }
            | Instr::JFAnd { target, .. }
            | Instr::JFOr { target, .. }
            | Instr::Jmp { target }
                if *target as usize <= pc =>
            {
                return false;
            }
            _ => {}
        }
        touch(i, &mut |r, w| record(pc as u32, r, w));
        if matches!(i, Instr::Apply { .. }) {
            for &(r, w) in &action_touch {
                record(pc as u32, r, w);
            }
        }
    }
    (0..reg_count).all(|r| !(multi[r] && written[r]))
}

/// Try to fuse the CMS idiom at `code[pc..pc + 3]`: hash into an index
/// slot, bump the register cell it names, read the new count back into a
/// field. Only fuses when the hashed index is provably inside the
/// register (`mask & slot-mask < cells`), which removes the fault path
/// along with two dispatches.
fn fuse_sketch(code: &[Instr], pc: usize, masks: &[u64], regs: &[RegState]) -> Option<Instr> {
    let Instr::Hash1Mask { slot, salt, src, mask } = code.get(pc)? else {
        return None;
    };
    let Instr::RegAdd { reg, cell: Opnd::S(c1), add } = code.get(pc + 1)? else {
        return None;
    };
    let Instr::RegToSlot { slot: dst, reg: r2, cell: Opnd::S(c2) } = code.get(pc + 2)? else {
        return None;
    };
    if c1 != slot || c2 != slot || r2 != reg {
        return None;
    }
    // The cell value the fused step reads back is `h & mask` re-masked by
    // the slot's own width, so its bound is the AND of both masks.
    let idx_bound = *mask & masks[*slot as usize];
    if (idx_bound as usize) >= regs[*reg as usize].cells.len() {
        return None;
    }
    Some(Instr::SketchStep {
        idx_slot: *slot,
        salt: *salt,
        src: *src,
        mask: *mask,
        reg: *reg,
        add: *add,
        dst_slot: *dst,
    })
}

/// Try to fuse the running-min idiom at `code[pc..pc + 2]`: a `JFOr`
/// guard `src < phv[m] || phv[m] == 0` that jumps over exactly its own
/// `phv[m] = src` store.
fn fuse_min(code: &[Instr], pc: usize) -> Option<Instr> {
    let Instr::JFOr {
        op1: BinOp::Lt,
        a1,
        b1: Opnd::S(m),
        op2: BinOp::Eq,
        a2: Opnd::S(m2),
        b2: Opnd::I(0),
        target,
    } = code.get(pc)?
    else {
        return None;
    };
    let Instr::StoreSlot { slot: m3, src } = code.get(pc + 1)? else {
        return None;
    };
    if m2 != m || m3 != m || src != a1 || *target as usize != pc + 2 {
        return None;
    }
    Some(Instr::MinOrInit { slot: *m, src: *a1 })
}

/// Post-lowering peephole over the final code: fuse the CMS idiom into
/// [`Instr::SketchStep`] and the running-min idiom into
/// [`Instr::MinOrInit`]. A fusion never swallows a jump target or a
/// stage/action/body boundary, and every surviving jump target and range
/// endpoint is remapped onto the compacted code.
fn peephole(prog: &mut CompiledProgram, masks: &[u64], regs: &[RegState]) {
    let len = prog.code.len();
    // Positions that must survive as instruction starts: jump targets and
    // every range endpoint the program indexes by.
    let mut barrier = vec![false; len + 1];
    for i in &prog.code {
        match i {
            Instr::JF { target, .. }
            | Instr::JT { target, .. }
            | Instr::JFAnd { target, .. }
            | Instr::JFOr { target, .. }
            | Instr::Jmp { target } => barrier[*target as usize] = true,
            _ => {}
        }
    }
    for &(a, b) in prog.stages.iter().chain(prog.action_code.iter()) {
        barrier[a as usize] = true;
        barrier[b as usize] = true;
    }
    barrier[prog.body.0 as usize] = true;
    barrier[prog.body.1 as usize] = true;

    let old = std::mem::take(&mut prog.code);
    let mut map = vec![0u32; len + 1];
    let mut out: Vec<Instr> = Vec::with_capacity(len);
    let mut pc = 0usize;
    while pc < len {
        map[pc] = out.len() as u32;
        if !barrier[pc + 1] && pc + 2 < len && !barrier[pc + 2] {
            if let Some(fused) = fuse_sketch(&old, pc, masks, regs) {
                // Interior positions are unreachable (no barrier), but
                // keep the map total.
                map[pc + 1] = out.len() as u32;
                map[pc + 2] = out.len() as u32;
                out.push(fused);
                pc += 3;
                continue;
            }
        }
        if !barrier[pc + 1] {
            if let Some(fused) = fuse_min(&old, pc) {
                map[pc + 1] = out.len() as u32;
                out.push(fused);
                pc += 2;
                continue;
            }
        }
        out.push(old[pc].clone());
        pc += 1;
    }
    map[len] = out.len() as u32;

    for i in &mut out {
        match i {
            Instr::JF { target, .. }
            | Instr::JT { target, .. }
            | Instr::JFAnd { target, .. }
            | Instr::JFOr { target, .. }
            | Instr::Jmp { target } => *target = map[*target as usize],
            _ => {}
        }
    }
    prog.code = out;
    for (a, b) in prog.stages.iter_mut().chain(prog.action_code.iter_mut()) {
        *a = map[*a as usize];
        *b = map[*b as usize];
    }
    prog.body = (map[prog.body.0 as usize], map[prog.body.1 as usize]);
}

/// Build-time validation underwriting the execution loop's unchecked
/// accesses: every static slot reference is within the PHV, every dynamic
/// slot window fits, every register id resolves, and every jump target
/// lands inside the code. A violation is a lowering bug, and panicking
/// here (once, at build) is what lets [`exec_range`] skip those checks on
/// every packet.
fn validate(prog: &CompiledProgram, phv_len: usize, reg_count: usize) {
    let code_len = prog.code.len() as u32;
    let slot = |s: u32| assert!((s as usize) < phv_len, "slot {s} out of PHV ({phv_len})");
    let opnd = |o: &Opnd| {
        if let Opnd::S(s) = o {
            slot(*s);
        }
    };
    let dynw = |base: u32, count: u32| {
        assert!(base as usize + count as usize <= phv_len, "dyn window out of PHV");
    };
    let reg = |r: u16| assert!((r as usize) < reg_count, "register {r} unresolved");
    let target = |t: u32| assert!(t <= code_len, "jump target {t} out of code");
    for i in &prog.code {
        match i {
            Instr::LoadSlotDyn { base, count, idx, diag, .. } => {
                dynw(*base, *count);
                opnd(idx);
                assert!((*diag as usize) < prog.diags.len());
            }
            Instr::LoadReg { reg: r, cell, .. } => {
                reg(*r);
                opnd(cell);
            }
            Instr::Bin { a, b, .. } => {
                opnd(a);
                opnd(b);
            }
            Instr::Not { a, .. } | Instr::Neg { a, .. } => opnd(a),
            Instr::HashInit { .. } | Instr::HashMod { .. } | Instr::HashMask { .. } => {}
            Instr::HashMix { src, .. } => opnd(src),
            Instr::Hash1Mask { slot: s, src, .. } | Instr::Hash1Mod { slot: s, src, .. } => {
                slot(*s);
                opnd(src);
            }
            Instr::StoreSlot { slot: s, src } => {
                slot(*s);
                opnd(src);
            }
            Instr::StoreSlotDyn { base, count, idx, src, diag } => {
                dynw(*base, *count);
                opnd(idx);
                opnd(src);
                assert!((*diag as usize) < prog.diags.len());
            }
            Instr::StoreReg { reg: r, cell, src } => {
                reg(*r);
                opnd(cell);
                opnd(src);
            }
            Instr::RegAdd { reg: r, cell, add } => {
                reg(*r);
                opnd(cell);
                opnd(add);
            }
            Instr::RegToSlot { slot: s, reg: r, cell } => {
                slot(*s);
                reg(*r);
                opnd(cell);
            }
            Instr::JF { a, b, target: t, .. } | Instr::JT { a, b, target: t, .. } => {
                opnd(a);
                opnd(b);
                target(*t);
            }
            Instr::JFAnd { a1, b1, a2, b2, target: t, .. }
            | Instr::JFOr { a1, b1, a2, b2, target: t, .. } => {
                opnd(a1);
                opnd(b1);
                opnd(a2);
                opnd(b2);
                target(*t);
            }
            Instr::Jmp { target: t } => target(*t),
            Instr::Stage { s } => {
                assert!((*s as usize) < prog.stages.len(), "stage mark out of range");
            }
            Instr::Apply { site } => {
                let s = &prog.apply_sites[*site as usize];
                assert!((s.table as usize) < prog.tables.len());
                s.key_ops.iter().for_each(&opnd);
            }
            Instr::SketchStep { idx_slot, src, reg: r, add, dst_slot, .. } => {
                slot(*idx_slot);
                slot(*dst_slot);
                opnd(src);
                opnd(add);
                reg(*r);
            }
            Instr::MinOrInit { slot: s, src } => {
                slot(*s);
                opnd(src);
            }
        }
    }
}

/// Resolve an interpreter-form entry (validated at install) into its
/// dense executable form.
pub(crate) fn compile_entry(
    sw: &Switch,
    action_ids: &HashMap<String, u32>,
    entry: &TableEntry,
) -> CEntry {
    CEntry {
        action: action_ids[&entry.action],
        data: entry
            .data
            .iter()
            .map(|(f, v)| (sw.meta_scalar_slot(f).expect("validated at install") as u32, *v))
            .collect(),
    }
}

// ------------------------------------------------------------ execution

/// Uniform access to one packet's PHV slots and temporary file, so the
/// same dispatch loop ([`exec_range`]) serves both the scalar engine
/// (one contiguous `Phv` + temp slice) and one **lane** of a
/// structure-of-arrays batch (stride-`n` columns of the batch buffers).
/// Monomorphized: both impls compile down to direct indexing with no
/// per-access dispatch.
pub(crate) trait PhvView {
    fn get(&self, slot: usize) -> u64;
    /// Width-masked store.
    fn set(&mut self, slot: usize, v: u64);
    fn temp(&self, t: Temp) -> u64;
    fn set_temp(&mut self, t: Temp, v: u64);
}

/// The scalar (one packet, contiguous buffers) view.
pub(crate) struct ScalarView<'a> {
    pub phv: &'a mut Phv,
    pub temps: &'a mut [u64],
}

impl PhvView for ScalarView<'_> {
    // SAFETY (all four): every static slot index in a program was checked
    // against the PHV length by [`validate`] at build time, `slots` and
    // `masks` have equal length (asserted in [`run_packet`]), and every
    // `Temp` the lowerer emits is below `temp_count` ([`Lowerer::alloc`]
    // is the only source and tracks the high-water mark) while the
    // scratch is at least that large — so the bounds checks are provably
    // dead and elided.
    #[inline(always)]
    fn get(&self, slot: usize) -> u64 {
        unsafe { *self.phv.slots.get_unchecked(slot) }
    }

    #[inline(always)]
    fn set(&mut self, slot: usize, v: u64) {
        unsafe {
            let m = *self.phv.masks.get_unchecked(slot);
            *self.phv.slots.get_unchecked_mut(slot) = v & m;
        }
    }

    #[inline(always)]
    fn temp(&self, t: Temp) -> u64 {
        unsafe { *self.temps.get_unchecked(t as usize) }
    }

    #[inline(always)]
    fn set_temp(&mut self, t: Temp, v: u64) {
        unsafe { *self.temps.get_unchecked_mut(t as usize) = v }
    }
}

/// One lane of a column-major SoA batch: slot `s` of lane `l` lives at
/// `slots[s * n + l]`, temp `t` at `temps[t * n + l]`.
pub(crate) struct LaneView<'a> {
    pub slots: &'a mut [u64],
    pub masks: &'a [u64],
    pub temps: &'a mut [u64],
    pub n: usize,
    pub lane: usize,
}

impl PhvView for LaneView<'_> {
    // SAFETY (all four): `slot < phv_len` and `t < temp_count` hold by
    // [`validate`] / [`Lowerer::alloc`] as for [`ScalarView`]; `lane < n`
    // and the buffers are at least `phv_len * n` / `temp_count * n` long
    // (asserted in [`run_batch`]), so `slot * n + lane < phv_len * n`.
    #[inline(always)]
    fn get(&self, slot: usize) -> u64 {
        unsafe { *self.slots.get_unchecked(slot * self.n + self.lane) }
    }

    #[inline(always)]
    fn set(&mut self, slot: usize, v: u64) {
        unsafe {
            let m = *self.masks.get_unchecked(slot);
            *self.slots.get_unchecked_mut(slot * self.n + self.lane) = v & m;
        }
    }

    #[inline(always)]
    fn temp(&self, t: Temp) -> u64 {
        unsafe { *self.temps.get_unchecked(t as usize * self.n + self.lane) }
    }

    #[inline(always)]
    fn set_temp(&mut self, t: Temp, v: u64) {
        unsafe { *self.temps.get_unchecked_mut(t as usize * self.n + self.lane) = v }
    }
}

/// Resolve an inline operand against a view.
#[inline(always)]
fn ov<V: PhvView>(view: &V, o: &Opnd) -> u64 {
    match *o {
        Opnd::T(t) => view.temp(t),
        Opnd::S(s) => view.get(s as usize),
        Opnd::I(v) => v,
    }
}

/// `a <op> b` for the comparison subset `JF`/`JT` carry.
#[inline(always)]
fn cmp(op: BinOp, x: u64, y: u64) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        other => unreachable!("non-comparison {other:?} in fused branch"),
    }
}

/// Run one packet (already in `phv`) through every stage, **in place**.
/// Faults abort mid-stage exactly like the interpreter; the caller rolls
/// back `undo` (the PHV content after a fault is unspecified).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_packet(
    prog: &CompiledProgram,
    ctables: &[CompiledTableState],
    regs: &mut [RegState],
    phv: &mut Phv,
    ctx: &mut ExecCtx,
    undo: &mut Vec<RegUndo>,
    stage_cost: &mut [u64],
) -> Result<(), SimError> {
    assert!(ctx.temps.len() >= prog.temp_count, "scratch must come from ExecCtx::for_program");
    assert!(phv.slots.len() == phv.masks.len(), "PHV built by Switch::build");
    assert!(stage_cost.len() >= prog.stages.len(), "one cost counter per stage");
    // `body` opens with a `Stage` mark (if it holds any code at all), so
    // the initial attribution stage is never actually charged.
    let mut cur = 0usize;
    let (start, end) = prog.body;
    let ExecCtx { temps, keys } = ctx;
    let mut view = ScalarView { phv, temps };
    exec_range(prog, ctables, regs, &mut view, keys, undo, stage_cost, &mut cur, start, end)
}

/// Execute `code[start..end]`: the single dispatch loop of the fast path.
/// Generic over [`PhvView`] so the identical loop runs one contiguous
/// packet ([`ScalarView`]) or one lane of an SoA batch ([`LaneView`] —
/// used by [`exec_batch`] for table-dispatched action bodies).
#[allow(clippy::too_many_arguments)]
fn exec_range<V: PhvView>(
    prog: &CompiledProgram,
    ctables: &[CompiledTableState],
    regs: &mut [RegState],
    view: &mut V,
    keys: &mut Vec<u64>,
    undo: &mut Vec<RegUndo>,
    stage_cost: &mut [u64],
    cur: &mut usize,
    start: u32,
    end: u32,
) -> Result<(), SimError> {
    let end = end as usize;
    assert!(end <= prog.code.len(), "code range within program");
    let mut pc = start as usize;
    let mut executed = 0u64;
    macro_rules! fault {
        ($e:expr) => {{
            stage_cost[*cur] += executed;
            return Err($e);
        }};
    }
    while pc < end {
        executed += 1;
        // SAFETY: `pc < end <= code.len()` (asserted above); every jump
        // target is patched to a position within its enclosing range.
        let instr = unsafe { prog.code.get_unchecked(pc) };
        match instr {
            Instr::LoadSlotDyn { dst, base, count, idx, diag } => {
                let i = ov(view, idx);
                if i >= *count as u64 {
                    fault!(SimError::IndexOutOfBounds {
                        what: prog.diags[*diag as usize].clone(),
                        index: i,
                        len: *count as usize,
                    });
                }
                // `i < count` just checked; `base + count <= len`
                // validated at build.
                let v = view.get(*base as usize + i as usize);
                view.set_temp(*dst, v);
            }
            Instr::LoadReg { dst, reg, cell } => {
                let c = ov(view, cell) as usize;
                let r = &regs[*reg as usize];
                match r.cells.get(c) {
                    Some(v) => view.set_temp(*dst, *v),
                    None => fault!(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    }),
                }
            }
            Instr::Bin { dst, op, a, b } => {
                let x = ov(view, a);
                let y = ov(view, b);
                let v = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            fault!(SimError::DivByZero);
                        }
                        x / y
                    }
                    BinOp::Lt => (x < y) as u64,
                    BinOp::Le => (x <= y) as u64,
                    BinOp::Gt => (x > y) as u64,
                    BinOp::Ge => (x >= y) as u64,
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ne => (x != y) as u64,
                    BinOp::And => (x != 0 && y != 0) as u64,
                    BinOp::Or => (x != 0 || y != 0) as u64,
                };
                view.set_temp(*dst, v);
            }
            Instr::Not { dst, a } => {
                let v = (ov(view, a) == 0) as u64;
                view.set_temp(*dst, v);
            }
            Instr::Neg { dst, a } => {
                let v = ov(view, a).wrapping_neg();
                view.set_temp(*dst, v);
            }
            Instr::HashInit { dst, val } => view.set_temp(*dst, *val),
            Instr::HashMix { acc, src } => {
                let v = splitmix(view.temp(*acc) ^ ov(view, src));
                view.set_temp(*acc, v);
            }
            Instr::HashMod { acc, range } => {
                let v = view.temp(*acc) % *range;
                view.set_temp(*acc, v);
            }
            Instr::HashMask { acc, mask } => {
                let v = view.temp(*acc) & *mask;
                view.set_temp(*acc, v);
            }
            Instr::Hash1Mask { slot, salt, src, mask } => {
                let h = splitmix(*salt ^ ov(view, src)) & *mask;
                view.set(*slot as usize, h);
            }
            Instr::Hash1Mod { slot, salt, src, range } => {
                let h = splitmix(*salt ^ ov(view, src)) % *range;
                view.set(*slot as usize, h);
            }
            Instr::StoreSlot { slot, src } => {
                let v = ov(view, src);
                view.set(*slot as usize, v);
            }
            Instr::StoreSlotDyn { base, count, idx, src, diag } => {
                let i = ov(view, idx);
                if i >= *count as u64 {
                    fault!(SimError::IndexOutOfBounds {
                        what: prog.diags[*diag as usize].clone(),
                        index: i,
                        len: *count as usize,
                    });
                }
                let v = ov(view, src);
                // As in `LoadSlotDyn` — window validated at build.
                view.set(*base as usize + i as usize, v);
            }
            Instr::StoreReg { reg, cell, src } => {
                let c = ov(view, cell) as usize;
                let v = ov(view, src);
                let r = &mut regs[*reg as usize];
                if c >= r.cells.len() {
                    fault!(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    });
                }
                undo.push((*reg as u32, c as u64, r.cells[c]));
                r.cells[c] = v & r.elem_mask;
            }
            Instr::RegAdd { reg, cell, add } => {
                let c = ov(view, cell) as usize;
                let v = ov(view, add);
                let r = &mut regs[*reg as usize];
                if c >= r.cells.len() {
                    fault!(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    });
                }
                let old = r.cells[c];
                undo.push((*reg as u32, c as u64, old));
                r.cells[c] = old.wrapping_add(v) & r.elem_mask;
            }
            Instr::SketchStep { idx_slot, salt, src, mask, reg, add, dst_slot } => {
                let h = splitmix(*salt ^ ov(view, src)) & *mask;
                view.set(*idx_slot as usize, h);
                // Read the index back through the slot so the cell matches
                // what the unfused `RegAdd` would have seen (the slot's own
                // width mask re-applies on store).
                let c = view.get(*idx_slot as usize) as usize;
                let v = ov(view, add);
                let r = &mut regs[*reg as usize];
                // In bounds by construction: [`peephole`] only forms this
                // instruction when `mask & slot-mask < cells.len()`, and
                // shards clone the register file at full length.
                let old = r.cells[c];
                undo.push((*reg as u32, c as u64, old));
                let new = old.wrapping_add(v) & r.elem_mask;
                r.cells[c] = new;
                view.set(*dst_slot as usize, new);
            }
            Instr::MinOrInit { slot, src } => {
                let x = ov(view, src);
                let cur = view.get(*slot as usize);
                if x < cur || cur == 0 {
                    view.set(*slot as usize, x);
                }
            }
            Instr::RegToSlot { slot, reg, cell } => {
                let c = ov(view, cell) as usize;
                let r = &regs[*reg as usize];
                match r.cells.get(c) {
                    Some(v) => {
                        let v = *v;
                        view.set(*slot as usize, v);
                    }
                    None => fault!(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    }),
                }
            }
            Instr::JFAnd { op1, a1, b1, op2, a2, b2, target } => {
                if !(cmp(*op1, ov(view, a1), ov(view, b1))
                    && cmp(*op2, ov(view, a2), ov(view, b2)))
                {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::JFOr { op1, a1, b1, op2, a2, b2, target } => {
                if !(cmp(*op1, ov(view, a1), ov(view, b1))
                    || cmp(*op2, ov(view, a2), ov(view, b2)))
                {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::JF { op, a, b, target } => {
                if !cmp(*op, ov(view, a), ov(view, b)) {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::JT { op, a, b, target } => {
                if cmp(*op, ov(view, a), ov(view, b)) {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::Jmp { target } => {
                pc = *target as usize;
                continue;
            }
            Instr::Stage { s } => {
                // The mark itself is free: `executed` already counted it.
                stage_cost[*cur] += executed - 1;
                executed = 0;
                *cur = *s as usize;
            }
            Instr::Apply { site } => {
                let site = &prog.apply_sites[*site as usize];
                keys.clear();
                for op in &site.key_ops {
                    keys.push(ov(view, op));
                }
                let action = match ctables[site.table as usize].entries.get(keys.as_slice()) {
                    Some(e) => {
                        for &(slot, val) in &e.data {
                            view.set(slot as usize, val);
                        }
                        Some(e.action)
                    }
                    None => match &prog.tables[site.table as usize].default_action {
                        DefaultAction::None => None,
                        DefaultAction::Run(id) => Some(*id),
                        DefaultAction::Unknown(name) => {
                            fault!(SimError::UnknownAction(name.clone()))
                        }
                    },
                };
                if let Some(id) = action {
                    let (bs, be) = prog.action_code[id as usize];
                    stage_cost[*cur] += executed;
                    executed = 0;
                    exec_range(
                        prog, ctables, regs, view, keys, undo, stage_cost, cur, bs, be,
                    )?;
                }
            }
        }
        pc += 1;
    }
    stage_cost[*cur] += executed;
    Ok(())
}

// ------------------------------------------------------- batch execution

/// Reusable scratch for the SoA batch executor: the column-major slot and
/// temp matrices plus per-lane divergence state. One per replay worker,
/// so batch execution allocates nothing per batch.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchCtx {
    /// Column-major slot matrix (`phv_len * n`): slot `s` of lane `l`
    /// lives at `slots[s * n + l]`. The caller gathers packet `l`'s input
    /// into column `l` before [`run_batch`] and may read the final PHV
    /// back out of the column afterwards.
    pub slots: Vec<u64>,
    /// Column-major temp matrix (`temp_count * n`).
    pub temps: Vec<u64>,
    /// Per-lane wait target: a lane executes pc iff `wait[lane] <= pc`.
    pub wait: Vec<u32>,
    /// Reusable table-key buffer.
    pub keys: Vec<u64>,
    /// Stage-cost scratch for the optimistic run, committed only when the
    /// whole batch retires fault-free.
    pub cost: Vec<u64>,
}

impl BatchCtx {
    /// Size the matrices for an `n`-lane batch of `prog`. The caller
    /// overwrites every input column before running.
    pub fn prepare(&mut self, prog: &CompiledProgram, phv_len: usize, n: usize) {
        self.slots.clear();
        self.slots.resize(phv_len * n, 0);
        self.temps.clear();
        self.temps.resize(prog.temp_count.max(1) * n, 0);
    }
}

/// Operand resolve for one lane of the batch matrices — a free function
/// (rather than a [`LaneView`] method) so the per-instruction lane loops
/// below can split-borrow `slots`/`temps` around it.
///
/// SAFETY: same argument as [`LaneView`] — slot/temp indices validated at
/// build time, matrix sizes asserted by [`run_batch`], `lane < n`.
#[inline(always)]
fn lane_ov(slots: &[u64], temps: &[u64], n: usize, lane: usize, o: &Opnd) -> u64 {
    match *o {
        Opnd::T(t) => unsafe { *temps.get_unchecked(t as usize * n + lane) },
        Opnd::S(s) => unsafe { *slots.get_unchecked(s as usize * n + lane) },
        Opnd::I(v) => v,
    }
}

/// Execute an `n`-lane SoA batch **instruction-major**: each bytecode
/// instruction runs over every active lane (a tight stride-1 column loop)
/// before the pc advances. Branch divergence is handled with per-lane
/// wait targets: all top-level jumps are forward (checked by
/// [`analyze_batch_safety`]), so a taken jump parks its lane until the pc
/// reaches the target. Requires `prog.batch_safe` — see
/// [`analyze_batch_safety`] for why that makes this bit-identical to
/// running the lanes one packet at a time.
///
/// Fault handling is optimistic: the hot path logs register writes in
/// `undo` as usual, and on the **first** fault in any lane the whole
/// batch's register writes are rolled back and `Err(())` returned with
/// nothing committed (stage costs accumulate in scratch and are
/// discarded). The caller replays the batch's packets through the scalar
/// path, which reproduces exact per-packet drop/rollback/cost semantics —
/// faults are rare, so the fault-free fast path pays nothing for them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch(
    prog: &CompiledProgram,
    ctables: &[CompiledTableState],
    regs: &mut [RegState],
    masks: &[u64],
    n: usize,
    bctx: &mut BatchCtx,
    undo: &mut Vec<RegUndo>,
    stage_cost: &mut [u64],
) -> Result<(), ()> {
    assert!(prog.batch_safe, "caller must check CompiledProgram::batch_safe");
    assert!(n > 0, "empty batch");
    assert_eq!(bctx.slots.len(), masks.len() * n, "matrices sized by BatchCtx::prepare");
    assert!(bctx.temps.len() >= prog.temp_count * n, "matrices sized by BatchCtx::prepare");
    assert!(stage_cost.len() >= prog.stages.len(), "one cost counter per stage");
    bctx.wait.clear();
    bctx.wait.resize(n, 0);
    bctx.cost.clear();
    bctx.cost.resize(stage_cost.len().max(1), 0);
    undo.clear();

    let mut cur = 0usize;
    let (start, end) = prog.body;
    match exec_batch(prog, ctables, regs, masks, n, bctx, undo, &mut cur, start, end) {
        Ok(()) => {
            for (dst, scratch) in stage_cost.iter_mut().zip(&bctx.cost) {
                *dst += *scratch;
            }
            Ok(())
        }
        Err(()) => {
            while let Some((reg, cell, old)) = undo.pop() {
                regs[reg as usize].cells[cell as usize] = old;
            }
            Err(())
        }
    }
}

/// The instruction-major dispatch loop behind [`run_batch`].
// Lane loops index `wait` alongside `slots`/`temps` at `base * n + lane`
// offsets; iterator forms would bury the SoA addressing.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn exec_batch(
    prog: &CompiledProgram,
    ctables: &[CompiledTableState],
    regs: &mut [RegState],
    masks: &[u64],
    n: usize,
    bctx: &mut BatchCtx,
    undo: &mut Vec<RegUndo>,
    cur: &mut usize,
    start: u32,
    end: u32,
) -> Result<(), ()> {
    let BatchCtx { slots, temps, wait, keys, cost } = bctx;
    let end = end as usize;
    assert!(end <= prog.code.len(), "code range within program");
    let mut pc = start as usize;
    // Wait targets of currently parked lanes (one entry per lane with
    // `wait[lane] > pc`), dropped as the pc reaches them. Bounded by `n`
    // and usually empty, so `n - parked.len()` is a cheap active count
    // for stage-cost attribution.
    let mut parked: Vec<u32> = Vec::new();
    while pc < end {
        let pc32 = pc as u32;
        if !parked.is_empty() {
            parked.retain(|&t| t > pc32);
        }
        let active = (n - parked.len()) as u64;
        // Every instruction charges one unit per active lane to the
        // current stage, exactly as the scalar loop's `executed` counter
        // does per packet (the `Stage` mark un-charges itself below).
        cost[*cur] += active;
        // SAFETY: `pc < end <= code.len()` (asserted above); every jump
        // target is patched to a position within its enclosing range.
        let instr = unsafe { prog.code.get_unchecked(pc) };
        match instr {
            Instr::LoadSlotDyn { dst, base, count, idx, .. } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let i = lane_ov(slots, temps, n, lane, idx);
                        if i >= *count as u64 {
                            return Err(());
                        }
                        let v = slots[(*base as usize + i as usize) * n + lane];
                        temps[*dst as usize * n + lane] = v;
                    }
                }
            }
            Instr::LoadReg { dst, reg, cell } => {
                let r = &regs[*reg as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let c = lane_ov(slots, temps, n, lane, cell) as usize;
                        match r.cells.get(c) {
                            Some(v) => temps[*dst as usize * n + lane] = *v,
                            None => return Err(()),
                        }
                    }
                }
            }
            Instr::Bin { dst, op, a, b } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let x = lane_ov(slots, temps, n, lane, a);
                        let y = lane_ov(slots, temps, n, lane, b);
                        let v = match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(());
                                }
                                x / y
                            }
                            BinOp::Lt => (x < y) as u64,
                            BinOp::Le => (x <= y) as u64,
                            BinOp::Gt => (x > y) as u64,
                            BinOp::Ge => (x >= y) as u64,
                            BinOp::Eq => (x == y) as u64,
                            BinOp::Ne => (x != y) as u64,
                            BinOp::And => (x != 0 && y != 0) as u64,
                            BinOp::Or => (x != 0 || y != 0) as u64,
                        };
                        temps[*dst as usize * n + lane] = v;
                    }
                }
            }
            Instr::Not { dst, a } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let v = (lane_ov(slots, temps, n, lane, a) == 0) as u64;
                        temps[*dst as usize * n + lane] = v;
                    }
                }
            }
            Instr::Neg { dst, a } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let v = lane_ov(slots, temps, n, lane, a).wrapping_neg();
                        temps[*dst as usize * n + lane] = v;
                    }
                }
            }
            Instr::HashInit { dst, val } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        temps[*dst as usize * n + lane] = *val;
                    }
                }
            }
            Instr::HashMix { acc, src } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let at = *acc as usize * n + lane;
                        temps[at] = splitmix(temps[at] ^ lane_ov(slots, temps, n, lane, src));
                    }
                }
            }
            Instr::HashMod { acc, range } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let at = *acc as usize * n + lane;
                        temps[at] %= *range;
                    }
                }
            }
            Instr::HashMask { acc, mask } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let at = *acc as usize * n + lane;
                        temps[at] &= *mask;
                    }
                }
            }
            Instr::Hash1Mask { slot, salt, src, mask } => {
                let m = masks[*slot as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let h = splitmix(*salt ^ lane_ov(slots, temps, n, lane, src)) & *mask;
                        slots[*slot as usize * n + lane] = h & m;
                    }
                }
            }
            Instr::Hash1Mod { slot, salt, src, range } => {
                let m = masks[*slot as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let h = splitmix(*salt ^ lane_ov(slots, temps, n, lane, src)) % *range;
                        slots[*slot as usize * n + lane] = h & m;
                    }
                }
            }
            Instr::StoreSlot { slot, src } => {
                let m = masks[*slot as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let v = lane_ov(slots, temps, n, lane, src);
                        slots[*slot as usize * n + lane] = v & m;
                    }
                }
            }
            Instr::StoreSlotDyn { base, count, idx, src, .. } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let i = lane_ov(slots, temps, n, lane, idx);
                        if i >= *count as u64 {
                            return Err(());
                        }
                        let v = lane_ov(slots, temps, n, lane, src);
                        let s = *base as usize + i as usize;
                        slots[s * n + lane] = v & masks[s];
                    }
                }
            }
            Instr::StoreReg { reg, cell, src } => {
                let r = &mut regs[*reg as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let c = lane_ov(slots, temps, n, lane, cell) as usize;
                        let v = lane_ov(slots, temps, n, lane, src);
                        if c >= r.cells.len() {
                            return Err(());
                        }
                        undo.push((*reg as u32, c as u64, r.cells[c]));
                        r.cells[c] = v & r.elem_mask;
                    }
                }
            }
            Instr::RegAdd { reg, cell, add } => {
                let r = &mut regs[*reg as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let c = lane_ov(slots, temps, n, lane, cell) as usize;
                        let v = lane_ov(slots, temps, n, lane, add);
                        if c >= r.cells.len() {
                            return Err(());
                        }
                        let old = r.cells[c];
                        undo.push((*reg as u32, c as u64, old));
                        r.cells[c] = old.wrapping_add(v) & r.elem_mask;
                    }
                }
            }
            Instr::SketchStep { idx_slot, salt, src, mask, reg, add, dst_slot } => {
                let im = masks[*idx_slot as usize];
                let dm = masks[*dst_slot as usize];
                let r = &mut regs[*reg as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let h = splitmix(*salt ^ lane_ov(slots, temps, n, lane, src)) & *mask;
                        // Store, then read the cell index back through the
                        // slot mask, exactly as the scalar step does.
                        let h = h & im;
                        slots[*idx_slot as usize * n + lane] = h;
                        let v = lane_ov(slots, temps, n, lane, add);
                        // In bounds by construction ([`peephole`]).
                        let old = r.cells[h as usize];
                        undo.push((*reg as u32, h, old));
                        let new = old.wrapping_add(v) & r.elem_mask;
                        r.cells[h as usize] = new;
                        slots[*dst_slot as usize * n + lane] = new & dm;
                    }
                }
            }
            Instr::MinOrInit { slot, src } => {
                let m = masks[*slot as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let x = lane_ov(slots, temps, n, lane, src);
                        let at = *slot as usize * n + lane;
                        let curv = slots[at];
                        if x < curv || curv == 0 {
                            slots[at] = x & m;
                        }
                    }
                }
            }
            Instr::RegToSlot { slot, reg, cell } => {
                let m = masks[*slot as usize];
                let r = &regs[*reg as usize];
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        let c = lane_ov(slots, temps, n, lane, cell) as usize;
                        match r.cells.get(c) {
                            Some(v) => slots[*slot as usize * n + lane] = *v & m,
                            None => return Err(()),
                        }
                    }
                }
            }
            Instr::JF { op, a, b, target } => {
                for lane in 0..n {
                    if wait[lane] <= pc32
                        && !cmp(
                            *op,
                            lane_ov(slots, temps, n, lane, a),
                            lane_ov(slots, temps, n, lane, b),
                        )
                    {
                        wait[lane] = *target;
                        parked.push(*target);
                    }
                }
            }
            Instr::JT { op, a, b, target } => {
                for lane in 0..n {
                    if wait[lane] <= pc32
                        && cmp(
                            *op,
                            lane_ov(slots, temps, n, lane, a),
                            lane_ov(slots, temps, n, lane, b),
                        )
                    {
                        wait[lane] = *target;
                        parked.push(*target);
                    }
                }
            }
            Instr::JFAnd { op1, a1, b1, op2, a2, b2, target } => {
                for lane in 0..n {
                    if wait[lane] <= pc32
                        && !(cmp(
                            *op1,
                            lane_ov(slots, temps, n, lane, a1),
                            lane_ov(slots, temps, n, lane, b1),
                        ) && cmp(
                            *op2,
                            lane_ov(slots, temps, n, lane, a2),
                            lane_ov(slots, temps, n, lane, b2),
                        ))
                    {
                        wait[lane] = *target;
                        parked.push(*target);
                    }
                }
            }
            Instr::JFOr { op1, a1, b1, op2, a2, b2, target } => {
                for lane in 0..n {
                    if wait[lane] <= pc32
                        && !(cmp(
                            *op1,
                            lane_ov(slots, temps, n, lane, a1),
                            lane_ov(slots, temps, n, lane, b1),
                        ) || cmp(
                            *op2,
                            lane_ov(slots, temps, n, lane, a2),
                            lane_ov(slots, temps, n, lane, b2),
                        ))
                    {
                        wait[lane] = *target;
                        parked.push(*target);
                    }
                }
            }
            Instr::Jmp { target } => {
                for lane in 0..n {
                    if wait[lane] <= pc32 {
                        wait[lane] = *target;
                        parked.push(*target);
                    }
                }
            }
            Instr::Stage { s } => {
                // The mark itself is free, as in the scalar loop.
                cost[*cur] -= active;
                *cur = *s as usize;
            }
            Instr::Apply { site } => {
                let site = &prog.apply_sites[*site as usize];
                // The whole lookup + action body runs scalar per lane, in
                // lane order — safe because `batch_safe` guarantees any
                // register the actions touch belongs to this atom alone.
                for lane in 0..n {
                    if wait[lane] > pc32 {
                        continue;
                    }
                    keys.clear();
                    for op in &site.key_ops {
                        keys.push(lane_ov(slots, temps, n, lane, op));
                    }
                    let action = match ctables[site.table as usize].entries.get(keys.as_slice())
                    {
                        Some(e) => {
                            for &(slot, val) in &e.data {
                                slots[slot as usize * n + lane] = val & masks[slot as usize];
                            }
                            Some(e.action)
                        }
                        None => match &prog.tables[site.table as usize].default_action {
                            DefaultAction::None => None,
                            DefaultAction::Run(id) => Some(*id),
                            DefaultAction::Unknown(_) => return Err(()),
                        },
                    };
                    if let Some(id) = action {
                        let (abs, abe) = prog.action_code[id as usize];
                        let mut view =
                            LaneView { slots: &mut slots[..], masks, temps: &mut temps[..], n, lane };
                        if exec_range(prog, ctables, regs, &mut view, keys, undo, cost, cur, abs, abe)
                            .is_err()
                        {
                            return Err(());
                        }
                    }
                }
            }
        }
        pc += 1;
    }
    Ok(())
}

/// Human-readable listing of the lowered program, one stage per section —
/// the ground truth for "what does this packet actually execute".
pub(crate) fn disasm(prog: &CompiledProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (s, &(start, end)) in prog.stages.iter().enumerate() {
        let _ = writeln!(out, "stage {s}: [{start}..{end}]");
        for pc in start as usize..end as usize {
            let _ = writeln!(out, "  {pc:>5}  {:?}", prog.code[pc]);
        }
    }
    for (id, &(start, end)) in prog.action_code.iter().enumerate() {
        let name = prog
            .action_ids
            .iter()
            .find(|(_, &v)| v == id as u32)
            .map(|(k, _)| k.as_str())
            .unwrap_or("?");
        let _ = writeln!(out, "action {id} ({name}): [{start}..{end}]");
        for pc in start as usize..end as usize {
            let _ = writeln!(out, "  {pc:>5}  {:?}", prog.code[pc]);
        }
    }
    out
}

pub(crate) use crate::interp::splitmix;

//! Runtime state of a simulated switch: register files, table entries, and
//! the packet header vector (PHV).

use std::collections::HashMap;

/// One register array instance living in one stage.
#[derive(Debug, Clone)]
pub struct RegState {
    pub reg: String,
    pub instance: usize,
    pub stage: usize,
    pub elem_mask: u64,
    pub cells: Vec<u64>,
}

impl RegState {
    pub fn new(reg: String, instance: usize, stage: usize, elem_bits: u32, cells: u64) -> Self {
        RegState {
            reg,
            instance,
            stage,
            elem_mask: mask(elem_bits),
            cells: vec![0; cells as usize],
        }
    }

    /// Zero all cells (epoch reset).
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }
}

/// Bit mask for an `n`-bit field (`n <= 64`; wider fields saturate to full
/// 64-bit significance — value semantics, not bit-exact beyond 64 bits).
pub fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// One installed match-action entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Action to run on match (must be one of the table's actions).
    pub action: String,
    /// Action data: metadata fields set on match before the action body
    /// runs (models P4 action parameters supplied by the control plane).
    pub data: Vec<(String, u64)>,
}

/// Runtime state of one exact-match table.
#[derive(Debug, Clone, Default)]
pub struct TableState {
    pub entries: HashMap<Vec<u64>, TableEntry>,
    pub default_action: Option<String>,
    pub size: u64,
}

impl TableState {
    /// True when no more entries fit.
    pub fn is_full(&self) -> bool {
        (self.entries.len() as u64) >= self.size
    }
}

/// The packet header vector: one `u64` per field slot, with per-slot width
/// masks. Slot layout is fixed at switch build time.
#[derive(Debug, Clone)]
pub struct Phv {
    pub slots: Vec<u64>,
    pub masks: Vec<u64>,
}

impl Phv {
    pub fn new(masks: Vec<u64>) -> Self {
        Phv { slots: vec![0; masks.len()], masks }
    }

    /// Write a value, truncated to the slot's width.
    pub fn set(&mut self, slot: usize, value: u64) {
        self.slots[slot] = value & self.masks[slot];
    }

    pub fn get(&self, slot: usize) -> u64 {
        self.slots[slot]
    }

    /// Zero every slot (per-packet reset).
    pub fn clear(&mut self) {
        self.slots.fill(0);
    }
}

/// Scatter a packet's slot row into column `lane` of a column-major SoA
/// matrix (`slot s` of lane `l` at `soa[s * n + l]`, `n` lanes total) —
/// the gather half of batched replay.
pub(crate) fn scatter_lane(soa: &mut [u64], n: usize, lane: usize, slots: &[u64]) {
    debug_assert_eq!(soa.len(), slots.len() * n);
    debug_assert!(lane < n);
    for (s, &v) in slots.iter().enumerate() {
        soa[s * n + lane] = v;
    }
}

/// Read column `lane` of a column-major SoA matrix back into a slot row —
/// the inverse of [`scatter_lane`], used to expose a batch's final PHV.
pub(crate) fn gather_lane(soa: &[u64], n: usize, lane: usize, slots: &mut [u64]) {
    debug_assert_eq!(soa.len(), slots.len() * n);
    debug_assert!(lane < n);
    for (s, v) in slots.iter_mut().enumerate() {
        *v = soa[s * n + lane];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(32), 0xFFFF_FFFF);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(mask(128), u64::MAX);
    }

    #[test]
    fn phv_set_truncates() {
        let mut phv = Phv::new(vec![mask(8), mask(32)]);
        phv.set(0, 0x1FF);
        assert_eq!(phv.get(0), 0xFF);
        phv.set(1, u64::MAX);
        assert_eq!(phv.get(1), 0xFFFF_FFFF);
    }

    #[test]
    fn register_clear() {
        let mut r = RegState::new("cms".into(), 0, 1, 32, 4);
        r.cells[2] = 99;
        r.clear();
        assert!(r.cells.iter().all(|&c| c == 0));
    }

    #[test]
    fn table_capacity() {
        let mut t = TableState { size: 1, ..Default::default() };
        assert!(!t.is_full());
        t.entries.insert(vec![1], TableEntry { action: "a".into(), data: vec![] });
        assert!(t.is_full());
    }
}

//! The native execution engine: compile [`crate::codegen`] output with
//! the in-container `rustc` and drive it as a `dlopen`'d cdylib.
//!
//! Bridge choice: a cdylib loaded in-process. The alternative — a
//! subprocess speaking a length-prefixed PHV/register protocol over
//! stdio — costs two context switches plus serialization per packet,
//! which caps throughput far below the bytecode engine; a `dlopen`'d
//! function call costs nanoseconds. `dlopen`/`dlsym` are declared as
//! bare `extern "C"` against libc (glibc ≥ 2.34 hosts them in libc
//! proper), so no external crate is needed on either side of the bridge.
//!
//! Register state stays host-owned: [`prepare_native`] caches one cell
//! pointer per register instance ([`RegState::cells`] never resizes
//! after build, and the heap buffers are stable across `Switch` moves),
//! and the generated code mutates those cells directly. Control-plane
//! reads/writes and snapshots therefore work unchanged under
//! [`Backend::Native`]. Table entries are forwarded at install time in
//! the bytecode backend's pre-resolved `CEntry` form, using the same
//! sorted-by-name dense ids.
//!
//! Failure is typed, never a panic: a missing `rustc` is
//! [`NativeError::RustcMissing`], a codegen bug that fails to compile is
//! [`NativeError::CompileFailed`] with the full stderr. Lazy preparation
//! from [`Switch::run_packet`] surfaces these as
//! [`SimError::BadProgram`]; callers wanting the typed value call
//! [`Switch::prepare_native`] first.
//!
//! [`prepare_native`]: Switch::prepare_native
//! [`RegState::cells`]: crate::RegState
//! [`Backend::Native`]: crate::Backend::Native

use std::ffi::CString;
use std::fmt;
use std::os::raw::{c_char, c_int, c_void};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::codegen;
use crate::compiled::{CEntry, DefaultAction};
use crate::interp::{SimError, Switch};

// ------------------------------------------------------------- errors

/// Why the native backend could not be prepared. Every variant is a
/// diagnostic, not a panic — `rustc` going missing or a codegen bug must
/// degrade into a reportable error (`tests/no_panic.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NativeError {
    /// No usable `rustc` on PATH (or at `$P4ALL_RUSTC`).
    RustcMissing(String),
    /// `rustc` rejected the generated source — a codegen bug by
    /// definition; the full compiler stderr is preserved.
    CompileFailed { stderr: String },
    /// Filesystem trouble writing or cleaning the scratch crate.
    Io(String),
    /// The built cdylib failed to load or is ABI-incompatible.
    Load(String),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::RustcMissing(detail) => write!(f, "rustc unavailable: {detail}"),
            NativeError::CompileFailed { stderr } => {
                write!(f, "generated code failed to compile:\n{stderr}")
            }
            NativeError::Io(detail) => write!(f, "i/o error: {detail}"),
            NativeError::Load(detail) => write!(f, "cdylib load error: {detail}"),
        }
    }
}

impl std::error::Error for NativeError {}

/// Timings and sizes from one [`Switch::prepare_native`] call, recorded
/// into the compile trace by the CLI (`native-gen` / `native-rustc`
/// passes).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeReport {
    /// Time lowering the `Switch` to Rust source.
    pub gen_time: Duration,
    /// Time `rustc` spent building the cdylib.
    pub rustc_time: Duration,
    /// Size of the generated source in bytes.
    pub source_bytes: usize,
}

// ----------------------------------------------------------- dl bridge

extern "C" {
    fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlerror() -> *mut c_char;
    fn dlclose(handle: *mut c_void) -> c_int;
}

const RTLD_NOW: c_int = 2;

type VersionFn = unsafe extern "C" fn() -> u64;
type NewFn = unsafe extern "C" fn() -> *mut c_void;
type FreeFn = unsafe extern "C" fn(*mut c_void);
type RunFn = unsafe extern "C" fn(*mut c_void, *mut u64, *const *mut u64, *mut u64) -> u64;
/// `p4n_run_batch(state, phvs, n, regs, fault) -> first faulting index
/// (== n on success)`: `n` packets back to back, one FFI call.
type BatchRunFn =
    unsafe extern "C" fn(*mut c_void, *mut u64, u64, *const *mut u64, *mut u64) -> u64;
type InstallFn =
    unsafe extern "C" fn(*mut c_void, u64, *const u64, u64, u64, *const u64, u64);
type RemoveFn = unsafe extern "C" fn(*mut c_void, u64, *const u64, u64);
type ClearFn = unsafe extern "C" fn(*mut c_void, u64);

fn last_dl_error() -> String {
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dl error".to_string()
        } else {
            std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

unsafe fn resolve(handle: *mut c_void, name: &str) -> Result<*mut c_void, NativeError> {
    let c = CString::new(name).expect("symbol names have no NULs");
    dlerror(); // clear any stale error
    let sym = dlsym(handle, c.as_ptr());
    if sym.is_null() {
        return Err(NativeError::Load(format!("symbol `{name}` missing: {}", last_dl_error())));
    }
    Ok(sym)
}

// ---------------------------------------------------------- compiling

fn rustc_name() -> std::ffi::OsString {
    std::env::var_os("P4ALL_RUSTC").unwrap_or_else(|| "rustc".into())
}

/// Is a usable `rustc` on PATH? Probed once per process; the fuzz
/// harness and test suites use this to skip native checks gracefully.
pub fn rustc_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        Command::new(rustc_name())
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

/// Write `source` into `dir` and build it as an optimized cdylib with a
/// bare `rustc` invocation (no cargo, no external crates).
pub(crate) fn compile_cdylib(dir: &Path, source: &str) -> Result<PathBuf, NativeError> {
    std::fs::create_dir_all(dir).map_err(|e| NativeError::Io(e.to_string()))?;
    let src_path = dir.join("p4n.rs");
    let lib_path = dir.join("libp4n.so");
    std::fs::write(&src_path, source).map_err(|e| NativeError::Io(e.to_string()))?;
    let out = Command::new(rustc_name())
        .args([
            "--edition",
            "2021",
            "--crate-name",
            "p4all_native",
            "--crate-type",
            "cdylib",
            "-C",
            "opt-level=3",
            "-C",
            "codegen-units=1",
            "-C",
            "debuginfo=0",
            "-o",
        ])
        .arg(&lib_path)
        .arg(&src_path)
        .output();
    match out {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(NativeError::RustcMissing(
            format!("`{}` not found on PATH", rustc_name().to_string_lossy()),
        )),
        Err(e) => Err(NativeError::Io(e.to_string())),
        Ok(o) if !o.status.success() => Err(NativeError::CompileFailed {
            stderr: String::from_utf8_lossy(&o.stderr).into_owned(),
        }),
        Ok(_) => Ok(lib_path),
    }
}

fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "p4all-native-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

// ------------------------------------------------------------- engine

/// A loaded native pipeline: the dlopen handle, its opaque `State`, the
/// resolved entry points, and the host-side metadata needed to turn
/// fault records back into exact [`SimError`] values.
pub(crate) struct NativeEngine {
    handle: *mut c_void,
    state: *mut c_void,
    run: RunFn,
    run_batch: BatchRunFn,
    install_fn: InstallFn,
    remove_fn: RemoveFn,
    clear_fn: ClearFn,
    free_fn: FreeFn,
    /// One cell pointer per register instance, in register-index order.
    reg_ptrs: Vec<*mut u64>,
    /// Diagnostic strings for dynamic-slot bounds faults (code 2).
    diags: Vec<String>,
    /// Declared-but-uncompiled default action names by dense table id
    /// (code 4).
    unknown_defaults: Vec<Option<String>>,
    /// Scratch crate directory, removed on drop.
    dir: PathBuf,
}

impl NativeEngine {
    pub(crate) fn install(&self, table: u64, key: &[u64], entry: &CEntry) {
        let data: Vec<u64> =
            entry.data.iter().flat_map(|&(slot, val)| [slot as u64, val]).collect();
        unsafe {
            (self.install_fn)(
                self.state,
                table,
                key.as_ptr(),
                key.len() as u64,
                entry.action as u64,
                data.as_ptr(),
                entry.data.len() as u64,
            )
        }
    }

    pub(crate) fn remove(&self, table: u64, key: &[u64]) {
        unsafe { (self.remove_fn)(self.state, table, key.as_ptr(), key.len() as u64) }
    }

    pub(crate) fn clear_table(&self, table: u64) {
        unsafe { (self.clear_fn)(self.state, table) }
    }
}

impl Drop for NativeEngine {
    fn drop(&mut self) {
        unsafe {
            (self.free_fn)(self.state);
            dlclose(self.handle);
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ------------------------------------------------------ switch methods

impl Switch {
    /// The generated Rust source for this switch, for diagnostics and
    /// the codegen test suite. Deterministic: byte-identical across
    /// calls for an unchanged `Switch`.
    pub fn native_source(&self) -> String {
        codegen::generate(self).source
    }

    /// Generate, compile, load, and populate the native engine. Called
    /// lazily by [`Switch::run_packet`] under [`crate::Backend::Native`];
    /// call it explicitly to get the typed error and the build timings.
    /// Idempotent: a second call on a prepared switch is a no-op
    /// returning a zeroed report.
    pub fn prepare_native(&mut self) -> Result<NativeReport, NativeError> {
        if self.native.is_some() {
            return Ok(NativeReport::default());
        }

        let t_gen = Instant::now();
        let generated = codegen::generate(self);
        let gen_time = t_gen.elapsed();
        let source_bytes = generated.source.len();

        let dir = scratch_dir();
        let t_rustc = Instant::now();
        let lib_path = match compile_cdylib(&dir, &generated.source) {
            Ok(p) => p,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        let rustc_time = t_rustc.elapsed();

        let path_c = CString::new(lib_path.as_os_str().to_string_lossy().into_owned())
            .map_err(|_| NativeError::Load("NUL in scratch path".to_string()))?;
        let handle = unsafe { dlopen(path_c.as_ptr(), RTLD_NOW) };
        if handle.is_null() {
            let err = NativeError::Load(last_dl_error());
            let _ = std::fs::remove_dir_all(&dir);
            return Err(err);
        }

        let engine = match unsafe { Self::link_engine(handle) } {
            Ok((run, run_batch, install_fn, remove_fn, clear_fn, free_fn, new_fn)) => {
                let state = unsafe { new_fn() };
                if state.is_null() {
                    unsafe { dlclose(handle) };
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(NativeError::Load("p4n_new returned null".to_string()));
                }
                NativeEngine {
                    handle,
                    state,
                    run,
                    run_batch,
                    install_fn,
                    remove_fn,
                    clear_fn,
                    free_fn,
                    reg_ptrs: Vec::new(),
                    diags: generated.diags,
                    unknown_defaults: self
                        .compiled
                        .tables
                        .iter()
                        .map(|t| match &t.default_action {
                            DefaultAction::Unknown(name) => Some(name.clone()),
                            _ => None,
                        })
                        .collect(),
                    dir,
                }
            }
            Err(e) => {
                unsafe { dlclose(handle) };
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };

        // Mirror entries installed before preparation. The per-table
        // iteration order is irrelevant: installs commute.
        for (name, ts) in self.tables() {
            let tid = self.compiled.table_ids[name] as u64;
            for (key, entry) in &ts.entries {
                let centry = crate::compiled::compile_entry(self, &self.compiled.action_ids, entry);
                engine.install(tid, key, &centry);
            }
        }

        let mut engine = engine;
        // Cell pointers are stable: `cells` never resizes after build,
        // and Vec heap buffers survive moves of the owning `Switch`.
        engine.reg_ptrs = self.registers.iter_mut().map(|r| r.cells.as_mut_ptr()).collect();
        self.native = Some(engine);
        Ok(NativeReport { gen_time, rustc_time, source_bytes })
    }

    #[allow(clippy::type_complexity)]
    unsafe fn link_engine(
        handle: *mut c_void,
    ) -> Result<(RunFn, BatchRunFn, InstallFn, RemoveFn, ClearFn, FreeFn, NewFn), NativeError>
    {
        let version: VersionFn = std::mem::transmute(resolve(handle, "p4n_abi_version")?);
        let got = version();
        // v2 added the batched entry point `p4n_run_batch`.
        if got != 2 {
            return Err(NativeError::Load(format!("ABI version mismatch: got {got}, want 2")));
        }
        let run: RunFn = std::mem::transmute(resolve(handle, "p4n_run_packet")?);
        let run_batch: BatchRunFn = std::mem::transmute(resolve(handle, "p4n_run_batch")?);
        let install_fn: InstallFn = std::mem::transmute(resolve(handle, "p4n_install")?);
        let remove_fn: RemoveFn = std::mem::transmute(resolve(handle, "p4n_remove")?);
        let clear_fn: ClearFn = std::mem::transmute(resolve(handle, "p4n_clear_table")?);
        let free_fn: FreeFn = std::mem::transmute(resolve(handle, "p4n_free")?);
        let new_fn: NewFn = std::mem::transmute(resolve(handle, "p4n_new")?);
        Ok((run, run_batch, install_fn, remove_fn, clear_fn, free_fn, new_fn))
    }

    /// Execute one packet on the native engine, mapping the 4-word fault
    /// record back to the exact [`SimError`] the interpreter would have
    /// produced. The generated code rolls its own register writes back
    /// before returning a fault, so the host-side undo log stays empty.
    pub(crate) fn run_packet_native(&mut self) -> Result<(), SimError> {
        if self.native.is_none() {
            self.prepare_native()
                .map_err(|e| SimError::BadProgram(format!("native backend unavailable: {e}")))?;
        }
        let phv_ptr = self.cur.slots.as_mut_ptr();
        let engine = self.native.as_ref().expect("prepared above");
        let mut fault = [0u64; 4];
        let code = unsafe {
            (engine.run)(engine.state, phv_ptr, engine.reg_ptrs.as_ptr(), fault.as_mut_ptr())
        };
        match code {
            0 => Ok(()),
            1 => Err(SimError::DivByZero),
            2 => Err(SimError::IndexOutOfBounds {
                what: engine.diags.get(fault[1] as usize).cloned().unwrap_or_default(),
                index: fault[2],
                len: fault[3] as usize,
            }),
            3 => {
                let r = &self.registers[fault[1] as usize];
                Err(SimError::IndexOutOfBounds {
                    what: format!("{}[{}]", r.reg, r.instance),
                    index: fault[2],
                    len: fault[3] as usize,
                })
            }
            4 => Err(SimError::UnknownAction(
                engine
                    .unknown_defaults
                    .get(fault[1] as usize)
                    .and_then(|n| n.clone())
                    .unwrap_or_default(),
            )),
            other => {
                Err(SimError::BadProgram(format!("native engine returned unknown fault code {other}")))
            }
        }
    }

    /// Batched native trace replay: packets are packed back to back and
    /// executed through `p4n_run_batch`, one FFI call per `width`-packet
    /// batch instead of one per packet. Returns the drop count, or
    /// `None` when the native engine can't be prepared (the caller's
    /// scalar loop then reproduces the per-packet error path exactly).
    ///
    /// A fault inside a batch is resumed after: the generated code rolls
    /// the faulting packet's register writes back and reports its index,
    /// and execution continues at the next packet — identical drop and
    /// state semantics to the scalar loop.
    pub(crate) fn run_trace_native_batched(
        &mut self,
        trace: &[crate::state::Phv],
        width: usize,
    ) -> Option<u64> {
        let stride = self.masks.len();
        if stride == 0 {
            return None;
        }
        if self.native.is_none() && self.prepare_native().is_err() {
            return None;
        }
        let engine = self.native.as_ref().expect("prepared above");
        let mut buf: Vec<u64> = vec![0; width * stride];
        let mut fault = [0u64; 4];
        let mut dropped = 0u64;
        for chunk in trace.chunks(width) {
            let n = chunk.len();
            for (i, p) in chunk.iter().enumerate() {
                buf[i * stride..(i + 1) * stride].copy_from_slice(&p.slots);
            }
            let mut start = 0usize;
            while start < n {
                let ret = unsafe {
                    (engine.run_batch)(
                        engine.state,
                        buf.as_mut_ptr().add(start * stride),
                        (n - start) as u64,
                        engine.reg_ptrs.as_ptr(),
                        fault.as_mut_ptr(),
                    )
                } as usize;
                if ret == n - start {
                    break;
                }
                dropped += 1;
                start += ret + 1;
            }
            // The batch ran in place: the last row is the final PHV (on a
            // fault it holds the partially-executed PHV, exactly like the
            // scalar path leaves `cur`).
            self.cur.slots.copy_from_slice(&buf[(n - 1) * stride..n * stride]);
        }
        Some(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compile failure must come back as a typed diagnostic carrying
    /// the rustc stderr, never a panic.
    #[test]
    fn bad_source_reports_compile_failed() {
        if !rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let dir = scratch_dir();
        let err = compile_cdylib(&dir, "fn broken( {").expect_err("must not compile");
        match err {
            NativeError::CompileFailed { stderr } => {
                assert!(stderr.contains("error"), "stderr should carry the rustc error: {stderr}")
            }
            other => panic!("expected CompileFailed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

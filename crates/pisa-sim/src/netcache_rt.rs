//! NetCache runtime: the control loop that turns a compiled NetCache data
//! plane into a working key-value cache.
//!
//! The data plane (built from the elastic NetCache program) provides:
//! a count-min sketch that tracks per-key popularity and leaves the
//! minimum estimate in a metadata field, plus an exact-match cache table
//! whose hit action reads the value registers. This runtime implements the
//! controller: it promotes keys whose estimate crosses a threshold into
//! free key-value slots, and resets the sketch every epoch (as NetCache's
//! controller does to age out stale popularity).

use std::collections::HashMap;

use crate::interp::{SimError, Switch};

/// Field/register/table naming contract between the P4All program and the
/// runtime, plus controller parameters.
#[derive(Debug, Clone)]
pub struct NetCacheConfig {
    /// Exact-match cache table name.
    pub cache_table: String,
    /// Action installed for cached keys.
    pub hit_action: String,
    /// Metadata flag the hit action sets to 1.
    pub hit_flag_meta: String,
    /// Metadata field holding the CMS minimum estimate.
    pub min_meta: String,
    /// Metadata fields the table entry data populates: value-store slice
    /// (register instance) and index within it.
    pub slice_meta: String,
    pub idx_meta: String,
    /// Metadata field the data plane writes the cached value into.
    pub value_meta: String,
    /// Key-value value register and CMS register names.
    pub kv_register: String,
    pub cms_register: String,
    /// Header field carrying the key.
    pub key_header: String,
    /// Promote a key once its estimate reaches this count.
    pub promote_threshold: u64,
    /// Reset the CMS every this many packets (0 = never).
    pub epoch_packets: usize,
}

impl Default for NetCacheConfig {
    fn default() -> Self {
        NetCacheConfig {
            cache_table: "cache".into(),
            hit_action: "cache_hit".into(),
            hit_flag_meta: "cache_hit".into(),
            min_meta: "cms_min".into(),
            slice_meta: "kv_slice".into(),
            idx_meta: "kv_idx".into(),
            value_meta: "kv_val".into(),
            kv_register: "kvs".into(),
            cms_register: "cms".into(),
            key_header: "key".into(),
            promote_threshold: 4,
            epoch_packets: 100_000,
        }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCacheStats {
    pub packets: u64,
    pub hits: u64,
    pub misses: u64,
    pub promotions: u64,
    pub epochs: u64,
}

impl NetCacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hits as f64 / self.packets as f64
        }
    }
}

/// The controller plus the switch it drives.
pub struct NetCacheRuntime {
    pub switch: Switch,
    cfg: NetCacheConfig,
    /// key -> (slice, idx)
    cache: HashMap<u64, (usize, usize)>,
    free: Vec<(usize, usize)>,
    stats: NetCacheStats,
    since_epoch: usize,
}

impl NetCacheRuntime {
    /// Wrap a compiled NetCache switch. Discovers the key-value slot pool
    /// from the placed `kv_register` instances.
    pub fn new(switch: Switch, cfg: NetCacheConfig) -> Result<Self, SimError> {
        let slices = switch.register_instances(&cfg.kv_register);
        let mut free = Vec::new();
        for slice in 0..slices {
            // Instances may be non-contiguous if some iterations were
            // dropped; probe each.
            if let Ok(cells) = switch.register_cells(&cfg.kv_register, slice) {
                for idx in 0..cells {
                    free.push((slice, idx));
                }
            }
        }
        free.reverse(); // pop from slice 0 upward
        Ok(NetCacheRuntime {
            switch,
            cfg,
            cache: HashMap::new(),
            free,
            stats: NetCacheStats::default(),
            since_epoch: 0,
        })
    }

    /// Number of key-value slots (the cache capacity).
    pub fn capacity(&self) -> usize {
        self.free.len() + self.cache.len()
    }

    /// Process one key request. Returns `(hit, value)` where `value` is the
    /// cached value on a hit.
    pub fn process(&mut self, key: u64, value: u64) -> Result<(bool, u64), SimError> {
        self.stats.packets += 1;
        self.switch.begin_packet();
        self.switch.set_header(&self.cfg.key_header, key)?;
        self.switch.run_packet()?;
        let hit = self.switch.meta(&self.cfg.hit_flag_meta)? == 1;
        let mut got = 0;
        if hit {
            self.stats.hits += 1;
            got = self.switch.meta(&self.cfg.value_meta)?;
        } else {
            self.stats.misses += 1;
            let est = self.switch.meta(&self.cfg.min_meta)?;
            if est >= self.cfg.promote_threshold && !self.cache.contains_key(&key) {
                if let Some((slice, idx)) = self.free.pop() {
                    self.promote(key, value, slice, idx)?;
                }
            }
        }
        self.since_epoch += 1;
        if self.cfg.epoch_packets > 0 && self.since_epoch >= self.cfg.epoch_packets {
            self.since_epoch = 0;
            self.stats.epochs += 1;
            self.switch.clear_register(&self.cfg.cms_register);
        }
        Ok((hit, got))
    }

    fn promote(&mut self, key: u64, value: u64, slice: usize, idx: usize) -> Result<(), SimError> {
        self.switch.write_register(&self.cfg.kv_register, slice, idx, value)?;
        self.switch.install_entry(
            &self.cfg.cache_table,
            vec![key],
            &self.cfg.hit_action,
            &[
                (self.cfg.slice_meta.as_str(), slice as u64),
                (self.cfg.idx_meta.as_str(), idx as u64),
            ],
        )?;
        self.cache.insert(key, (slice, idx));
        self.stats.promotions += 1;
        Ok(())
    }

    /// Currently cached key count.
    pub fn cached_keys(&self) -> usize {
        self.cache.len()
    }

    /// The underlying switch, for state inspection (register dumps,
    /// stage-cost telemetry) without tearing the runtime down.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    pub fn stats(&self) -> NetCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    /// A compact NetCache written in the P4All dialect: elastic CMS plus an
    /// elastic sliced key-value store behind an exact-match cache table.
    pub const NETCACHE_MINI: &str = r#"
        symbolic int rows;
        symbolic int cols;
        symbolic int kv_slices;
        symbolic int kv_cols;
        assume rows >= 2 && rows <= 2;
        assume cols >= 8 && cols <= 8;
        assume kv_slices >= 1;
        assume kv_cols >= 4 && kv_cols <= 4;
        optimize 0.4 * (rows * cols) + 0.6 * (kv_slices * kv_cols);

        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> cms_min;
            bit<8> cache_hit;
            bit<32> kv_slice;
            bit<32> kv_idx;
            bit<64> kv_val;
        }
        register<bit<32>>[cols][rows] cms;
        register<bit<64>>[kv_cols][kv_slices] kvs;

        action cache_hit_act() { meta.cache_hit = 1; }
        action cache_miss_act() { meta.cache_hit = 0; }
        table cache {
            key = { hdr.key; }
            actions = { cache_hit_act; cache_miss_act; }
            size = 1024;
            default_action = cache_miss_act;
        }

        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] { meta.cms_min = meta.count[i]; }
        action kv_read()[int j] {
            meta.kv_val = kvs[j][meta.kv_idx];
        }

        control lookup() { apply { cache.apply(); } }
        control sketch() { apply { for (i < rows) { incr()[i]; } } }
        control minimum() {
            apply {
                for (i < rows) {
                    if (meta.count[i] < meta.cms_min || meta.cms_min == 0) { set_min()[i]; }
                }
            }
        }
        control serve() {
            apply {
                for (j < kv_slices) {
                    if (meta.cache_hit == 1 && meta.kv_slice == j) { kv_read()[j]; }
                }
            }
        }
        control Main() {
            apply {
                lookup.apply();
                sketch.apply();
                minimum.apply();
                serve.apply();
            }
        }
    "#;

    fn build_runtime(threshold: u64) -> NetCacheRuntime {
        let target = presets::paper_eval(1 << 14);
        let c = Compiler::new(target).compile(NETCACHE_MINI).unwrap();
        let program = p4all_lang::parse(NETCACHE_MINI).unwrap();
        let sw = Switch::build(&c.concrete, &program).unwrap();
        let cfg = NetCacheConfig {
            hit_action: "cache_hit_act".into(),
            promote_threshold: threshold,
            epoch_packets: 0,
            ..Default::default()
        };
        NetCacheRuntime::new(sw, cfg).unwrap()
    }

    #[test]
    fn hot_key_gets_cached_and_served() {
        let mut rt = build_runtime(3);
        assert!(rt.capacity() >= 4);
        // 5 requests for the same key: first ones miss, once the estimate
        // reaches 3 the key is promoted, later requests hit.
        let mut results = Vec::new();
        for _ in 0..5 {
            results.push(rt.process(42, 4242).unwrap());
        }
        assert!(!results[0].0, "first request must miss");
        let (hit, val) = results[4];
        assert!(hit, "request after promotion must hit");
        assert_eq!(val, 4242, "served value must match the stored one");
        assert_eq!(rt.stats().promotions, 1);
    }

    #[test]
    fn cold_keys_never_promote() {
        // Threshold far above what one pass of distinct keys can reach,
        // even with every key colliding into the same CMS column.
        let mut rt = build_runtime(500);
        for key in 0..100 {
            let (hit, _) = rt.process(key, key).unwrap();
            assert!(!hit);
        }
        assert_eq!(rt.stats().promotions, 0);
        assert_eq!(rt.stats().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_limits_promotions() {
        let mut rt = build_runtime(2);
        let cap = rt.capacity() as u64;
        // Make 3*cap keys hot.
        for round in 0..4 {
            for key in 0..(3 * cap) {
                let _ = round;
                rt.process(key, key * 10).unwrap();
            }
        }
        assert_eq!(rt.stats().promotions, cap, "promotions stop at capacity");
        assert_eq!(rt.cached_keys() as u64, cap);
    }

    #[test]
    fn skew_beats_uniform_hit_rate() {
        let mut hot = build_runtime(3);
        // Hot workload: 90% of traffic on 3 keys.
        for i in 0..3000u64 {
            let key = if i % 10 < 9 { i % 3 } else { 100 + i % 50 };
            hot.process(key, key).unwrap();
        }
        let mut cold = build_runtime(3);
        // Uniform over 200 keys.
        for i in 0..3000u64 {
            cold.process(i * 37 % 200, i).unwrap();
        }
        assert!(
            hot.stats().hit_rate() > 0.5,
            "skewed hit rate too low: {}",
            hot.stats().hit_rate()
        );
        assert!(
            hot.stats().hit_rate() > cold.stats().hit_rate() + 0.2,
            "skew ({}) must beat uniform ({})",
            hot.stats().hit_rate(),
            cold.stats().hit_rate()
        );
    }

    #[test]
    fn epoch_reset_clears_sketch() {
        let target = presets::paper_eval(1 << 14);
        let c = Compiler::new(target).compile(NETCACHE_MINI).unwrap();
        let program = p4all_lang::parse(NETCACHE_MINI).unwrap();
        let sw = Switch::build(&c.concrete, &program).unwrap();
        let cfg = NetCacheConfig {
            hit_action: "cache_hit_act".into(),
            promote_threshold: 1000, // never promote
            epoch_packets: 10,
            ..Default::default()
        };
        let mut rt = NetCacheRuntime::new(sw, cfg).unwrap();
        for _ in 0..10 {
            rt.process(7, 7).unwrap();
        }
        assert_eq!(rt.stats().epochs, 1);
        // After the reset, the estimate restarts: next packet sees count 1.
        rt.process(7, 7).unwrap();
        assert_eq!(rt.switch.meta("cms_min").unwrap(), 1);
    }
}

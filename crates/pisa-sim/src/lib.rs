//! # p4all-sim — behavioral PISA pipeline simulator
//!
//! Executes the concrete, loop-free programs produced by the P4All
//! compiler (`p4all-core`) with PISA semantics: stage-by-stage processing,
//! stage-input snapshot reads, persistent per-stage register state, exact-
//! match tables with control-plane-installed entries, and deterministic
//! per-destination hash functions.
//!
//! The paper evaluated on a Barefoot Tofino switch; this simulator is the
//! substitute substrate (see DESIGN.md) that lets every end-to-end
//! experiment — most importantly the NetCache cache-hit-rate quality
//! surface of Figure 4 — run as real packet processing over the compiled
//! artifact rather than as an analytic model.

pub mod control_plane;
pub mod interp;
pub mod netcache_rt;
pub mod state;

pub use interp::{SimError, Switch};
pub use netcache_rt::{NetCacheConfig, NetCacheRuntime, NetCacheStats};
pub use state::{Phv, RegState, TableEntry, TableState};

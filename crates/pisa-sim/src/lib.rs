//! # p4all-sim — behavioral PISA pipeline simulator
//!
//! Executes the concrete, loop-free programs produced by the P4All
//! compiler (`p4all-core`) with PISA semantics: stage-by-stage processing,
//! stage-input snapshot reads, persistent per-stage register state, exact-
//! match tables with control-plane-installed entries, and deterministic
//! per-destination hash functions.
//!
//! The paper evaluated on a Barefoot Tofino switch; this simulator is the
//! substitute substrate (see DESIGN.md) that lets every end-to-end
//! experiment — most importantly the NetCache cache-hit-rate quality
//! surface of Figure 4 — run as real packet processing over the compiled
//! artifact rather than as an analytic model.

//!
//! Three execution backends share one build pipeline:
//!
//! - [`interp`] — the tree-walking **reference interpreter**, the oracle
//!   every fast path is differentially tested against;
//! - [`compiled`] — the **bytecode engine**: field names resolved to
//!   dense PHV slots, expressions flattened to a register-machine
//!   instruction stream, table dispatch by precomputed index. The default.
//! - [`native`] — the **native engine**: [`codegen`] prints the built
//!   switch as monomorphized dependency-free Rust, the in-container
//!   `rustc` compiles it to a cdylib, and packets run through a `dlopen`'d
//!   function call. Opt-in; requires `rustc` on PATH at runtime
//!   ([`rustc_available`]).
//!
//! [`replay`] adds `Switch::run_trace`: whole-trace replay, optionally
//! sharded by flow hash across worker threads with delta-sum state
//! merging, reporting pkts/sec + per-stage cost in [`SimStats`].

pub mod codegen;
pub mod compiled;
pub mod control_plane;
pub mod interp;
pub mod native;
pub mod netcache_rt;
pub mod replay;
pub mod state;

pub use interp::{Backend, SimError, Switch};
pub use native::{rustc_available, NativeError, NativeReport};
pub use netcache_rt::{NetCacheConfig, NetCacheRuntime, NetCacheStats};
pub use replay::SimStats;
pub use state::{Phv, RegState, TableEntry, TableState};

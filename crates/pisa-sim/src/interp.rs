//! The behavioral interpreter.
//!
//! [`Switch::build`] compiles a [`ConcreteProgram`] (the P4All compiler's
//! loop-free output) into slot-indexed actions, then executes packets stage
//! by stage with PISA semantics:
//!
//! - within a stage, an action's statements execute sequentially (the
//!   hash unit feeds the stateful ALU in-stage), while distinct actions
//!   never conflict inside a stage (the compiler's dependency constraints
//!   separate them), so stage-level concurrency is preserved;
//! - register state is persistent across packets and only accessible from
//!   the stage the register lives in (guaranteed by layout construction);
//! - a read-modify-write inside one action observes its own update (PISA
//!   stateful ALUs return the updated value).
//!
//! Hash functions: `hash(...)` destinations determine the salt, so the `i`
//! rows of a count-min sketch (writing `meta.index[0]`, `meta.index[1]`, …)
//! get independent hash functions, as on real hardware where each stage's
//! hash unit is seeded differently.

use std::collections::HashMap;
use std::fmt;

use p4all_core::{ConcreteProgram, ConcreteRegister};
use p4all_lang::ast::{BinOp, Expr, LValue, Program, Size, Stmt, UnOp};

use crate::state::{mask, Phv, RegState, TableEntry, TableState};

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    UnknownField(String),
    UnknownRegister(String, usize),
    UnknownTable(String),
    UnknownAction(String),
    IndexOutOfBounds { what: String, index: u64, len: usize },
    TableFull(String),
    BadProgram(String),
    DivByZero,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownField(n) => write!(f, "unknown field `{n}`"),
            SimError::UnknownRegister(n, i) => write!(f, "unknown register `{n}[{i}]`"),
            SimError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            SimError::UnknownAction(n) => write!(f, "unknown action `{n}`"),
            SimError::IndexOutOfBounds { what, index, len } => {
                write!(f, "{what}: index {index} out of bounds (len {len})")
            }
            SimError::TableFull(n) => write!(f, "table `{n}` is full"),
            SimError::BadProgram(m) => write!(f, "bad program: {m}"),
            SimError::DivByZero => write!(f, "division by zero in the data plane"),
        }
    }
}

impl std::error::Error for SimError {}

// ---------------------------------------------------------- compiled forms

/// Slot-resolved expression tree — the reference interpreter walks these;
/// the bytecode backend ([`crate::compiled`]) lowers them further into a
/// flat instruction stream.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Const(u64),
    Slot(usize),
    DynSlot { base: usize, count: usize, idx: Box<CExpr>, what: String },
    RegRead { reg: usize, cell: Box<CExpr> },
    Bin { op: BinOp, a: Box<CExpr>, b: Box<CExpr> },
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
}

#[derive(Debug, Clone)]
pub(crate) enum CDst {
    Slot(usize),
    DynSlot { base: usize, count: usize, idx: CExpr, what: String },
    Reg { reg: usize, cell: CExpr },
}

#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Assign { dst: CDst, val: CExpr },
    Hash { dst: CDst, inputs: Vec<CExpr>, range: u64, salt: u64 },
    If { cond: CExpr, then_body: Vec<CStmt>, else_body: Vec<CStmt> },
}

#[derive(Debug, Clone)]
pub(crate) struct CAction {
    /// Retained for diagnostics when a stage faults.
    #[allow(dead_code)]
    pub(crate) label: String,
    pub(crate) guard: Option<CExpr>,
    pub(crate) body: Vec<CStmt>,
    /// For table applies: table name + compiled key expressions.
    pub(crate) table: Option<(String, Vec<CExpr>)>,
}

/// Which execution engine [`Switch::run_packet`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The tree-walking reference interpreter (the oracle).
    Interp,
    /// The flat bytecode engine (the default fast path).
    #[default]
    Compiled,
    /// Generated Rust compiled by the in-container `rustc` and loaded as
    /// a cdylib ([`crate::native`]): no dispatch loop at all. Prepared
    /// lazily on first packet, or explicitly via
    /// [`Switch::prepare_native`]. Sharded replay (`threads > 1`) always
    /// runs the bytecode engine; `stage_cost` is not attributed.
    Native,
}

// ------------------------------------------------------------- the switch

/// A behavioral switch executing one compiled program.
pub struct Switch {
    pub(crate) masks: Vec<u64>,
    /// Header fields occupy the first `header_count` PHV slots; the flow
    /// hash that shards traces across replay workers covers exactly them.
    pub(crate) header_count: usize,
    header_slots: HashMap<String, usize>,
    meta_scalars: HashMap<String, usize>,
    meta_arrays: HashMap<String, (usize, usize)>,
    pub(crate) registers: Vec<RegState>,
    reg_index: HashMap<(String, usize), usize>,
    tables: HashMap<String, TableState>,
    /// Compiled bodies of actions invocable from tables.
    pub(crate) table_actions: HashMap<String, Vec<CStmt>>,
    pub(crate) stages: Vec<Vec<CAction>>,
    pub(crate) cur: Phv,
    pub(crate) next: Phv,
    // ---- bytecode backend state ----
    pub(crate) backend: Backend,
    pub(crate) compiled: crate::compiled::CompiledProgram,
    pub(crate) ctables: Vec<crate::compiled::CompiledTableState>,
    pub(crate) ctx: crate::compiled::ExecCtx,
    /// Register-write undo log for the current packet: on a per-packet
    /// fault every stage write is rolled back so a dropped packet leaves
    /// no trace in persistent state.
    pub(crate) undo: Vec<RegUndo>,
    /// Statements (interp) / instructions (compiled) executed, by stage,
    /// accumulated across packets; [`Switch::run_trace`] resets and
    /// reports it.
    pub(crate) stage_cost: Vec<u64>,
    /// Running statement counter backing `stage_cost` on the interp path.
    stmt_count: u64,
    /// Requested SoA batch width for trace replay (0 = scalar). See
    /// [`Switch::set_batch_width`].
    pub(crate) batch_width: usize,
    // ---- native backend state ----
    /// The loaded native pipeline, if [`Backend::Native`] has been
    /// prepared (lazily on first packet or via
    /// [`Switch::prepare_native`]).
    pub(crate) native: Option<crate::native::NativeEngine>,
}

/// One undone register write: `(register index, cell, previous value)`.
pub(crate) type RegUndo = (u32, u64, u64);

impl Switch {
    /// Compile a concrete program into an executable switch. `program` is
    /// the original AST (needed for the bodies of table actions).
    pub fn build(concrete: &ConcreteProgram, program: &Program) -> Result<Switch, SimError> {
        // ---- PHV layout ----
        let mut masks = Vec::new();
        let mut header_slots = HashMap::new();
        let mut meta_scalars = HashMap::new();
        let mut meta_arrays = HashMap::new();
        for (f, bits) in &concrete.headers {
            header_slots.insert(f.clone(), masks.len());
            masks.push(mask(*bits));
        }
        for m in &concrete.metadata {
            match m.count {
                None => {
                    meta_scalars.insert(m.name.clone(), masks.len());
                    masks.push(mask(m.bits));
                }
                Some(n) => {
                    meta_arrays.insert(m.name.clone(), (masks.len(), n as usize));
                    for _ in 0..n {
                        masks.push(mask(m.bits));
                    }
                }
            }
        }

        // ---- Registers ----
        let mut registers = Vec::new();
        let mut reg_index = HashMap::new();
        for r in &concrete.registers {
            let ConcreteRegister { reg, instance, cells, elem_bits, stage } = r;
            reg_index.insert((reg.clone(), *instance), registers.len());
            registers.push(RegState::new(reg.clone(), *instance, *stage, *elem_bits, *cells));
        }

        let mut sw = Switch {
            cur: Phv::new(masks.clone()),
            next: Phv::new(masks.clone()),
            header_count: concrete.headers.len(),
            masks,
            header_slots,
            meta_scalars,
            meta_arrays,
            registers,
            reg_index,
            tables: HashMap::new(),
            table_actions: HashMap::new(),
            stages: Vec::new(),
            backend: Backend::default(),
            compiled: crate::compiled::CompiledProgram::default(),
            ctables: Vec::new(),
            ctx: crate::compiled::ExecCtx::default(),
            undo: Vec::new(),
            stage_cost: Vec::new(),
            stmt_count: 0,
            batch_width: 0,
            native: None,
        };

        // ---- Tables & their actions ----
        for t in &concrete.tables {
            sw.tables.insert(
                t.name.clone(),
                TableState {
                    entries: HashMap::new(),
                    default_action: t.default_action.clone(),
                    size: t.size,
                },
            );
            for aname in &t.actions {
                if sw.table_actions.contains_key(aname) {
                    continue;
                }
                let decl = program
                    .action(aname)
                    .ok_or_else(|| SimError::UnknownAction(aname.clone()))?;
                if decl.indexed {
                    return Err(SimError::BadProgram(format!(
                        "table `{}` references indexed action `{aname}`",
                        t.name
                    )));
                }
                let body: Result<Vec<CStmt>, SimError> =
                    decl.body.iter().map(|s| sw.compile_stmt(s)).collect();
                sw.table_actions.insert(aname.clone(), body?);
            }
        }

        // ---- Stage programs ----
        let mut stages = Vec::with_capacity(concrete.stages.len());
        for (stage_idx, stage) in concrete.stages.iter().enumerate() {
            let mut actions = Vec::with_capacity(stage.len());
            for a in stage {
                // PISA locality: an action may only touch registers that
                // live in its own stage. A violation here is a compiler
                // bug, caught before any packet runs.
                for r in action_registers(a) {
                    match concrete.registers.iter().find(|cr| cr.reg == r.0 && cr.instance == r.1) {
                        Some(cr) if cr.stage == stage_idx => {}
                        Some(cr) => {
                            return Err(SimError::BadProgram(format!(
                                "action `{}` in stage {stage_idx} accesses register                                  {}[{}] placed in stage {}",
                                a.label, r.0, r.1, cr.stage
                            )))
                        }
                        None => {
                            return Err(SimError::UnknownRegister(r.0, r.1));
                        }
                    }
                }
                let guard = match &a.guard {
                    Some(g) => Some(sw.compile_expr(g)?),
                    None => None,
                };
                let body: Result<Vec<CStmt>, SimError> =
                    a.stmts.iter().map(|s| sw.compile_stmt(s)).collect();
                let table = match &a.table {
                    Some(tname) => {
                        let decl = concrete
                            .tables
                            .iter()
                            .find(|t| &t.name == tname)
                            .ok_or_else(|| SimError::UnknownTable(tname.clone()))?;
                        let keys: Result<Vec<CExpr>, SimError> =
                            decl.keys.iter().map(|k| sw.compile_expr(k)).collect();
                        Some((tname.clone(), keys?))
                    }
                    None => None,
                };
                actions.push(CAction { label: a.label.clone(), guard, body: body?, table });
            }
            stages.push(actions);
        }
        sw.stages = stages;
        sw.stage_cost = vec![0; sw.stages.len()];
        let (compiled, ctables) = crate::compiled::lower(&sw);
        sw.ctx = crate::compiled::ExecCtx::for_program(&compiled);
        sw.compiled = compiled;
        sw.ctables = ctables;
        Ok(sw)
    }

    /// Select the execution backend (the bytecode engine is the default;
    /// the tree-walking interpreter is the reference oracle).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Currently selected execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Request SoA batch execution for [`Switch::run_trace`]: packets are
    /// gathered into `width`-lane column-major batches and each bytecode
    /// instruction runs over all lanes before the next dispatch (the
    /// native backend instead amortizes FFI with a batched entry point).
    /// `0` (the default) and `1` select the scalar per-packet loop.
    /// Batched replay is bit-identical to scalar replay; programs whose
    /// register access pattern rules out instruction-major execution fall
    /// back to the scalar loop automatically (see
    /// [`SimStats::batch_width`](crate::SimStats) for what actually ran).
    pub fn set_batch_width(&mut self, width: usize) {
        self.batch_width = width;
    }

    /// Requested SoA batch width (0 = scalar).
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    /// Whether the bytecode engine can execute this program in SoA batch
    /// mode: every register any packet writes must be confined to a
    /// single top-level statement (one "atom"), so running an
    /// instruction across all lanes before the next instruction cannot
    /// reorder one packet's read of another packet's write. Programs that
    /// fail the analysis silently fall back to the scalar loop.
    pub fn batch_safe(&self) -> bool {
        self.compiled.batch_safe
    }

    // -------------------------------------------------------- compilation

    fn meta_slot(&self, field: &str, index: Option<&Expr>) -> Result<CExprOrDyn, SimError> {
        if let Some(&slot) = self.meta_scalars.get(field) {
            return match index {
                None => Ok(CExprOrDyn::Slot(slot)),
                Some(_) => Err(SimError::BadProgram(format!(
                    "scalar metadata `{field}` indexed like an array"
                ))),
            };
        }
        if let Some(&(base, count)) = self.meta_arrays.get(field) {
            return match index {
                Some(Expr::Int(i)) => {
                    if *i as usize >= count {
                        return Err(SimError::IndexOutOfBounds {
                            what: format!("meta.{field}"),
                            index: *i,
                            len: count,
                        });
                    }
                    Ok(CExprOrDyn::Slot(base + *i as usize))
                }
                Some(dynamic) => Ok(CExprOrDyn::Dyn {
                    base,
                    count,
                    idx: self.compile_expr(dynamic)?,
                    what: format!("meta.{field}"),
                }),
                None => Err(SimError::BadProgram(format!(
                    "metadata array `{field}` used without an index"
                ))),
            };
        }
        Err(SimError::UnknownField(format!("meta.{field}")))
    }

    fn compile_expr(&self, e: &Expr) -> Result<CExpr, SimError> {
        Ok(match e {
            Expr::Int(v) => CExpr::Const(*v),
            Expr::Float(_) => {
                return Err(SimError::BadProgram("float literal in data-plane expression".into()))
            }
            Expr::Symbolic(s) => {
                return Err(SimError::BadProgram(format!(
                    "unresolved symbolic `{s}` in concrete program"
                )))
            }
            Expr::IndexVar(s) => {
                return Err(SimError::BadProgram(format!("unresolved loop variable `{s}`")))
            }
            Expr::Meta { field, index } => match self.meta_slot(field, index.as_deref())? {
                CExprOrDyn::Slot(s) => CExpr::Slot(s),
                CExprOrDyn::Dyn { base, count, idx, what } => {
                    CExpr::DynSlot { base, count, idx: Box::new(idx), what }
                }
            },
            Expr::Header { field } => CExpr::Slot(
                *self
                    .header_slots
                    .get(field)
                    .ok_or_else(|| SimError::UnknownField(format!("hdr.{field}")))?,
            ),
            Expr::RegisterRead { reg, instance, cell } => {
                let inst = match instance.as_deref() {
                    None => 0,
                    Some(Expr::Int(i)) => *i as usize,
                    Some(_) => {
                        return Err(SimError::BadProgram(format!(
                            "register `{reg}` instance index not a constant"
                        )))
                    }
                };
                let idx = *self
                    .reg_index
                    .get(&(reg.clone(), inst))
                    .ok_or_else(|| SimError::UnknownRegister(reg.clone(), inst))?;
                CExpr::RegRead { reg: idx, cell: Box::new(self.compile_expr(cell)?) }
            }
            Expr::Unary { op: UnOp::Not, operand } => {
                CExpr::Not(Box::new(self.compile_expr(operand)?))
            }
            Expr::Unary { op: UnOp::Neg, operand } => {
                CExpr::Neg(Box::new(self.compile_expr(operand)?))
            }
            Expr::Binary { op, lhs, rhs } => CExpr::Bin {
                op: *op,
                a: Box::new(self.compile_expr(lhs)?),
                b: Box::new(self.compile_expr(rhs)?),
            },
        })
    }

    fn compile_dst(&self, l: &LValue) -> Result<CDst, SimError> {
        Ok(match l {
            LValue::Meta { field, index } => match self.meta_slot(field, index.as_ref())? {
                CExprOrDyn::Slot(s) => CDst::Slot(s),
                CExprOrDyn::Dyn { base, count, idx, what } => {
                    CDst::DynSlot { base, count, idx, what }
                }
            },
            LValue::Header { field } => CDst::Slot(
                *self
                    .header_slots
                    .get(field)
                    .ok_or_else(|| SimError::UnknownField(format!("hdr.{field}")))?,
            ),
            LValue::Register { reg, instance, cell } => {
                let inst = match instance {
                    None => 0,
                    Some(Expr::Int(i)) => *i as usize,
                    Some(_) => {
                        return Err(SimError::BadProgram(format!(
                            "register `{reg}` instance index not a constant"
                        )))
                    }
                };
                let idx = *self
                    .reg_index
                    .get(&(reg.clone(), inst))
                    .ok_or_else(|| SimError::UnknownRegister(reg.clone(), inst))?;
                CDst::Reg { reg: idx, cell: self.compile_expr(cell)? }
            }
        })
    }

    fn compile_stmt(&self, s: &Stmt) -> Result<CStmt, SimError> {
        Ok(match s {
            Stmt::Assign { lhs, rhs, .. } => {
                CStmt::Assign { dst: self.compile_dst(lhs)?, val: self.compile_expr(rhs)? }
            }
            Stmt::HashAssign { lhs, inputs, range, .. } => {
                let range = match range {
                    Size::Const(k) => *k,
                    Size::Symbolic(v) => {
                        return Err(SimError::BadProgram(format!(
                            "unresolved hash range symbolic `{v}`"
                        )))
                    }
                };
                if range == 0 {
                    return Err(SimError::BadProgram("hash range of zero".into()));
                }
                let dst = self.compile_dst(lhs)?;
                let salt = match &dst {
                    CDst::Slot(s) => 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(*s as u64 + 1),
                    CDst::DynSlot { base, .. } => {
                        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(*base as u64 + 1)
                    }
                    CDst::Reg { reg, .. } => {
                        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(*reg as u64 + 0x51)
                    }
                };
                let inputs: Result<Vec<CExpr>, SimError> =
                    inputs.iter().map(|e| self.compile_expr(e)).collect();
                CStmt::Hash { dst, inputs: inputs?, range, salt }
            }
            Stmt::If { cond, then_body, else_body, .. } => CStmt::If {
                cond: self.compile_expr(cond)?,
                then_body: then_body.iter().map(|t| self.compile_stmt(t)).collect::<Result<_, _>>()?,
                else_body: else_body.iter().map(|t| self.compile_stmt(t)).collect::<Result<_, _>>()?,
            },
            other => {
                return Err(SimError::BadProgram(format!(
                    "statement not executable in a concrete action: {other:?}"
                )))
            }
        })
    }

    // ---------------------------------------------------------- execution

    /// Reset the working PHV for a new packet.
    pub fn begin_packet(&mut self) {
        self.cur.clear();
        self.undo.clear();
    }

    /// Reset all packet-plane state — registers, working PHVs, cost
    /// counters — leaving the compiled program, backend selection, and
    /// control-plane-installed table entries in place. After a reset the
    /// switch behaves as freshly built; harnesses that replay many traces
    /// against one program (e.g. the fuzz oracle) reset instead of
    /// rebuilding.
    pub fn reset(&mut self) {
        for r in &mut self.registers {
            r.clear();
        }
        self.cur.clear();
        self.next.clear();
        self.undo.clear();
        self.stage_cost.iter_mut().for_each(|c| *c = 0);
        self.stmt_count = 0;
        self.ctx.temps.iter_mut().for_each(|t| *t = 0);
        self.ctx.keys.clear();
    }

    /// Set a header field on the working PHV.
    pub fn set_header(&mut self, field: &str, value: u64) -> Result<(), SimError> {
        let slot = *self
            .header_slots
            .get(field)
            .ok_or_else(|| SimError::UnknownField(format!("hdr.{field}")))?;
        self.cur.set(slot, value);
        Ok(())
    }

    /// Run the working PHV through every stage with the selected backend.
    ///
    /// On a per-packet fault (`DivByZero`, `IndexOutOfBounds`, …) every
    /// register write the packet performed is rolled back before the error
    /// returns: a faulting packet is droppable without corrupting
    /// persistent state ([`Switch::run_trace`] counts it as dropped).
    pub fn run_packet(&mut self) -> Result<(), SimError> {
        self.undo.clear();
        let result = match self.backend {
            Backend::Interp => self.run_packet_interp(),
            Backend::Compiled => self.run_packet_compiled(),
            Backend::Native => self.run_packet_native(),
        };
        if result.is_err() {
            self.rollback();
        }
        result
    }

    /// Undo every register write recorded since the packet began.
    pub(crate) fn rollback(&mut self) {
        while let Some((reg, cell, old)) = self.undo.pop() {
            self.registers[reg as usize].cells[cell as usize] = old;
        }
    }

    fn run_packet_compiled(&mut self) -> Result<(), SimError> {
        crate::compiled::run_packet(
            &self.compiled,
            &self.ctables,
            &mut self.registers,
            &mut self.cur,
            &mut self.ctx,
            &mut self.undo,
            &mut self.stage_cost,
        )
    }

    fn run_packet_interp(&mut self) -> Result<(), SimError> {
        for s in 0..self.stages.len() {
            // Stage-input snapshot: actions read `next`'s previous content.
            self.next.slots.copy_from_slice(&self.cur.slots);
            // We need split borrows: temporarily move the stage program out.
            let actions = std::mem::take(&mut self.stages[s]);
            let before = self.stmt_count;
            let mut result = Ok(());
            for a in &actions {
                if let Some(g) = &a.guard {
                    match self.eval(g) {
                        Ok(0) => continue,
                        Ok(_) => {}
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                if let Some((tname, keys)) = &a.table {
                    if let Err(e) = self.apply_table(tname, keys) {
                        result = Err(e);
                        break;
                    }
                }
                if let Err(e) = self.exec_block(&a.body) {
                    result = Err(e);
                    break;
                }
            }
            self.stages[s] = actions;
            self.stage_cost[s] += self.stmt_count - before;
            result?;
            std::mem::swap(&mut self.cur, &mut self.next);
        }
        Ok(())
    }

    fn apply_table(&mut self, tname: &str, keys: &[CExpr]) -> Result<(), SimError> {
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(self.eval(k)?);
        }
        let table =
            self.tables.get(tname).ok_or_else(|| SimError::UnknownTable(tname.to_string()))?;
        let (action, data) = match table.entries.get(&kv) {
            Some(e) => (e.action.clone(), e.data.clone()),
            None => match &table.default_action {
                Some(a) => (a.clone(), Vec::new()),
                None => return Ok(()), // no-op miss
            },
        };
        // Action data writes (modelled action parameters).
        for (field, value) in &data {
            let slot = self
                .meta_scalars
                .get(field)
                .copied()
                .ok_or_else(|| SimError::UnknownField(format!("meta.{field}")))?;
            self.next.set(slot, *value);
        }
        let body = self
            .table_actions
            .get(&action)
            .cloned()
            .ok_or_else(|| SimError::UnknownAction(action.clone()))?;
        self.exec_block(&body)
    }

    fn exec_block(&mut self, body: &[CStmt]) -> Result<(), SimError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &CStmt) -> Result<(), SimError> {
        self.stmt_count += 1;
        match s {
            CStmt::Assign { dst, val } => {
                let v = self.eval(val)?;
                self.write_dst(dst, v)
            }
            CStmt::Hash { dst, inputs, range, salt } => {
                let mut h = splitmix(*salt);
                for i in inputs {
                    h = splitmix(h ^ self.eval(i)?);
                }
                self.write_dst(dst, h % range)
            }
            CStmt::If { cond, then_body, else_body } => {
                if self.eval(cond)? != 0 {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
        }
    }

    fn write_dst(&mut self, dst: &CDst, v: u64) -> Result<(), SimError> {
        match dst {
            CDst::Slot(s) => {
                self.next.set(*s, v);
                Ok(())
            }
            CDst::DynSlot { base, count, idx, what } => {
                let i = self.eval(idx)? as usize;
                if i >= *count {
                    return Err(SimError::IndexOutOfBounds {
                        what: what.clone(),
                        index: i as u64,
                        len: *count,
                    });
                }
                self.next.set(base + i, v);
                Ok(())
            }
            CDst::Reg { reg, cell } => {
                let c = self.eval(cell)? as usize;
                let r = &mut self.registers[*reg];
                if c >= r.cells.len() {
                    return Err(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    });
                }
                self.undo.push((*reg as u32, c as u64, r.cells[c]));
                r.cells[c] = v & r.elem_mask;
                Ok(())
            }
        }
    }

    fn eval(&self, e: &CExpr) -> Result<u64, SimError> {
        Ok(match e {
            CExpr::Const(v) => *v,
            // Reads go through the stage's write buffer (`next`), which
            // starts as a copy of the stage input: statements *within* one
            // action therefore see the action's own earlier writes (the
            // hash unit feeds the stateful ALU inside a stage), while
            // cross-action visibility inside a stage cannot arise because
            // the dependency analysis places conflicting actions in
            // different stages.
            CExpr::Slot(s) => self.next.get(*s),
            CExpr::DynSlot { base, count, idx, what } => {
                let i = self.eval(idx)? as usize;
                if i >= *count {
                    return Err(SimError::IndexOutOfBounds {
                        what: what.clone(),
                        index: i as u64,
                        len: *count,
                    });
                }
                self.next.get(base + i)
            }
            CExpr::RegRead { reg, cell } => {
                let c = self.eval(cell)? as usize;
                let r = &self.registers[*reg];
                if c >= r.cells.len() {
                    return Err(SimError::IndexOutOfBounds {
                        what: format!("{}[{}]", r.reg, r.instance),
                        index: c as u64,
                        len: r.cells.len(),
                    });
                }
                r.cells[c]
            }
            CExpr::Not(a) => (self.eval(a)? == 0) as u64,
            CExpr::Neg(a) => self.eval(a)?.wrapping_neg(),
            CExpr::Bin { op, a, b } => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(SimError::DivByZero);
                        }
                        x / y
                    }
                    BinOp::Lt => (x < y) as u64,
                    BinOp::Le => (x <= y) as u64,
                    BinOp::Gt => (x > y) as u64,
                    BinOp::Ge => (x >= y) as u64,
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ne => (x != y) as u64,
                    BinOp::And => (x != 0 && y != 0) as u64,
                    BinOp::Or => (x != 0 || y != 0) as u64,
                }
            }
        })
    }

    // -------------------------------------------------------- observation

    /// Read a metadata scalar from the working PHV (after `run_packet`).
    pub fn meta(&self, field: &str) -> Result<u64, SimError> {
        let slot = *self
            .meta_scalars
            .get(field)
            .ok_or_else(|| SimError::UnknownField(format!("meta.{field}")))?;
        Ok(self.cur.get(slot))
    }

    /// Read one element of a metadata array from the working PHV.
    pub fn meta_elem(&self, field: &str, i: usize) -> Result<u64, SimError> {
        let &(base, count) = self
            .meta_arrays
            .get(field)
            .ok_or_else(|| SimError::UnknownField(format!("meta.{field}")))?;
        if i >= count {
            return Err(SimError::IndexOutOfBounds {
                what: format!("meta.{field}"),
                index: i as u64,
                len: count,
            });
        }
        Ok(self.cur.get(base + i))
    }

    /// Read a header field from the working PHV.
    pub fn header(&self, field: &str) -> Result<u64, SimError> {
        let slot = *self
            .header_slots
            .get(field)
            .ok_or_else(|| SimError::UnknownField(format!("hdr.{field}")))?;
        Ok(self.cur.get(slot))
    }

    /// Header field names in slot order — what a trace generator needs to
    /// synthesize input packets for [`Switch::run_trace`].
    pub fn header_fields(&self) -> Vec<String> {
        let mut fields: Vec<(usize, &String)> =
            self.header_slots.iter().map(|(name, &slot)| (slot, name)).collect();
        fields.sort();
        fields.into_iter().map(|(_, name)| name.clone()).collect()
    }

    /// Total PHV bits modelled (diagnostics).
    pub fn phv_slots(&self) -> usize {
        self.masks.len()
    }

    /// Pipeline stage count.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The full working PHV after `run_packet` — slot-for-slot, for
    /// differential testing of backends.
    pub fn phv_snapshot(&self) -> Vec<u64> {
        self.cur.slots.clone()
    }

    /// Disassembly of the bytecode program, one section per stage — what
    /// the compiled backend actually executes per packet (diagnostics).
    pub fn dump_bytecode(&self) -> String {
        crate::compiled::disasm(&self.compiled)
    }

    /// Every register instance as `(name, instance, stage, cells)`, in
    /// placement order — the observable persistent state, for
    /// differential testing and golden-trace dumps.
    pub fn registers_snapshot(&self) -> Vec<(String, usize, usize, Vec<u64>)> {
        self.registers
            .iter()
            .map(|r| (r.reg.clone(), r.instance, r.stage, r.cells.clone()))
            .collect()
    }

    /// Build a full-layout input PHV for [`Switch::run_trace`]: the named
    /// header fields are set (width-masked), everything else is zero.
    pub fn make_packet(&self, fields: &[(&str, u64)]) -> Result<Phv, SimError> {
        let mut phv = Phv::new(self.masks.clone());
        for (f, v) in fields {
            let slot = *self
                .header_slots
                .get(*f)
                .ok_or_else(|| SimError::UnknownField(format!("hdr.{f}")))?;
            phv.set(slot, *v);
        }
        Ok(phv)
    }

    pub(crate) fn registers(&self) -> &[RegState] {
        &self.registers
    }

    pub(crate) fn registers_mut(&mut self) -> &mut Vec<RegState> {
        &mut self.registers
    }

    pub(crate) fn reg_idx(&self, reg: &str, instance: usize) -> Result<usize, SimError> {
        self.reg_index
            .get(&(reg.to_string(), instance))
            .copied()
            .ok_or_else(|| SimError::UnknownRegister(reg.to_string(), instance))
    }

    pub(crate) fn tables_mut(&mut self) -> &mut HashMap<String, TableState> {
        &mut self.tables
    }

    pub(crate) fn tables(&self) -> &HashMap<String, TableState> {
        &self.tables
    }

    pub(crate) fn meta_scalar_slot(&self, field: &str) -> Option<usize> {
        self.meta_scalars.get(field).copied()
    }

    pub(crate) fn has_table_action(&self, action: &str) -> bool {
        self.table_actions.contains_key(action)
    }

    /// Validate an entry payload at install time.
    pub(crate) fn make_entry(
        &self,
        table: &str,
        action: &str,
        data: &[(&str, u64)],
    ) -> Result<TableEntry, SimError> {
        if !self.tables.contains_key(table) {
            return Err(SimError::UnknownTable(table.to_string()));
        }
        if !self.has_table_action(action) {
            return Err(SimError::UnknownAction(action.to_string()));
        }
        for (f, _) in data {
            if self.meta_scalar_slot(f).is_none() {
                return Err(SimError::UnknownField(format!("meta.{f}")));
            }
        }
        Ok(TableEntry {
            action: action.to_string(),
            data: data.iter().map(|(f, v)| (f.to_string(), *v)).collect(),
        })
    }
}

enum CExprOrDyn {
    Slot(usize),
    Dyn { base: usize, count: usize, idx: CExpr, what: String },
}

/// `(register, instance)` pairs an action touches (guard + body).
fn action_registers(a: &p4all_core::ConcreteAction) -> Vec<(String, usize)> {
    fn expr_regs(e: &Expr, out: &mut Vec<(String, usize)>) {
        match e {
            Expr::RegisterRead { reg, instance, cell } => {
                let inst = match instance.as_deref() {
                    Some(Expr::Int(i)) => *i as usize,
                    _ => 0,
                };
                out.push((reg.clone(), inst));
                expr_regs(cell, out);
            }
            Expr::Unary { operand, .. } => expr_regs(operand, out),
            Expr::Binary { lhs, rhs, .. } => {
                expr_regs(lhs, out);
                expr_regs(rhs, out);
            }
            Expr::Meta { index: Some(i), .. } => expr_regs(i, out),
            _ => {}
        }
    }
    fn stmt_regs(s: &Stmt, out: &mut Vec<(String, usize)>) {
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::Register { reg, instance, cell } = lhs {
                    let inst = match instance {
                        Some(Expr::Int(i)) => *i as usize,
                        _ => 0,
                    };
                    out.push((reg.clone(), inst));
                    expr_regs(cell, out);
                }
                expr_regs(rhs, out);
            }
            Stmt::HashAssign { lhs, inputs, .. } => {
                if let LValue::Register { reg, instance, cell } = lhs {
                    let inst = match instance {
                        Some(Expr::Int(i)) => *i as usize,
                        _ => 0,
                    };
                    out.push((reg.clone(), inst));
                    expr_regs(cell, out);
                }
                for i in inputs {
                    expr_regs(i, out);
                }
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                expr_regs(cond, out);
                for t in then_body.iter().chain(else_body) {
                    stmt_regs(t, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    if let Some(g) = &a.guard {
        expr_regs(g, &mut out);
    }
    for s in &a.stmts {
        stmt_regs(s, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

/// SplitMix64 finalizer — the simulator's hash primitive, shared by both
/// backends (and by the replay engine's flow-sharding hash).
#[inline(always)]
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    const CMS: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 2 && rows <= 2;
        assume cols >= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;
        action start_min()[int i] { meta.min = meta.count[i]; }
        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }
        action set_min()[int i] {
            meta.min = meta.count[i];
        }
        control hash_inc() { apply { for (i < rows) { incr()[i]; } } }
        control find_min() {
            apply {
                for (i < rows) {
                    if (meta.count[i] < meta.min || meta.min == 0) { set_min()[i]; }
                }
            }
        }
        control Main() { apply { hash_inc.apply(); find_min.apply(); } }
    "#;

    fn build_cms() -> (Switch, u64) {
        let target = presets::paper_eval(1 << 14); // 16 Kb per stage
        let c = Compiler::new(target).compile(CMS).unwrap();
        let program = p4all_lang::parse(CMS).unwrap();
        let cols = c.layout.symbol_values["cols"];
        (Switch::build(&c.concrete, &program).unwrap(), cols)
    }

    #[test]
    fn cms_counts_single_key() {
        let (mut sw, _) = build_cms();
        for _ in 0..5 {
            sw.begin_packet();
            sw.set_header("key", 42).unwrap();
            sw.run_packet().unwrap();
        }
        // After 5 packets of the same key, the min estimate is 5.
        assert_eq!(sw.meta("min").unwrap(), 5);
    }

    #[test]
    fn cms_estimate_is_at_least_true_count() {
        let (mut sw, _) = build_cms();
        let mut true_counts = std::collections::HashMap::new();
        // 300 packets over 20 keys.
        for p in 0..300u64 {
            let key = p % 20;
            *true_counts.entry(key).or_insert(0u64) += 1;
            sw.begin_packet();
            sw.set_header("key", key).unwrap();
            sw.run_packet().unwrap();
        }
        // Query each key once more and compare the estimate (which includes
        // the query packet's own increment).
        for (key, count) in true_counts {
            sw.begin_packet();
            sw.set_header("key", key).unwrap();
            sw.run_packet().unwrap();
            let est = sw.meta("min").unwrap();
            assert!(
                est > count,
                "CMS under-estimated key {key}: est {est} < true {count}+1"
            );
        }
    }

    #[test]
    fn different_rows_use_different_hashes() {
        let (mut sw, cols) = build_cms();
        assert!(cols >= 4);
        let mut same = 0;
        let mut total = 0;
        for key in 0..50u64 {
            sw.begin_packet();
            sw.set_header("key", key).unwrap();
            sw.run_packet().unwrap();
            let i0 = sw.meta_elem("index", 0).unwrap();
            let i1 = sw.meta_elem("index", 1).unwrap();
            total += 1;
            if i0 == i1 {
                same += 1;
            }
        }
        assert!(
            same < total / 2,
            "row hashes look identical: {same}/{total} collisions"
        );
    }

    #[test]
    fn stage_snapshot_semantics() {
        // Two actions in (potentially) the same stage must both read the
        // stage input: b = a must read the *old* a even if a is updated in
        // the same stage. Here the compiler serializes them (dependency),
        // so instead check the end-to-end dataflow result.
        let src = r#"
            header h { bit<32> x; }
            struct metadata { bit<32> a; bit<32> b; }
            control Main() {
                apply {
                    meta.a = hdr.x + 1;
                    meta.b = meta.a + 1;
                }
            }
        "#;
        let c = Compiler::new(presets::paper_example()).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program).unwrap();
        sw.begin_packet();
        sw.set_header("x", 10).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("a").unwrap(), 11);
        assert_eq!(sw.meta("b").unwrap(), 12);
    }

    #[test]
    fn field_width_truncation() {
        let src = r#"
            header h { bit<32> x; }
            struct metadata { bit<8> small; }
            control Main() { apply { meta.small = hdr.x + 1; } }
        "#;
        let c = Compiler::new(presets::paper_example()).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program).unwrap();
        sw.begin_packet();
        sw.set_header("x", 0x1FF).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("small").unwrap(), 0x00); // 0x1FF+1 = 0x200 -> low 8 bits
    }

    #[test]
    fn registers_persist_across_packets() {
        let src = r#"
            header h { bit<32> x; }
            struct metadata { bit<32> seen; }
            register<bit<32>>[4] counter;
            action tally() {
                counter[0] = counter[0] + 1;
                meta.seen = counter[0];
            }
            control Main() { apply { tally(); } }
        "#;
        let c = Compiler::new(presets::paper_example()).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program).unwrap();
        for i in 1..=7u64 {
            sw.begin_packet();
            sw.set_header("x", 0).unwrap();
            sw.run_packet().unwrap();
            assert_eq!(sw.meta("seen").unwrap(), i);
        }
    }
}

#[cfg(test)]
mod locality_tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    /// Hand-corrupt a compiled program so an action sits in a different
    /// stage than its register: the builder must refuse it.
    #[test]
    fn stage_locality_violation_rejected() {
        let src = r#"
            header pkt { bit<32> key; }
            struct metadata { bit<32> seen; }
            register<bit<32>>[8] ctr;
            action tally() {
                ctr[0] = ctr[0] + 1;
                meta.seen = ctr[0];
            }
            control Main() { apply { tally(); } }
        "#;
        let c = Compiler::new(presets::paper_example()).compile(src).unwrap();
        let program = p4all_lang::parse(src).unwrap();
        // Sanity: the honest program builds.
        Switch::build(&c.concrete, &program).unwrap();
        // Corrupt: move the register one stage later than its action.
        let mut broken = c.concrete.clone();
        let reg_stage = broken.registers[0].stage;
        broken.registers[0].stage = reg_stage + 1;
        match Switch::build(&broken, &program) {
            Err(SimError::BadProgram(msg)) => {
                assert!(msg.contains("stage"), "unexpected message: {msg}");
            }
            Err(other) => panic!("expected stage-locality rejection, got {other:?}"),
            Ok(_) => panic!("corrupted program must not build"),
        }
    }
}

//! Property tests: the branch-and-bound solver must agree with exhaustive
//! enumeration on randomly generated small MILPs, presolve must never
//! change the optimum, and the parallel solver must agree with the
//! sequential one at every thread count and in both execution modes.

use proptest::prelude::*;

use p4all_ilp::{
    brute_force, presolve, solve, solve_with, LinExpr, Model, Presolved, Sense, SolveOptions,
    SolveStatus,
};

/// Description of one random constraint row.
#[derive(Debug, Clone)]
struct RawCon {
    coefs: Vec<i8>,
    cmp: u8, // 0 = Le, 1 = Ge, 2 = Eq
    rhs: i8,
}

/// A random model over `n` integer variables with domains [0, dom].
#[derive(Debug, Clone)]
struct RawModel {
    n: usize,
    dom: u8,
    obj: Vec<i8>,
    sense_max: bool,
    cons: Vec<RawCon>,
}

fn raw_model_strategy() -> impl Strategy<Value = RawModel> {
    (2usize..=5, 0u8..=2).prop_flat_map(|(n, dom)| {
        let con = (
            proptest::collection::vec(-3i8..=3, n),
            0u8..=2,
            -6i8..=12,
        )
            .prop_map(|(coefs, cmp, rhs)| RawCon { coefs, cmp, rhs });
        (
            Just(n),
            Just(dom),
            proptest::collection::vec(-5i8..=5, n),
            any::<bool>(),
            proptest::collection::vec(con, 1..=4),
        )
            .prop_map(|(n, dom, obj, sense_max, cons)| RawModel { n, dom, obj, sense_max, cons })
    })
}

fn build(raw: &RawModel) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..raw.n)
        .map(|i| {
            if raw.dom == 0 {
                m.binary(format!("x{i}"))
            } else {
                m.integer(format!("x{i}"), 0.0, (raw.dom + 1) as f64)
            }
        })
        .collect();
    for (k, c) in raw.cons.iter().enumerate() {
        let mut e = LinExpr::zero();
        for (i, &a) in c.coefs.iter().enumerate() {
            if a != 0 {
                e.add_term(vars[i], a as f64);
            }
        }
        match c.cmp {
            0 => m.le(format!("c{k}"), e, c.rhs as f64),
            1 => m.ge(format!("c{k}"), e, c.rhs as f64),
            _ => m.eq(format!("c{k}"), e, c.rhs as f64),
        };
    }
    let mut obj = LinExpr::zero();
    for (i, &a) in raw.obj.iter().enumerate() {
        if a != 0 {
            obj.add_term(vars[i], a as f64);
        }
    }
    m.set_objective(obj, if raw.sense_max { Sense::Maximize } else { Sense::Minimize });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact solver agrees with brute force on objective value (or both
    /// report infeasibility).
    #[test]
    fn solver_matches_brute_force(raw in raw_model_strategy()) {
        let m = build(&raw);
        let reference = brute_force(&m, 2_000_000);
        let out = solve(&m).expect("solver must not error");
        match reference {
            None => prop_assert_eq!(out.status, SolveStatus::Infeasible),
            Some(r) => {
                prop_assert_eq!(out.status, SolveStatus::Optimal);
                let got = out.solution.expect("optimal implies solution");
                prop_assert!(
                    (got.objective - r.objective).abs() < 1e-5,
                    "solver {} vs brute force {}", got.objective, r.objective
                );
                prop_assert!(m.check_feasible(&got.values, 1e-5).is_ok());
            }
        }
    }

    /// Differential test: the parallel best-first search (2–8 threads,
    /// deterministic and free-running) returns the same status and the
    /// same optimal objective as the sequential depth-first search.
    #[test]
    fn parallel_matches_sequential(
        raw in raw_model_strategy(),
        threads in 2usize..=8,
        deterministic in any::<bool>(),
    ) {
        let m = build(&raw);
        let seq = solve_with(&m, &SolveOptions { threads: 1, ..SolveOptions::default() })
            .expect("sequential solve must not error");
        let par = solve_with(
            &m,
            &SolveOptions { threads, deterministic, ..SolveOptions::default() },
        )
        .expect("parallel solve must not error");
        // These models are tiny and limit-free, so both searches run to
        // proof: statuses must agree exactly.
        prop_assert_eq!(par.status, seq.status);
        match (&seq.solution, &par.solution) {
            (Some(a), Some(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() < 1e-6,
                    "sequential {} vs {} threads {}: {} != {}",
                    1, threads, if deterministic { "det" } else { "free" },
                    a.objective, b.objective
                );
                prop_assert!(m.check_feasible(&b.values, 1e-5).is_ok());
            }
            (None, None) => {}
            _ => prop_assert!(false, "one search found a solution, the other did not"),
        }
        // Telemetry bookkeeping must be consistent with the totals.
        prop_assert_eq!(par.telemetry.threads, threads);
        prop_assert_eq!(par.telemetry.total_nodes(), par.nodes);
        prop_assert_eq!(par.telemetry.total_lp_solves(), par.lp_solves);
    }

    /// Differential test for LP warm starting: with `warm_lp` on (each
    /// node's LP re-optimized by the dual simplex from its parent's
    /// basis) and off (every node solved cold), the search returns the
    /// same status and the same optimal objective. The explored tree may
    /// differ — the LP can land on a different co-optimal vertex — but
    /// what is solvable and the optimum value may not.
    #[test]
    fn warm_lp_matches_cold(raw in raw_model_strategy(), threads in 1usize..=4) {
        let m = build(&raw);
        let cold = solve_with(
            &m,
            &SolveOptions { threads, warm_lp: false, ..SolveOptions::default() },
        )
        .expect("cold solve must not error");
        let warm = solve_with(
            &m,
            &SolveOptions { threads, warm_lp: true, ..SolveOptions::default() },
        )
        .expect("warm solve must not error");
        prop_assert_eq!(warm.status, cold.status);
        match (&cold.solution, &warm.solution) {
            (Some(a), Some(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() < 1e-6,
                    "threads {}: cold {} != warm {}", threads, a.objective, b.objective
                );
                prop_assert!(m.check_feasible(&b.values, 1e-5).is_ok());
            }
            (None, None) => {}
            _ => prop_assert!(false, "warm and cold disagree on solution existence"),
        }
        // A cold solve must never take the warm path or fall back.
        prop_assert_eq!(cold.telemetry.total_warm_solves(), 0);
        prop_assert_eq!(cold.telemetry.total_cold_fallbacks(), 0);
    }

    /// Presolve's tightened bounds never cut off the optimum.
    #[test]
    fn presolve_preserves_optimum(raw in raw_model_strategy()) {
        let m = build(&raw);
        let reference = brute_force(&m, 2_000_000);
        match presolve(&m) {
            Presolved::Infeasible { .. } => prop_assert!(reference.is_none()),
            Presolved::Bounds(b) => {
                if let Some(r) = reference {
                    // Optimal point remains within the tightened box.
                    for (j, &(lb, ub)) in b.iter().enumerate() {
                        prop_assert!(
                            r.values[j] >= lb - 1e-9 && r.values[j] <= ub + 1e-9,
                            "presolve cut optimum: var {} = {} outside [{}, {}]",
                            j, r.values[j], lb, ub
                        );
                    }
                }
            }
        }
    }
}

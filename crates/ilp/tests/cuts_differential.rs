//! Differential tests for the cut-and-branch engine: with cuts and
//! pseudocost branching on, the solver must return the same status and
//! optimal objective as the plain historical search, on mixed-integer
//! models with continuous columns and Eq rows (the shapes where an
//! unsound Gomory derivation would show first). Deterministic mode with
//! the full engine must stay a pure function of model + options across
//! thread counts.

use proptest::prelude::*;

use p4all_ilp::{solve_with, LinExpr, Model, Sense, SolveOptions, SolveStatus};

#[derive(Debug, Clone)]
struct RawCon {
    coefs: Vec<i8>,
    cmp: u8,
    rhs: i8,
}

#[derive(Debug, Clone)]
struct RawModel {
    n: usize,
    cont_mask: Vec<bool>,
    dom: u8,
    obj: Vec<i8>,
    sense_max: bool,
    cons: Vec<RawCon>,
}

fn strategy() -> impl Strategy<Value = RawModel> {
    (2usize..=6, 0u8..=3).prop_flat_map(|(n, dom)| {
        let con = (
            proptest::collection::vec(-3i8..=3, n),
            0u8..=2,
            -8i8..=16,
        )
            .prop_map(|(coefs, cmp, rhs)| RawCon { coefs, cmp, rhs });
        (
            Just(n),
            proptest::collection::vec(any::<bool>(), n),
            Just(dom),
            proptest::collection::vec(-5i8..=5, n),
            any::<bool>(),
            proptest::collection::vec(con, 1..=5),
        )
            .prop_map(|(n, cont_mask, dom, obj, sense_max, cons)| RawModel {
                n,
                cont_mask,
                dom,
                obj,
                sense_max,
                cons,
            })
    })
}

fn build(raw: &RawModel) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..raw.n)
        .map(|i| {
            let ub = (raw.dom + 1) as f64;
            if raw.cont_mask[i] {
                m.continuous(format!("y{i}"), 0.0, ub)
            } else {
                m.integer(format!("x{i}"), 0.0, ub)
            }
        })
        .collect();
    for (k, c) in raw.cons.iter().enumerate() {
        let mut e = LinExpr::zero();
        for (i, &a) in c.coefs.iter().enumerate() {
            if a != 0 {
                e.add_term(vars[i], a as f64);
            }
        }
        match c.cmp {
            0 => m.le(format!("c{k}"), e, c.rhs as f64),
            1 => m.ge(format!("c{k}"), e, c.rhs as f64),
            _ => m.eq(format!("c{k}"), e, c.rhs as f64),
        };
    }
    let mut obj = LinExpr::zero();
    for (i, &a) in raw.obj.iter().enumerate() {
        if a != 0 {
            obj.add_term(vars[i], a as f64);
        }
    }
    m.set_objective(obj, if raw.sense_max { Sense::Maximize } else { Sense::Minimize });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Cut-and-branch agrees with the plain historical search: same
    /// status, same optimal objective, and the cut run's solution is
    /// feasible for the *original* model (cuts only ever tighten the
    /// relaxation, never the integer hull).
    #[test]
    fn cuts_match_plain_on_mixed_models(raw in strategy()) {
        let m = build(&raw);
        let plain = solve_with(
            &m,
            &SolveOptions { cuts: false, pseudocost: false, ..Default::default() },
        )
        .expect("plain solve");
        let cuts = solve_with(&m, &SolveOptions::default()).expect("cuts solve");
        prop_assert_eq!(plain.status, cuts.status);
        if plain.status == SolveStatus::Optimal {
            let po = plain.solution.unwrap().objective;
            let cut_sol = cuts.solution.unwrap();
            prop_assert!(
                (po - cut_sol.objective).abs() < 1e-5,
                "plain {} vs cuts {} on {:?}", po, cut_sol.objective, raw
            );
            prop_assert!(
                m.check_feasible(&cut_sol.values, 1e-5).is_ok(),
                "cut solution violates the original model on {:?}", raw
            );
        }
    }

    /// Deterministic mode with cuts + pseudocost on is a pure function of
    /// the model: every thread count from 1 to 8 returns byte-identical
    /// variable values (the layouts downstream are byte-identical too).
    #[test]
    fn cuts_deterministic_across_thread_counts(raw in strategy()) {
        let m = build(&raw);
        let base = solve_with(
            &m,
            &SolveOptions { threads: 1, ..Default::default() },
        )
        .expect("1-thread solve");
        for threads in 2usize..=8 {
            let par = solve_with(
                &m,
                &SolveOptions { threads, deterministic: true, ..Default::default() },
            )
            .expect("parallel solve");
            prop_assert_eq!(par.status, base.status);
            match (&base.solution, &par.solution) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    &a.values, &b.values,
                    "values differ at {} threads on {:?}", threads, raw
                ),
                (None, None) => {}
                _ => prop_assert!(false, "solution existence differs at {threads} threads"),
            }
        }
    }
}

//! Feature tests for solver options: warm starts, relative gaps, and
//! branch priorities.

use std::time::Duration;

use p4all_ilp::{solve_with, LinExpr, Model, Sense, SolveOptions, SolveStatus, VarId};

fn knapsack(n: usize) -> (Model, Vec<VarId>) {
    let mut m = Model::new();
    let mut cap = LinExpr::zero();
    let mut obj = LinExpr::zero();
    let mut xs = Vec::new();
    for i in 0..n {
        let x = m.binary(format!("x{i}"));
        cap += LinExpr::term(x, ((i * 7 + 3) % 11 + 1) as f64);
        obj += LinExpr::term(x, ((i * 5 + 2) % 13 + 1) as f64);
        xs.push(x);
    }
    m.le("cap", cap, (2 * n) as f64);
    m.set_objective(obj, Sense::Maximize);
    (m, xs)
}

#[test]
fn feasible_warm_start_seeds_incumbent() {
    let (m, _) = knapsack(16);
    // All-zeros is always feasible for a knapsack.
    let warm = vec![0.0; m.num_vars()];
    let opts = SolveOptions { warm_start: Some(warm), ..Default::default() };
    let out = solve_with(&m, &opts).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    // With node_limit 0 and a warm start, we still get a Feasible answer.
    // Cuts stay off here: the root cut loop can close this knapsack with
    // zero nodes, and this test is about the zero-budget path.
    let opts = SolveOptions {
        warm_start: Some(vec![0.0; m.num_vars()]),
        node_limit: 0,
        dive_limit: 0,
        cuts: false,
        pseudocost: false,
        ..Default::default()
    };
    let out = solve_with(&m, &opts).unwrap();
    assert_eq!(out.status, SolveStatus::Feasible);
    assert_eq!(out.solution.unwrap().objective, 0.0);
}

#[test]
fn infeasible_warm_start_is_ignored() {
    let (m, xs) = knapsack(8);
    // All-ones overloads the capacity: must be rejected, solve continues.
    let warm = vec![1.0; m.num_vars()];
    let opts = SolveOptions { warm_start: Some(warm), ..Default::default() };
    let out = solve_with(&m, &opts).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    let sol = out.solution.unwrap();
    // The capacity constraint holds.
    let weight: f64 =
        xs.iter().enumerate().map(|(i, &x)| ((i * 7 + 3) % 11 + 1) as f64 * sol.value(x)).sum();
    assert!(weight <= 16.0 + 1e-6);
}

#[test]
fn wrong_length_warm_start_is_ignored() {
    let (m, _) = knapsack(8);
    let opts = SolveOptions { warm_start: Some(vec![0.0; 3]), ..Default::default() };
    let out = solve_with(&m, &opts).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
}

#[test]
fn relative_gap_accepts_near_optimal() {
    let (m, _) = knapsack(20);
    let exact = solve_with(&m, &SolveOptions::default()).unwrap();
    let loose = solve_with(
        &m,
        &SolveOptions { rel_gap: 0.05, ..Default::default() },
    )
    .unwrap();
    let e = exact.solution.unwrap().objective;
    let l = loose.solution.unwrap().objective;
    assert!(l >= e * 0.95 - 1e-9, "5% gap violated: {l} vs {e}");
    assert!(loose.nodes <= exact.nodes, "looser gap must not explore more");
}

#[test]
fn branch_priority_changes_exploration_order() {
    // Priorities must not affect correctness.
    let (mut m, xs) = knapsack(14);
    for (i, &x) in xs.iter().enumerate() {
        m.set_branch_priority(x, (i % 3) as i32 * 10);
    }
    let with = solve_with(&m, &SolveOptions::default()).unwrap();
    let (m0, _) = knapsack(14);
    let without = solve_with(&m0, &SolveOptions::default()).unwrap();
    assert_eq!(with.status, SolveStatus::Optimal);
    assert!(
        (with.solution.unwrap().objective - without.solution.unwrap().objective).abs() < 1e-9
    );
}

#[test]
fn time_limit_returns_best_found() {
    let (m, _) = knapsack(26);
    let opts = SolveOptions {
        time_limit: Some(Duration::from_millis(1)),
        dive_limit: 0,
        ..Default::default()
    };
    let out = solve_with(&m, &opts).unwrap();
    // Either it proved optimality within a millisecond (possible for this
    // size) or it stopped with whatever it had.
    assert!(matches!(
        out.status,
        SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::Unknown
    ));
}

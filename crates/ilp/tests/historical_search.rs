//! Pin the historical branch-and-bound search: with
//! `SolveOptions { cuts: false, pseudocost: false }` the solver must
//! reproduce the pre-cutting-plane search byte-for-byte — same node
//! counts, same LP counts, same objective — on fixed models whose
//! counts were recorded from the historical solver before the cut
//! engine landed.

use p4all_ilp::{solve_with, LinExpr, Model, Sense, SolveOptions, SolveStatus};

/// A 14-item knapsack whose root LP is fractional (the model from the
/// parallel solver's own differential tests). The historical solver
/// closes it at the root via the cold dive.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut obj = LinExpr::zero();
    let mut cap = LinExpr::zero();
    for i in 0..n {
        let x = m.binary(format!("x{i}"));
        obj += LinExpr::term(x, ((i * 7 + 3) % 11 + 1) as f64);
        cap += LinExpr::term(x, ((i * 5 + 2) % 9 + 1) as f64);
    }
    m.le("cap", cap, (2 * n) as f64);
    m.set_objective(obj, Sense::Maximize);
    m
}

/// Equal-weight knapsack against an odd capacity: every LP vertex is
/// fractional, so the historical search branches repeatedly.
fn branchy() -> Model {
    let mut m = Model::new();
    let mut obj = LinExpr::zero();
    let mut cap = LinExpr::zero();
    for i in 0..15 {
        let x = m.binary(format!("x{i}"));
        obj += LinExpr::term(x, (i + 1) as f64);
        cap += LinExpr::term(x, 2.0);
    }
    m.le("cap", cap, 9.0);
    m.set_objective(obj, Sense::Maximize);
    m
}

fn historical_opts(threads: usize) -> SolveOptions {
    SolveOptions { threads, cuts: false, pseudocost: false, ..SolveOptions::default() }
}

/// Counts recorded from the solver before the cut engine existed
/// (commit b8c335b). `cuts: false, pseudocost: false` must reproduce
/// them exactly in sequential and deterministic-parallel modes.
#[test]
fn historical_counts_pinned() {
    // (name, model, threads, expected nodes, expected lp_solves, objective)
    let cases: Vec<(&str, Model, usize, usize, usize, f64)> = vec![
        ("knapsack14-1t", knapsack(14), 1, 1, 1, 54.0),
        ("knapsack14-4t", knapsack(14), 4, 1, 1, 54.0),
        ("branchy-1t", branchy(), 1, 143, 170, 54.0),
        ("branchy-4t", branchy(), 4, 143, 170, 54.0),
    ];
    for (name, m, threads, nodes, lps, obj) in cases {
        let out = solve_with(&m, &historical_opts(threads)).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal, "{name}");
        assert_eq!(out.nodes, nodes, "{name}: node count drifted");
        assert_eq!(out.lp_solves, lps, "{name}: LP count drifted");
        assert!((out.solution.unwrap().objective - obj).abs() < 1e-9, "{name}");
    }
}

/// Same pin with the root dive disabled — the pure tree search.
#[test]
fn historical_counts_pinned_no_dive() {
    let opts = SolveOptions { dive_limit: 0, ..historical_opts(1) };
    let out = solve_with(&branchy(), &opts).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.nodes, 143);
    assert_eq!(out.lp_solves, 144);
}

/// The cut engine must not change the optimum: cuts+pseudocost on vs
/// off agree on objective and status for the pinned models.
#[test]
fn cuts_preserve_objective_on_pinned_models() {
    for m in [knapsack(14), branchy()] {
        let off = solve_with(&m, &historical_opts(1)).unwrap();
        let on = solve_with(&m, &SolveOptions { threads: 1, ..SolveOptions::default() }).unwrap();
        assert_eq!(off.status, on.status);
        let (a, b) = (off.solution.unwrap().objective, on.solution.unwrap().objective);
        assert!((a - b).abs() < 1e-6, "cuts changed objective: {a} vs {b}");
    }
}

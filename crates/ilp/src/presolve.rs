//! Lightweight presolve: iterated bound propagation.
//!
//! Presolve never rewrites the model; it produces a tightened copy of the
//! variable bounds (and may prove infeasibility outright). Branch-and-bound
//! seeds its root node with these bounds, which both shrinks the LP
//! relaxation's feasible region and lets integral rounding fix variables
//! before any LP is solved.

use crate::model::{Cmp, Model};

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// Tightened `(lb, ub)` per variable, in variable order.
    Bounds(Vec<(f64, f64)>),
    /// The constraint system admits no assignment at all.
    Infeasible { reason: String },
}

const TOL: f64 = 1e-9;
const MAX_ROUNDS: usize = 16;

/// Run bound propagation to a fixpoint (or `MAX_ROUNDS`).
pub fn presolve(model: &Model) -> Presolved {
    let mut lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();

    // Integral rounding of the original bounds.
    for (j, v) in model.vars().iter().enumerate() {
        if v.is_integral() {
            lb[j] = (lb[j] - TOL).ceil();
            if ub[j].is_finite() {
                ub[j] = (ub[j] + TOL).floor();
            }
        }
        if lb[j] > ub[j] + TOL {
            return Presolved::Infeasible {
                reason: format!("variable {} has empty domain [{}, {}]", v.name, lb[j], ub[j]),
            };
        }
    }

    for _round in 0..MAX_ROUNDS {
        let mut changed = false;
        for con in model.constraints() {
            // Treat Eq as both Le and Ge.
            let passes: &[Cmp] = match con.cmp {
                Cmp::Le => &[Cmp::Le],
                Cmp::Ge => &[Cmp::Ge],
                Cmp::Eq => &[Cmp::Le, Cmp::Ge],
            };
            for &pass in passes {
                // Normalize to sum a_j x_j <= b.
                let sign = if pass == Cmp::Le { 1.0 } else { -1.0 };
                let b = sign * con.rhs;
                // Minimum activity given bounds.
                let mut min_act = 0.0f64;
                let mut n_inf = 0usize; // number of terms with -inf min contribution
                for &(v, c0) in &con.terms {
                    let c = sign * c0;
                    let contrib = if c > 0.0 { c * lb[v.index()] } else { c * ub[v.index()] };
                    if contrib.is_finite() {
                        min_act += contrib;
                    } else {
                        n_inf += 1;
                    }
                }
                if n_inf == 0 && min_act > b + 1e-6 {
                    return Presolved::Infeasible {
                        reason: format!(
                            "constraint {}: minimum activity {} exceeds bound {}",
                            con.name, min_act, b
                        ),
                    };
                }
                // Propagate each term: c x <= b - (min_act - own_min_contrib).
                if n_inf > 1 {
                    continue; // cannot compute a finite residual for anyone
                }
                for &(v, c0) in &con.terms {
                    let j = v.index();
                    let c = sign * c0;
                    let own = if c > 0.0 { c * lb[j] } else { c * ub[j] };
                    if n_inf == 1 && own.is_finite() {
                        continue; // the infinite contribution is elsewhere
                    }
                    let rest = if own.is_finite() { min_act - own } else { min_act };
                    let slack = b - rest;
                    if c > TOL {
                        let new_ub = slack / c;
                        let new_ub = if model.var(v).is_integral() {
                            (new_ub + 1e-6).floor()
                        } else {
                            new_ub
                        };
                        if new_ub < ub[j] - 1e-9 {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    } else if c < -TOL {
                        let new_lb = slack / c;
                        let new_lb = if model.var(v).is_integral() {
                            (new_lb - 1e-6).ceil()
                        } else {
                            new_lb
                        };
                        if new_lb > lb[j] + 1e-9 {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + 1e-9 {
                        return Presolved::Infeasible {
                            reason: format!(
                                "variable {} forced into empty domain [{}, {}] by {}",
                                model.var(v).name,
                                lb[j],
                                ub[j],
                                con.name
                            ),
                        };
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Presolved::Bounds(lb.into_iter().zip(ub).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    #[test]
    fn tightens_singleton_upper_bound() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 100.0);
        m.le("cap", LinExpr::term(x, 2.0), 11.0);
        match presolve(&m) {
            Presolved::Bounds(b) => assert_eq!(b[0], (0.0, 5.0)), // floor(11/2)
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tightens_through_other_terms() {
        // x + y <= 5 with y >= 3 forces x <= 2.
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 3.0, 100.0);
        m.le("cap", LinExpr::from(x) + LinExpr::from(y), 5.0);
        match presolve(&m) {
            Presolved::Bounds(b) => {
                assert_eq!(b[x.index()].1, 2.0);
                assert_eq!(b[y.index()].1, 5.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detects_infeasible_activity() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        m.ge("too_much", LinExpr::from(x) + LinExpr::from(y), 3.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible { .. }));
    }

    #[test]
    fn ge_propagates_lower_bounds() {
        // x >= 4 via 2x >= 8
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        m.ge("floor", LinExpr::term(x, 2.0), 8.0);
        match presolve(&m) {
            Presolved::Bounds(b) => assert_eq!(b[0].0, 4.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_propagates_both_ways() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 0.0, 3.0);
        m.eq("link", LinExpr::from(x) - LinExpr::from(y), 0.0);
        match presolve(&m) {
            Presolved::Bounds(b) => assert_eq!(b[x.index()], (0.0, 3.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_fractional_integer_domain_is_infeasible() {
        // [2.4, 2.4] holds no integer: rounding gives lb 3 > ub 2.
        let mut m = Model::new();
        m.integer("x", 2.4, 2.4);
        assert!(matches!(presolve(&m), Presolved::Infeasible { .. }));
    }

    #[test]
    fn near_integral_degenerate_domain_survives_rounding() {
        // A point domain a hair off an integer must round to that integer,
        // not to an empty interval (the 1e-9 rounding tolerance).
        let mut m = Model::new();
        let eps = 1e-12;
        m.integer("x", 2.0 + eps, 2.0 + eps);
        match presolve(&m) {
            Presolved::Bounds(b) => assert_eq!(b[0], (2.0, 2.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integral_rounding_with_unbounded_upper() {
        // Fractional lower bound rounds up; the infinite upper bound must
        // pass through untouched (floor(inf) would poison it to NaN-land).
        let mut m = Model::new();
        m.integer("x", 1.5, f64::INFINITY);
        match presolve(&m) {
            Presolved::Bounds(b) => {
                assert_eq!(b[0].0, 2.0);
                assert!(b[0].1.is_infinite() && b[0].1 > 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slow_shrinking_chain_stops_at_max_rounds() {
        // x <= y and y <= x - 1 is infeasible, but each propagation round
        // only shrinks the box by ~1. With wide domains the fixpoint is
        // beyond MAX_ROUNDS: presolve must terminate with conservative,
        // still-valid bounds instead of looping to the proof.
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 1e6);
        let y = m.integer("y", 0.0, 1e6);
        m.le("x_le_y", LinExpr::from(x) - LinExpr::from(y), 0.0);
        m.le("y_lt_x", LinExpr::from(y) - LinExpr::from(x), -1.0);
        match presolve(&m) {
            Presolved::Bounds(b) => {
                for &(lb, ub) in &b {
                    assert!(lb <= ub, "presolve returned an empty box [{lb}, {ub}]");
                }
                // It made progress every round before giving up.
                assert!(b[x.index()].1 < 1e6);
            }
            // Proving infeasibility this fast would be fine too, but the
            // pure bound-propagation pass cannot: guard the expectation so
            // a future smarter presolve updates this test consciously.
            Presolved::Infeasible { .. } => panic!("bound propagation cannot prove this in 16 rounds"),
        }
    }

    #[test]
    fn handles_infinite_bounds_gracefully() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.le("cap", LinExpr::from(x) + LinExpr::from(y), 7.5);
        match presolve(&m) {
            Presolved::Bounds(b) => {
                assert_eq!(b[0].1, 7.5);
                assert_eq!(b[1].1, 7.5);
            }
            other => panic!("{other:?}"),
        }
    }
}

//! Model-building API for mixed-integer linear programs.
//!
//! A [`Model`] owns a set of variables (continuous, general integer, or
//! binary), a set of linear constraints, and a linear objective. The P4All
//! compiler builds one `Model` per compilation and hands it to
//! [`crate::solve`]; the model type is also usable standalone.
//!
//! All variables must have a finite lower bound; upper bounds may be
//! `f64::INFINITY`. Constraints compare a [`LinExpr`] against a constant
//! with `<=`, `>=`, or `==`.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a variable inside a [`Model`].
///
/// `VarId`s are only meaningful for the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of this variable in the model's variable list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable (bounds may be any finite/infinite range).
    Integer,
    /// Integer variable with implicit bounds `[0, 1]`.
    Binary,
}

/// A variable: name (for diagnostics), kind, and bounds.
#[derive(Debug, Clone)]
pub struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
    /// Branch-and-bound picks fractional variables with higher priority
    /// first (ties broken by fractionality). Default 0.
    pub branch_priority: i32,
}

impl Variable {
    /// True if this variable must take an integer value.
    pub fn is_integral(&self) -> bool {
        matches!(self.kind, VarKind::Integer | VarKind::Binary)
    }
}

/// A linear expression: `sum(coef * var) + constant`.
///
/// Supports `+`, `-`, scaling by `f64`, and building from `VarId`.
/// Duplicate variable terms are allowed during construction and merged by
/// [`LinExpr::normalize`] (called automatically when the expression enters
/// a model).
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    pub terms: Vec<(VarId, f64)>,
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr { terms: Vec::new(), constant: c }
    }

    /// A single-variable term `coef * var`.
    pub fn term(var: VarId, coef: f64) -> Self {
        LinExpr { terms: vec![(var, coef)], constant: 0.0 }
    }

    /// Add `coef * var` in place.
    pub fn add_term(&mut self, var: VarId, coef: f64) {
        self.terms.push((var, coef));
    }

    /// Merge duplicate variables and drop (near-)zero coefficients.
    pub fn normalize(&mut self) {
        if self.terms.is_empty() {
            return;
        }
        self.terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c.abs() > 1e-12);
        self.terms = out;
    }

    /// Evaluate against an assignment vector indexed by variable id.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.0])
                .sum::<f64>()
    }

    /// True if the expression contains no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|&(_, c)| c.abs() <= 1e-12)
    }

    /// Sum an iterator of expressions.
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> Self {
        let mut acc = LinExpr::zero();
        for e in items {
            acc += e;
        }
        acc
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.terms.push((v, -c));
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.constant *= k;
        self
    }
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "=="),
        }
    }
}

/// A linear constraint `expr cmp rhs` (the expression's constant has been
/// folded into `rhs` on entry to the model).
#[derive(Debug, Clone)]
pub struct Constraint {
    pub name: String,
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

impl Constraint {
    /// Check satisfaction under an assignment, within `tol`.
    pub fn satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs: f64 = self.terms.iter().map(|&(v, c)| c * values[v.0]).sum();
        match self.cmp {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Ge => lhs >= self.rhs - tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    #[default]
    Maximize,
    Minimize,
}

/// A mixed-integer linear program under construction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
    name_index: HashMap<String, VarId>,
}

/// Size statistics of a model (reported in the Fig. 11 reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    pub num_vars: usize,
    pub num_binary: usize,
    pub num_integer: usize,
    pub num_continuous: usize,
    pub num_constraints: usize,
    pub num_nonzeros: usize,
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vars ({} bin, {} int, {} cont), {} constraints, {} nonzeros",
            self.num_vars,
            self.num_binary,
            self.num_integer,
            self.num_continuous,
            self.num_constraints,
            self.num_nonzeros
        )
    }
}

impl Model {
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a binary (0/1) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name.into(), VarKind::Binary, 0.0, 1.0)
    }

    /// Add a general integer variable with bounds `[lb, ub]`.
    pub fn integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name.into(), VarKind::Integer, lb, ub)
    }

    /// Add a continuous variable with bounds `[lb, ub]`.
    pub fn continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name.into(), VarKind::Continuous, lb, ub)
    }

    fn add_var(&mut self, name: String, kind: VarKind, lb: f64, ub: f64) -> VarId {
        assert!(lb.is_finite(), "variable {name}: lower bound must be finite");
        assert!(!ub.is_nan() && ub >= lb, "variable {name}: bad bounds [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(Variable { name: name.clone(), kind, lb, ub, branch_priority: 0 });
        self.name_index.insert(name, id);
        id
    }

    /// Look up a variable by name (diagnostics / tests).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.name_index.get(name).copied()
    }

    /// Variable metadata.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// All variables, in id order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.cons
    }

    /// Add the constraint `expr cmp rhs`. The expression's constant term is
    /// folded into the right-hand side. Returns the row index of the new
    /// constraint — stable for the life of the model — so callers can
    /// attach provenance to rows (see `p4all-core`'s ILP generator) and
    /// map IIS members back to their origin.
    pub fn constrain(
        &mut self,
        name: impl Into<String>,
        mut expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) -> usize {
        expr.normalize();
        let adjusted_rhs = rhs - expr.constant;
        self.cons.push(Constraint {
            name: name.into(),
            terms: expr.terms,
            cmp,
            rhs: adjusted_rhs,
        });
        self.cons.len() - 1
    }

    /// Convenience: `lhs <= rhs`. Returns the row index.
    pub fn le(&mut self, name: impl Into<String>, lhs: LinExpr, rhs: f64) -> usize {
        self.constrain(name, lhs, Cmp::Le, rhs)
    }

    /// Convenience: `lhs >= rhs`. Returns the row index.
    pub fn ge(&mut self, name: impl Into<String>, lhs: LinExpr, rhs: f64) -> usize {
        self.constrain(name, lhs, Cmp::Ge, rhs)
    }

    /// Convenience: `lhs == rhs`. Returns the row index.
    pub fn eq(&mut self, name: impl Into<String>, lhs: LinExpr, rhs: f64) -> usize {
        self.constrain(name, lhs, Cmp::Eq, rhs)
    }

    /// Clone the model keeping only the constraint rows in `keep`
    /// (variables, bounds, and objective are preserved). Used by the IIS
    /// deletion filter to probe constraint subsets.
    pub fn restricted_to(&self, keep: &[usize]) -> Model {
        let mut m = self.clone();
        m.cons = keep.iter().filter_map(|&i| self.cons.get(i).cloned()).collect();
        m
    }

    /// Set a variable's branch priority (higher = branched earlier).
    pub fn set_branch_priority(&mut self, var: VarId, priority: i32) {
        self.vars[var.0].branch_priority = priority;
    }

    /// Set the objective expression and direction.
    pub fn set_objective(&mut self, mut expr: LinExpr, sense: Sense) {
        expr.normalize();
        self.objective = expr;
        self.sense = sense;
    }

    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Size statistics.
    pub fn stats(&self) -> ModelStats {
        let mut num_binary = 0;
        let mut num_integer = 0;
        let mut num_continuous = 0;
        for v in &self.vars {
            match v.kind {
                VarKind::Binary => num_binary += 1,
                VarKind::Integer => num_integer += 1,
                VarKind::Continuous => num_continuous += 1,
            }
        }
        ModelStats {
            num_vars: self.vars.len(),
            num_binary,
            num_integer,
            num_continuous,
            num_constraints: self.cons.len(),
            num_nonzeros: self.cons.iter().map(|c| c.terms.len()).sum(),
        }
    }

    /// Check that an assignment satisfies every bound, integrality
    /// requirement, and constraint within `tol`. Returns the first
    /// violation as an error string.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        if values.len() != self.vars.len() {
            return Err(format!(
                "assignment has {} values for {} variables",
                values.len(),
                self.vars.len()
            ));
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return Err(format!("{}: value {} outside [{}, {}]", v.name, x, v.lb, v.ub));
            }
            if v.is_integral() && (x - x.round()).abs() > tol {
                return Err(format!("{}: value {} not integral", v.name, x));
            }
        }
        for c in &self.cons {
            if !c.satisfied(values, tol) {
                let lhs: f64 = c.terms.iter().map(|&(v, k)| k * values[v.0]).sum();
                return Err(format!("{}: {} {} {} violated", c.name, lhs, c.cmp, c.rhs));
            }
        }
        Ok(())
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.eval(values)
    }
}

/// A feasible assignment with its objective value.
#[derive(Debug, Clone)]
pub struct Solution {
    pub values: Vec<f64>,
    pub objective: f64,
}

impl Solution {
    /// Value of a variable, rounded for integral variables by the solver.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Value of a variable rounded to the nearest integer (convenience for
    /// binary/integer variables).
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.0].round() as i64
    }
}

/// Exhaustively solve a model whose integral variables all have finite,
/// small ranges; continuous variables are not supported. Used as the
/// reference oracle in tests. Returns `None` if infeasible.
///
/// Panics if the search space exceeds `max_points`.
pub fn brute_force(model: &Model, max_points: u64) -> Option<Solution> {
    let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(model.vars.len());
    let mut space: u64 = 1;
    for v in &model.vars {
        assert!(
            v.is_integral(),
            "brute_force: continuous variable {} unsupported",
            v.name
        );
        assert!(v.ub.is_finite(), "brute_force: unbounded variable {}", v.name);
        let lo = v.lb.ceil() as i64;
        let hi = v.ub.floor() as i64;
        if lo > hi {
            return None;
        }
        let width = (hi - lo + 1) as u64;
        space = space.saturating_mul(width);
        assert!(space <= max_points, "brute_force: search space too large");
        ranges.push((lo, hi));
    }

    let n = ranges.len();
    let mut current: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
    let mut best: Option<(f64, Vec<f64>)> = None;
    loop {
        let values: Vec<f64> = current.iter().map(|&x| x as f64).collect();
        if model.check_feasible(&values, 1e-6).is_ok() {
            let obj = model.objective_value(&values);
            let better = match (&best, model.sense) {
                (None, _) => true,
                (Some((b, _)), Sense::Maximize) => obj > *b + 1e-12,
                (Some((b, _)), Sense::Minimize) => obj < *b - 1e-12,
            };
            if better {
                best = Some((obj, values));
            }
        }
        // advance odometer
        let mut i = 0;
        loop {
            if i == n {
                return best.map(|(objective, values)| Solution { values, objective });
            }
            current[i] += 1;
            if current[i] <= ranges[i].1 {
                break;
            }
            current[i] = ranges[i].0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_normalize_merges_duplicates() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        let mut e = LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0) + LinExpr::term(x, 3.0);
        e.normalize();
        assert_eq!(e.terms.len(), 2);
        assert_eq!(e.terms[0], (x, 4.0));
        assert_eq!(e.terms[1], (y, 2.0));
    }

    #[test]
    fn linexpr_normalize_drops_zeros() {
        let mut m = Model::new();
        let x = m.binary("x");
        let mut e = LinExpr::term(x, 1.0) - LinExpr::term(x, 1.0);
        e.normalize();
        assert!(e.terms.is_empty());
        assert!(e.is_constant());
    }

    #[test]
    fn linexpr_eval() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        let e = LinExpr::term(x, 2.0) + LinExpr::term(y, -1.0) + LinExpr::constant(5.0);
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0 * 3.0 - 4.0 + 5.0);
    }

    #[test]
    fn linexpr_ops() {
        let mut m = Model::new();
        let x = m.binary("x");
        let e = (LinExpr::from(x) * 3.0 - LinExpr::constant(1.0)).neg();
        assert_eq!(e.constant, 1.0);
        assert_eq!(e.terms[0].1, -3.0);
    }

    #[test]
    fn constraint_constant_folding() {
        let mut m = Model::new();
        let x = m.binary("x");
        // x + 5 <= 6  ==>  x <= 1
        m.le("c", LinExpr::from(x) + LinExpr::constant(5.0), 6.0);
        assert_eq!(m.cons[0].rhs, 1.0);
    }

    #[test]
    fn check_feasible_detects_violations() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        m.le("sum", LinExpr::from(x) + LinExpr::from(y), 1.0);
        assert!(m.check_feasible(&[1.0, 0.0], 1e-6).is_ok());
        assert!(m.check_feasible(&[1.0, 1.0], 1e-6).is_err());
        assert!(m.check_feasible(&[0.5, 0.0], 1e-6).is_err()); // not integral
        assert!(m.check_feasible(&[2.0, 0.0], 1e-6).is_err()); // out of bounds
    }

    #[test]
    fn brute_force_knapsack() {
        // max 3a + 4b + 5c  s.t. 2a + 3b + 4c <= 6
        let mut m = Model::new();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.le(
            "cap",
            LinExpr::term(a, 2.0) + LinExpr::term(b, 3.0) + LinExpr::term(c, 4.0),
            6.0,
        );
        m.set_objective(
            LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 5.0),
            Sense::Maximize,
        );
        let sol = brute_force(&m, 1_000).expect("feasible");
        assert_eq!(sol.objective, 8.0); // a + c (weight 6, value 8)
        assert_eq!(sol.int_value(a), 1);
        assert_eq!(sol.int_value(b), 0);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn brute_force_detects_infeasible() {
        let mut m = Model::new();
        let a = m.binary("a");
        m.ge("impossible", LinExpr::from(a), 2.0);
        assert!(brute_force(&m, 100).is_none());
    }

    #[test]
    fn stats_counts() {
        let mut m = Model::new();
        let a = m.binary("a");
        let b = m.integer("b", 0.0, 9.0);
        m.continuous("c", 0.0, 1.0);
        m.le("c1", LinExpr::from(a) + LinExpr::from(b), 5.0);
        let s = m.stats();
        assert_eq!(s.num_vars, 3);
        assert_eq!(s.num_binary, 1);
        assert_eq!(s.num_integer, 1);
        assert_eq!(s.num_continuous, 1);
        assert_eq!(s.num_constraints, 1);
        assert_eq!(s.num_nonzeros, 2);
    }

    #[test]
    fn var_by_name_lookup() {
        let mut m = Model::new();
        let a = m.binary("alpha");
        assert_eq!(m.var_by_name("alpha"), Some(a));
        assert_eq!(m.var_by_name("beta"), None);
    }
}

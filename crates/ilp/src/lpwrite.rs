//! Export a [`Model`] in CPLEX LP text format.
//!
//! Lets a compiler user inspect the generated program or cross-check our
//! solver against an external one (`gurobi_cl model.lp`, `glpsol --lp`),
//! which is how the encoding was validated during development.

use std::fmt::Write;

use crate::model::{Cmp, Model, Sense, VarKind};

/// Render the model as LP-format text.
pub fn write_lp(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\\ {} variables, {} constraints",
        model.num_vars(),
        model.num_constraints()
    );
    let _ = writeln!(
        out,
        "{}",
        match model.sense() {
            Sense::Maximize => "Maximize",
            Sense::Minimize => "Minimize",
        }
    );
    let mut obj = String::from(" obj:");
    if model.objective().terms.is_empty() {
        obj.push_str(" 0 x0");
    }
    for &(v, c) in &model.objective().terms {
        let _ = write!(obj, " {} {}", signed(c), ident(model, v.index()));
    }
    let _ = writeln!(out, "{obj}");

    let _ = writeln!(out, "Subject To");
    for (i, con) in model.constraints().iter().enumerate() {
        let mut row = format!(" c{i}:");
        for &(v, c) in &con.terms {
            let _ = write!(row, " {} {}", signed(c), ident(model, v.index()));
        }
        let op = match con.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, "{row} {op} {}", con.rhs);
    }

    let _ = writeln!(out, "Bounds");
    for (j, var) in model.vars().iter().enumerate() {
        if var.kind == VarKind::Binary {
            continue; // covered by the Binary section
        }
        let ub = if var.ub.is_finite() { format!("{}", var.ub) } else { "+inf".into() };
        let _ = writeln!(out, " {} <= {} <= {}", var.lb, ident(model, j), ub);
    }

    let generals: Vec<String> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| ident(model, j))
        .collect();
    if !generals.is_empty() {
        let _ = writeln!(out, "Generals");
        let _ = writeln!(out, " {}", generals.join(" "));
    }
    let binaries: Vec<String> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Binary)
        .map(|(j, _)| ident(model, j))
        .collect();
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binary");
        let _ = writeln!(out, " {}", binaries.join(" "));
    }
    let _ = writeln!(out, "End");
    out
}

/// LP-format identifiers exclude most punctuation; sanitize the model's
/// human-readable names deterministically and keep them unique via the
/// variable index.
fn ident(model: &Model, j: usize) -> String {
    let raw = &model.vars()[j].name;
    let mut s: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'v');
    }
    format!("{s}__{j}")
}

fn signed(c: f64) -> String {
    if c < 0.0 {
        format!("- {}", -c)
    } else {
        format!("+ {c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    #[test]
    fn lp_text_contains_all_sections() {
        let mut m = Model::new();
        let a = m.binary("x[a][0]");
        let b = m.integer("cells", 0.0, 100.0);
        let c = m.continuous("slack", 0.0, f64::INFINITY);
        m.le("cap", LinExpr::from(a) + LinExpr::term(b, 32.0) + LinExpr::from(c), 64.0);
        m.ge("floor", LinExpr::from(b) - LinExpr::term(a, 5.0), 1.0);
        m.set_objective(LinExpr::term(b, 1.0) + LinExpr::term(a, -2.0), Sense::Maximize);
        let lp = write_lp(&m);
        assert!(lp.contains("Maximize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.contains("Bounds"));
        assert!(lp.contains("Generals"));
        assert!(lp.contains("Binary"));
        assert!(lp.contains("End"));
        // Sanitized, index-suffixed names.
        assert!(lp.contains("x_a__0___0"), "{lp}");
        assert!(lp.contains("cells__1"));
        assert!(lp.contains("<= 64"));
        assert!(lp.contains(">= 1"));
        assert!(lp.contains("+inf"));
    }

    #[test]
    fn minimize_and_eq_render() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 9.0);
        m.eq("pin", LinExpr::from(x), 3.0);
        m.set_objective(LinExpr::from(x), Sense::Minimize);
        let lp = write_lp(&m);
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("= 3"));
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut m = Model::new();
        let _ = m.binary("only");
        let lp = write_lp(&m);
        assert!(lp.contains("obj: 0 x0"));
    }
}

//! Parallel best-first branch-and-bound.
//!
//! Two execution modes, selected by [`crate::SolveOptions::deterministic`]:
//!
//! * **Deterministic rounds** (default): workers synchronize on a barrier.
//!   Each round the orchestrating thread pops the best `T` frontier nodes
//!   (bound-ordered), hands node `i` to worker `i`, and after the barrier
//!   applies all results *in batch order*. Incumbent ties are broken
//!   lexicographically on the value vector, so the outcome is a pure
//!   function of (model, options, threads) — independent of how the OS
//!   schedules the workers.
//!
//! * **Free-running**: workers pull from a shared `Mutex`-guarded frontier
//!   and publish incumbents through the same lock, sleeping on a `Condvar`
//!   when the frontier is empty. Termination is by idle counting: when all
//!   `T` workers are simultaneously out of work the tree is exhausted.
//!   Highest throughput, but node counts and equal-objective tie-breaks
//!   depend on scheduling.
//!
//! Both modes prune against the shared incumbent with the same
//! `gap_tol`/`rel_gap` rules as the sequential search and honor the global
//! node and time budgets. The sequential path in [`crate::branch`] never
//! enters this module.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

use crate::branch::{finish, BranchInfo, LpWork, MipOutcome, Node, Prepared, SearchAux, SearchCtx, SolveStatus};
use crate::cuts::CutCounters;
use crate::model::Model;
use crate::simplex::{solve_lp_ext, Basis, LpError, LpResult, LpSolve};
use crate::telemetry::{IncumbentEvent, IncumbentSource, SolveTelemetry};

/// Per-worker counters: nodes, LP solves, and LP work (pivots etc.).
type WorkerCounts = (usize, usize, LpWork);

/// Frontier entry: best-first on the inherited LP bound, FIFO on the
/// insertion sequence for ties so the heap order is total and reproducible.
struct HeapNode {
    node: Node,
    seq: u64,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapNode {}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Higher bound wins; on equal bounds the older node wins (so the
        // child "nearest the LP value" keeps the priority it had in the
        // sequential search).
        self.node
            .parent_score
            .total_cmp(&other.node.parent_score)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Strict lexicographic order on value vectors (the deterministic
/// tie-break for incumbents with equal objective).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Less) => return true,
            Some(std::cmp::Ordering::Greater) => return false,
            _ => {}
        }
    }
    false
}

/// Does a candidate (score, values) replace the incumbent? Strict
/// improvement always does; in deterministic mode an exact tie goes to the
/// lexicographically smaller value vector so thread scheduling cannot pick
/// the winner.
fn improves(deterministic: bool, s: f64, vals: &[f64], inc: &Option<(f64, Vec<f64>)>) -> bool {
    match inc {
        None => true,
        Some((b, bvals)) => {
            s > *b + 1e-12 || (deterministic && (s - *b).abs() <= 1e-12 && lex_less(vals, bvals))
        }
    }
}

/// Push both children of a branching decision onto the frontier. Mirrors
/// the sequential child construction: bound variable `j` down to
/// `floor(v)` / up to `floor(v) + 1`, nearest-to-LP child first (it gets
/// the smaller sequence number, hence priority on bound ties).
fn push_children(
    heap: &mut BinaryHeap<HeapNode>,
    next_seq: &mut u64,
    bounds: &[(f64, f64)],
    j: usize,
    v: f64,
    score: f64,
    basis: &Option<Arc<Basis>>,
) -> usize {
    let floor = v.floor();
    let f = v - floor;
    let mut down = bounds.to_vec();
    down[j].1 = down[j].1.min(floor);
    let mut up = bounds.to_vec();
    up[j].0 = up[j].0.max(floor + 1.0);
    let dn_branch = BranchInfo { var: j, dist: f, up: false };
    let up_branch = BranchInfo { var: j, dist: 1.0 - f, up: true };
    let (near, nb, far, fb) = if f <= 0.5 {
        (down, dn_branch, up, up_branch)
    } else {
        (up, up_branch, down, dn_branch)
    };
    let mut pushed = 0;
    for (child, branch) in [(near, nb), (far, fb)] {
        if child[j].0 <= child[j].1 {
            heap.push(HeapNode {
                node: Node {
                    bounds: child,
                    parent_score: score,
                    basis: basis.clone(),
                    branch: Some(branch),
                },
                seq: *next_seq,
            });
            *next_seq += 1;
            pushed += 1;
        }
    }
    pushed
}

/// Entry point from [`crate::branch::solve_with`] for `threads > 1`.
pub(crate) fn solve_parallel(
    ctx: &SearchCtx<'_>,
    prepared: Prepared,
    aux: SearchAux,
) -> Result<MipOutcome, LpError> {
    let threads = ctx.opts.effective_threads();
    debug_assert!(threads > 1);
    if ctx.opts.deterministic {
        solve_deterministic(ctx, prepared, aux, threads)
    } else {
        solve_free(ctx, prepared, aux, threads)
    }
}

fn make_telemetry(
    ctx: &SearchCtx<'_>,
    threads: usize,
    per_thread: &[WorkerCounts],
    events: Vec<IncumbentEvent>,
    cuts: CutCounters,
) -> SolveTelemetry {
    let mut t = SolveTelemetry::trivial(threads, ctx.opts.deterministic);
    for (w, &(nodes, lps, work)) in per_thread.iter().enumerate() {
        t.per_thread[w] = work.into_thread(w, nodes, lps);
    }
    t.incumbents = events;
    t.cuts = cuts;
    t
}

fn unbounded_outcome(
    ctx: &SearchCtx<'_>,
    threads: usize,
    per_thread: &[WorkerCounts],
    events: Vec<IncumbentEvent>,
    cuts: CutCounters,
) -> MipOutcome {
    let telemetry = make_telemetry(ctx, threads, per_thread, events, cuts);
    MipOutcome {
        status: SolveStatus::Unbounded,
        solution: None,
        nodes: telemetry.total_nodes(),
        lp_solves: telemetry.total_lp_solves(),
        elapsed: ctx.start.elapsed(),
        telemetry,
    }
}

// --------------------------------------------------------------------
// Deterministic rounds
// --------------------------------------------------------------------

/// Round-synchronized parallel search. The orchestrating thread is worker
/// 0; workers `1..T` each solve at most one LP per round. Two barrier
/// waits per round: one after the batch is published, one after all
/// results are in. All frontier and incumbent mutation happens on the
/// orchestrating thread, in batch order — that is what makes the search a
/// pure function of its inputs.
fn solve_deterministic(
    ctx: &SearchCtx<'_>,
    prepared: Prepared,
    mut aux: SearchAux,
    threads: usize,
) -> Result<MipOutcome, LpError> {
    let model = ctx.model;
    // Workers relax against the cut-extended model (fixed for the whole
    // search: no node-level separation in parallel mode); incumbents are
    // still validated against the original `model`.
    let cut_model = aux.cut_model.take();
    let lp_model: &Model = cut_model.as_ref().unwrap_or(model);
    let opts = ctx.opts;
    let Prepared {
        root_bounds,
        root_score,
        mut incumbent,
        lp_solves: root_lps,
        mut events,
        root_basis,
        lp_work: root_work,
    } = prepared;

    let mut heap = BinaryHeap::new();
    let mut next_seq = 1u64;
    heap.push(HeapNode {
        node: Node { bounds: root_bounds, parent_score: root_score, basis: root_basis, branch: None },
        seq: 0,
    });

    // Per-worker (nodes, lp_solves, LP work); worker 0 also owns the root
    // phase.
    let mut per_thread: Vec<WorkerCounts> = vec![(0, 0, LpWork::default()); threads];
    per_thread[0].1 = root_lps;
    per_thread[0].2 = root_work;

    // Worker mailboxes: slot w holds the bounds (and warm basis) worker w
    // must relax, then the LP outcome it produced. Only worker w and the
    // orchestrator touch slot w, and never in the same barrier phase.
    type InSlot = Mutex<Option<(Vec<(f64, f64)>, Option<Arc<Basis>>)>>;
    type OutSlot = Mutex<Option<Result<LpSolve, LpError>>>;
    let in_slots: Vec<InSlot> = (0..threads).map(|_| Mutex::new(None)).collect();
    let out_slots: Vec<OutSlot> = (0..threads).map(|_| Mutex::new(None)).collect();
    let barrier = Barrier::new(threads);
    let done = AtomicBool::new(false);
    let warm_lp = opts.warm_lp;

    let mut proven = true;
    let mut final_err: Option<LpError> = None;
    let mut unbounded = false;

    std::thread::scope(|s| {
        for w in 1..threads {
            let in_slot = &in_slots[w];
            let out_slot = &out_slots[w];
            let barrier = &barrier;
            let done = &done;
            s.spawn(move || loop {
                barrier.wait(); // round start: batch published
                if done.load(Ordering::Acquire) {
                    break;
                }
                let job = in_slot.lock().unwrap().take();
                if let Some((bounds, basis)) = job {
                    let warm = if warm_lp { basis.as_deref() } else { None };
                    let res = solve_lp_ext(lp_model, &bounds, warm);
                    *out_slot.lock().unwrap() = Some(res);
                }
                barrier.wait(); // round end: results published
            });
        }

        // Orchestrator (worker 0).
        let release_workers = |done: &AtomicBool, barrier: &Barrier| {
            done.store(true, Ordering::Release);
            barrier.wait();
        };
        loop {
            let nodes_so_far: usize = per_thread.iter().map(|p| p.0).sum();
            let time_up = opts
                .time_limit
                .map(|l| ctx.start.elapsed() > l)
                .unwrap_or(false);
            if (nodes_so_far >= opts.node_limit || time_up) && !heap.is_empty() {
                proven = false;
                release_workers(&done, &barrier);
                break;
            }
            // Assemble the round's batch: the best frontier nodes that
            // survive the parent-bound prune (dropped nodes are not
            // counted, matching the sequential `continue`).
            let batch_cap = threads.min(opts.node_limit - nodes_so_far);
            let mut batch: Vec<Node> = Vec::with_capacity(batch_cap);
            while batch.len() < batch_cap {
                let Some(hn) = heap.pop() else { break };
                if let Some((inc_score, _)) = &incumbent {
                    if hn.node.parent_score <= *inc_score + ctx.prune_gap(*inc_score) {
                        continue;
                    }
                }
                batch.push(hn.node);
            }
            if batch.is_empty() {
                // Frontier exhausted: optimality (or infeasibility) proven.
                release_workers(&done, &barrier);
                break;
            }
            for (i, node) in batch.iter().enumerate() {
                per_thread[i].0 += 1;
                per_thread[i].1 += 1;
                if i > 0 {
                    *in_slots[i].lock().unwrap() =
                        Some((node.bounds.clone(), node.basis.clone()));
                }
            }
            barrier.wait(); // round start
            let own_warm = if warm_lp { batch[0].basis.as_deref() } else { None };
            let own = solve_lp_ext(lp_model, &batch[0].bounds, own_warm);
            *out_slots[0].lock().unwrap() = Some(own);
            barrier.wait(); // round end

            // Apply results strictly in batch order.
            for (i, node) in batch.iter().enumerate() {
                let res = out_slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("worker published no result");
                let (x, score, child_basis) = match res {
                    Err(e) => {
                        final_err = Some(e);
                        break;
                    }
                    Ok(sol) => {
                        per_thread[i].2.add(&sol.stats);
                        match sol.result {
                            LpResult::Infeasible => continue,
                            LpResult::Unbounded => {
                                unbounded = true;
                                break;
                            }
                            LpResult::Optimal { x, obj } => {
                                let basis = sol.basis.map(Arc::new).or_else(|| node.basis.clone());
                                (x, ctx.sgn * obj, basis)
                            }
                        }
                    }
                };
                // Pseudocost updates happen here, in batch order, on the
                // orchestrator's own statistics — scheduling cannot
                // reorder them, so branching stays deterministic.
                aux.observe(node.branch, node.parent_score, score);
                if let Some((inc_score, _)) = &incumbent {
                    if score <= *inc_score + ctx.prune_gap(*inc_score) {
                        continue;
                    }
                }
                match aux.pick(ctx, &x, opts.int_tol) {
                    None => {
                        let vals = ctx.snap(&x);
                        if model.check_feasible(&vals, 1e-5).is_ok() {
                            let s = ctx.sgn * model.objective_value(&vals);
                            if improves(true, s, &vals, &incumbent) {
                                events.push(IncumbentEvent {
                                    elapsed: ctx.start.elapsed(),
                                    objective: ctx.score_to_objective(s),
                                    thread: i,
                                    source: IncumbentSource::Node,
                                });
                                incumbent = Some((s, vals));
                            }
                        }
                    }
                    Some((j, v)) => {
                        push_children(
                            &mut heap,
                            &mut next_seq,
                            &node.bounds,
                            j,
                            v,
                            score,
                            &child_basis,
                        );
                    }
                }
            }
            if final_err.is_some() || unbounded {
                release_workers(&done, &barrier);
                break;
            }
        }
    });

    if let Some(e) = final_err {
        return Err(e);
    }
    if unbounded {
        return Ok(unbounded_outcome(ctx, threads, &per_thread, events, aux.counters));
    }

    let remaining_bound = if proven {
        None
    } else {
        heap.iter()
            .map(|hn| hn.node.parent_score)
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))))
    };
    let nodes: usize = per_thread.iter().map(|p| p.0).sum();
    let lp_solves: usize = per_thread.iter().map(|p| p.1).sum();
    let telemetry = make_telemetry(ctx, threads, &per_thread, events, aux.counters);
    finish(ctx, incumbent, proven, nodes, lp_solves, ctx.start.elapsed(), remaining_bound, telemetry)
}

// --------------------------------------------------------------------
// Free-running work stealing
// --------------------------------------------------------------------

/// Everything the free-running workers share, behind one mutex: the
/// bound-ordered frontier, the incumbent cell, counters, and shutdown
/// flags. Workers hold the lock only between LP solves.
struct FreeShared {
    heap: BinaryHeap<HeapNode>,
    next_seq: u64,
    incumbent: Option<(f64, Vec<f64>)>,
    events: Vec<IncumbentEvent>,
    /// Per-worker (nodes, lp_solves, LP work).
    per_thread: Vec<WorkerCounts>,
    /// Pseudocost statistics and cut counters, shared by all workers
    /// (updates land in publication order — free mode is not
    /// reproducible anyway).
    aux: SearchAux,
    /// Workers currently waiting for the frontier to refill.
    idle: usize,
    done: bool,
    hit_limit: bool,
    unbounded: bool,
    error: Option<LpError>,
}

fn solve_free(
    ctx: &SearchCtx<'_>,
    prepared: Prepared,
    mut aux: SearchAux,
    threads: usize,
) -> Result<MipOutcome, LpError> {
    let opts = ctx.opts;
    let cut_model = aux.cut_model.take();
    let lp_model: &Model = cut_model.as_ref().unwrap_or(ctx.model);
    let Prepared {
        root_bounds,
        root_score,
        incumbent,
        lp_solves: root_lps,
        events,
        root_basis,
        lp_work: root_work,
    } = prepared;

    let mut heap = BinaryHeap::new();
    heap.push(HeapNode {
        node: Node { bounds: root_bounds, parent_score: root_score, basis: root_basis, branch: None },
        seq: 0,
    });
    let mut per_thread: Vec<WorkerCounts> = vec![(0, 0, LpWork::default()); threads];
    per_thread[0].1 = root_lps;
    per_thread[0].2 = root_work;

    let shared = Mutex::new(FreeShared {
        heap,
        next_seq: 1,
        incumbent,
        events,
        per_thread,
        aux,
        idle: 0,
        done: false,
        hit_limit: false,
        unbounded: false,
        error: None,
    });
    let cv = Condvar::new();

    std::thread::scope(|s| {
        for w in 1..threads {
            let shared = &shared;
            let cv = &cv;
            s.spawn(move || free_worker(ctx, lp_model, shared, cv, w, opts.node_limit, ctx.start));
        }
        free_worker(ctx, lp_model, &shared, &cv, 0, opts.node_limit, ctx.start);
    });

    let g = shared.into_inner().unwrap();
    if let Some(e) = g.error {
        return Err(e);
    }
    if g.unbounded {
        return Ok(unbounded_outcome(ctx, threads, &g.per_thread, g.events, g.aux.counters));
    }
    let proven = !g.hit_limit;
    let remaining_bound = if proven {
        None
    } else {
        g.heap
            .iter()
            .map(|hn| hn.node.parent_score)
            .fold(None, |acc: Option<f64>, sc| Some(acc.map_or(sc, |a| a.max(sc))))
    };
    let nodes: usize = g.per_thread.iter().map(|p| p.0).sum();
    let lp_solves: usize = g.per_thread.iter().map(|p| p.1).sum();
    let telemetry = make_telemetry(ctx, threads, &g.per_thread, g.events, g.aux.counters);
    finish(
        ctx,
        g.incumbent,
        proven,
        nodes,
        lp_solves,
        ctx.start.elapsed(),
        remaining_bound,
        telemetry,
    )
}

/// One free-running worker: pop the best node, relax it outside the lock,
/// publish children and incumbents back under the lock. Sleeps on the
/// condvar when the frontier is dry; the solve ends when all workers are
/// idle at once (tree exhausted) or a budget / unbounded / error shutdown
/// is flagged.
fn free_worker(
    ctx: &SearchCtx<'_>,
    lp_model: &Model,
    shared: &Mutex<FreeShared>,
    cv: &Condvar,
    w: usize,
    node_limit: usize,
    start: Instant,
) {
    let model: &Model = ctx.model;
    let opts = ctx.opts;
    let mut g = shared.lock().unwrap();
    loop {
        if g.done {
            break;
        }
        match g.heap.pop() {
            Some(hn) => {
                if let Some((inc_score, _)) = &g.incumbent {
                    if hn.node.parent_score <= *inc_score + ctx.prune_gap(*inc_score) {
                        continue;
                    }
                }
                let nodes_total: usize = g.per_thread.iter().map(|p| p.0).sum();
                let time_up = opts.time_limit.map(|l| start.elapsed() > l).unwrap_or(false);
                if nodes_total >= node_limit || time_up {
                    g.heap.push(hn);
                    g.hit_limit = true;
                    g.done = true;
                    cv.notify_all();
                    break;
                }
                g.per_thread[w].0 += 1;
                g.per_thread[w].1 += 1;
                drop(g);
                let warm = if opts.warm_lp { hn.node.basis.as_deref() } else { None };
                let lp = solve_lp_ext(lp_model, &hn.node.bounds, warm);
                g = shared.lock().unwrap();
                match lp {
                    Err(e) => {
                        g.error = Some(e);
                        g.done = true;
                        cv.notify_all();
                        break;
                    }
                    Ok(sol) => {
                        g.per_thread[w].2.add(&sol.stats);
                        match sol.result {
                            LpResult::Infeasible => continue,
                            LpResult::Unbounded => {
                                g.unbounded = true;
                                g.done = true;
                                cv.notify_all();
                                break;
                            }
                            LpResult::Optimal { x, obj } => {
                                let score = ctx.sgn * obj;
                                let child_basis =
                                    sol.basis.map(Arc::new).or_else(|| hn.node.basis.clone());
                        g.aux.observe(hn.node.branch, hn.node.parent_score, score);
                        if let Some((inc_score, _)) = &g.incumbent {
                            if score <= *inc_score + ctx.prune_gap(*inc_score) {
                                continue;
                            }
                        }
                        match g.aux.pick(ctx, &x, opts.int_tol) {
                            None => {
                                let vals = ctx.snap(&x);
                                if model.check_feasible(&vals, 1e-5).is_ok() {
                                    let s = ctx.sgn * model.objective_value(&vals);
                                    if improves(false, s, &vals, &g.incumbent) {
                                        g.events.push(IncumbentEvent {
                                            elapsed: start.elapsed(),
                                            objective: ctx.score_to_objective(s),
                                            thread: w,
                                            source: IncumbentSource::Node,
                                        });
                                        g.incumbent = Some((s, vals));
                                    }
                                }
                            }
                            Some((j, v)) => {
                                let mut seq = g.next_seq;
                                let pushed = push_children(
                                    &mut g.heap,
                                    &mut seq,
                                    &hn.node.bounds,
                                    j,
                                    v,
                                    score,
                                    &child_basis,
                                );
                                g.next_seq = seq;
                                for _ in 0..pushed {
                                    cv.notify_one();
                                }
                            }
                        }
                            }
                        }
                    }
                }
            }
            None => {
                g.idle += 1;
                if g.idle == g.per_thread.len() {
                    // Every worker is out of work: the tree is exhausted.
                    g.done = true;
                    cv.notify_all();
                    break;
                }
                g = cv.wait(g).unwrap();
                g.idle -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{LinExpr, Model, Sense};
    use crate::{solve_with, SolveOptions, SolveStatus};

    fn knapsack(n: usize) -> Model {
        let mut m = Model::new();
        let mut obj = LinExpr::zero();
        let mut cap = LinExpr::zero();
        for i in 0..n {
            let x = m.binary(format!("x{i}"));
            obj += LinExpr::term(x, ((i * 7 + 3) % 11 + 1) as f64);
            cap += LinExpr::term(x, ((i * 5 + 2) % 9 + 1) as f64);
        }
        m.le("cap", cap, (2 * n) as f64);
        m.set_objective(obj, Sense::Maximize);
        m
    }

    fn opts(threads: usize, deterministic: bool) -> SolveOptions {
        SolveOptions { threads, deterministic, ..SolveOptions::default() }
    }

    #[test]
    fn parallel_matches_sequential_objective() {
        let m = knapsack(14);
        let seq = solve_with(&m, &opts(1, true)).unwrap();
        assert_eq!(seq.status, SolveStatus::Optimal);
        let want = seq.solution.as_ref().unwrap().objective;
        for threads in [2, 3, 4, 8] {
            for det in [true, false] {
                let par = solve_with(&m, &opts(threads, det)).unwrap();
                assert_eq!(par.status, SolveStatus::Optimal, "threads={threads} det={det}");
                let got = par.solution.as_ref().unwrap().objective;
                assert!(
                    (got - want).abs() < 1e-9,
                    "threads={threads} det={det}: {got} != {want}"
                );
                assert_eq!(par.telemetry.threads, threads);
                assert_eq!(par.telemetry.total_nodes(), par.nodes);
                assert_eq!(par.telemetry.total_lp_solves(), par.lp_solves);
            }
        }
    }

    #[test]
    fn deterministic_mode_reproduces_exactly() {
        let m = knapsack(12);
        let a = solve_with(&m, &opts(4, true)).unwrap();
        let b = solve_with(&m, &opts(4, true)).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.nodes, b.nodes, "deterministic mode must explore identical trees");
        assert_eq!(a.lp_solves, b.lp_solves);
        assert_eq!(
            a.solution.as_ref().unwrap().values,
            b.solution.as_ref().unwrap().values,
            "deterministic mode must return bit-identical solutions"
        );
        assert_eq!(a.telemetry.per_thread, b.telemetry.per_thread);
    }

    #[test]
    fn parallel_infeasible_detected() {
        let mut m = Model::new();
        let x = m.binary("x");
        m.ge("impossible", LinExpr::term(x, 1.0), 2.0);
        m.set_objective(LinExpr::term(x, 1.0), Sense::Maximize);
        for det in [true, false] {
            let out = solve_with(&m, &opts(4, det)).unwrap();
            assert_eq!(out.status, SolveStatus::Infeasible, "det={det}");
        }
    }

    #[test]
    fn parallel_node_limit_reports_feasible_or_unknown() {
        // Every item weighs 2 against an odd capacity, so the root LP is
        // always fractional and the search must actually branch.
        let mut m = Model::new();
        let mut obj = LinExpr::zero();
        let mut cap = LinExpr::zero();
        for i in 0..15 {
            let x = m.binary(format!("x{i}"));
            obj += LinExpr::term(x, (i + 1) as f64);
            cap += LinExpr::term(x, 2.0);
        }
        m.le("cap", cap, 9.0);
        m.set_objective(obj, Sense::Maximize);
        for det in [true, false] {
            // Historical configuration: cover cuts close this model at the
            // root, and the point here is the budget-limited statuses.
            let out = solve_with(
                &m,
                &SolveOptions {
                    threads: 4,
                    deterministic: det,
                    node_limit: 1,
                    dive_limit: 0,
                    cuts: false,
                    pseudocost: false,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            assert!(
                matches!(out.status, SolveStatus::Feasible | SolveStatus::Unknown),
                "det={det}: {:?}",
                out.status
            );
            if out.status == SolveStatus::Feasible {
                // A budget-limited feasible outcome must report its gap.
                assert!(out.telemetry.best_bound.is_some(), "det={det}");
                assert!(out.telemetry.gap_abs.is_some(), "det={det}");
            }
        }
    }

    #[test]
    fn minimization_works_in_parallel() {
        // min 3a + 4b + 5c  s.t. a + b + c >= 2 (binary): optimum 7.
        let mut m = Model::new();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.ge(
            "pick2",
            LinExpr::term(a, 1.0) + LinExpr::term(b, 1.0) + LinExpr::term(c, 1.0),
            2.0,
        );
        m.set_objective(
            LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 5.0),
            Sense::Minimize,
        );
        for det in [true, false] {
            let out = solve_with(&m, &opts(3, det)).unwrap();
            assert_eq!(out.status, SolveStatus::Optimal, "det={det}");
            assert!((out.solution.unwrap().objective - 7.0).abs() < 1e-9, "det={det}");
        }
    }
}

//! Irreducible infeasible subsystem (IIS) extraction.
//!
//! When a model is infeasible, "`Infeasible`" alone is useless to the
//! person who wrote the constraints. [`find_iis`] runs a *deletion filter*:
//! starting from the full constraint set, it repeatedly probes whether the
//! model stays infeasible after deleting a block of rows — if so the block
//! is irrelevant to the conflict and is dropped for good. What survives is
//! a small conflicting subset (irreducible when the filter runs to
//! completion) that a caller can map back to row provenance and explain.
//!
//! The filter is **bounded**: every probe is one (zero-objective) solve
//! with its own node/time limits, and [`IisOptions::max_probes`] caps the
//! total number of solves, so explanation cost stays proportional to the
//! original solve rather than quadratic in the row count. Blocks are
//! halved geometrically (whole-block deletions first, single rows last),
//! which reaches an irreducible core in `O(|IIS| · log n)` probes for the
//! small cores typical of resource conflicts.
//!
//! Soundness invariant: the working set is infeasible at every step —
//! a block is only deleted when a solver *proves* the remainder
//! infeasible; feasible or inconclusive probes keep the block. The result
//! is therefore always a genuinely conflicting subset, even when the probe
//! budget runs out before minimality is reached.

use std::time::Duration;

use crate::branch::{solve_with, SolveOptions, SolveStatus};
use crate::model::{LinExpr, Model, Sense};

/// Budget knobs for [`find_iis`].
#[derive(Debug, Clone)]
pub struct IisOptions {
    /// Hard cap on feasibility probes (each probe is one bounded solve).
    pub max_probes: usize,
    /// Node limit per probe (probes are feasibility checks, not proofs of
    /// optimality, so a few hundred nodes suffice).
    pub probe_node_limit: usize,
    /// Wall-clock limit per probe.
    pub probe_time_limit: Option<Duration>,
    /// Warm-start probe LPs from parent bases (see
    /// [`crate::SolveOptions::warm_lp`]), and seed each probe's incumbent
    /// with the last feasible probe's point (probes are zero-objective, so
    /// any accepted point settles a probe immediately). Off reproduces the
    /// historical all-cold filter; either way the deleted rows and the
    /// final core are decided by the same feasible/infeasible verdicts.
    pub warm_lp: bool,
}

impl Default for IisOptions {
    fn default() -> Self {
        IisOptions {
            max_probes: 192,
            probe_node_limit: 400,
            probe_time_limit: Some(Duration::from_secs(5)),
            warm_lp: true,
        }
    }
}

/// Result of [`find_iis`].
#[derive(Debug, Clone)]
pub struct IisReport {
    /// Row indices (into `model.constraints()`) of the conflicting subset.
    pub rows: Vec<usize>,
    /// Feasibility probes actually spent.
    pub probes: usize,
    /// True when the subset is irreducible (every single-row deletion was
    /// probed and found to restore feasibility); false when the probe
    /// budget ran out first — the rows are still jointly infeasible, just
    /// possibly not minimal.
    pub minimal: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Infeasible,
    Feasible,
    Inconclusive,
}

/// Find a small conflicting constraint subset of an infeasible `model`.
///
/// The caller must already know the model is infeasible (this function
/// spends no probes re-proving it); on a feasible model the filter simply
/// fails to delete anything useful and returns a non-minimal full set.
pub fn find_iis(model: &Model, opts: &IisOptions) -> IisReport {
    let n = model.num_constraints();
    let mut keep: Vec<usize> = (0..n).collect();
    let mut probes = 0usize;
    // Restricted models share the full variable set, so a feasible point
    // from one probe is a length-compatible warm start for every later
    // probe (the solver re-validates feasibility per probe and simply
    // drops points the new row subset rejects).
    let mut last_feasible: Option<Vec<f64>> = None;

    let mut probe = |rows: &[usize], probes: &mut usize| -> Probe {
        *probes += 1;
        let mut m = model.restricted_to(rows);
        // Zero objective: any integral feasible point settles the probe.
        m.set_objective(LinExpr::zero(), Sense::Maximize);
        let solver_opts = SolveOptions {
            time_limit: opts.probe_time_limit,
            node_limit: opts.probe_node_limit,
            dive_limit: 50,
            threads: 1,
            warm_lp: opts.warm_lp,
            warm_start: if opts.warm_lp { last_feasible.clone() } else { None },
            ..SolveOptions::default()
        };
        match solve_with(&m, &solver_opts) {
            Ok(out) => match out.status {
                SolveStatus::Infeasible => Probe::Infeasible,
                SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::Unbounded => {
                    if let Some(sol) = out.solution {
                        last_feasible = Some(sol.values);
                    }
                    Probe::Feasible
                }
                SolveStatus::Unknown => Probe::Inconclusive,
            },
            Err(_) => Probe::Inconclusive,
        }
    };

    // Geometric block deletion: big blocks first, then halve. The final
    // rounds run at block = 1, which is the classical deletion filter.
    let mut block = (keep.len() / 2).max(1);
    let mut minimal = false;
    'outer: loop {
        let mut deleted_any = false;
        let mut i = 0;
        while i < keep.len() {
            if probes >= opts.max_probes {
                break 'outer;
            }
            let hi = (i + block).min(keep.len());
            let candidate: Vec<usize> = keep[..i]
                .iter()
                .chain(&keep[hi..])
                .copied()
                .collect();
            if probe(&candidate, &mut probes) == Probe::Infeasible {
                keep = candidate;
                deleted_any = true;
                // Stay at index i: the next block slid into place.
            } else {
                i = hi;
            }
        }
        if block == 1 && !deleted_any {
            // A clean single-row pass: every remaining row is necessary.
            minimal = true;
            break;
        }
        if block > 1 {
            block = (block / 2).max(1);
        }
        // At block == 1 with deletions, loop again until a clean pass.
    }

    IisReport { rows: keep, probes, minimal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// x >= 3 and x <= 1 conflict; an unrelated constraint y <= 1 must be
    /// filtered out.
    #[test]
    fn finds_two_row_core() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        let lo = m.ge("x_lo", LinExpr::from(x), 3.0);
        let hi = m.le("x_hi", LinExpr::from(x), 1.0);
        let _irrelevant = m.le("y_cap", LinExpr::from(y), 1.0);
        let r = find_iis(&m, &IisOptions::default());
        assert!(r.minimal, "filter should reach an irreducible core");
        assert_eq!(r.rows, vec![lo, hi]);
    }

    /// A three-way conflict: x + y >= 5, x <= 1, y <= 1 (all needed).
    #[test]
    fn keeps_all_rows_of_a_three_way_conflict() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.ge("sum_lo", LinExpr::from(x) + LinExpr::from(y), 5.0);
        m.le("x_cap", LinExpr::from(x), 1.0);
        m.le("y_cap", LinExpr::from(y), 1.0);
        for k in 0..6 {
            let z = m.integer(format!("pad{k}"), 0.0, 4.0);
            m.le(format!("pad_cap{k}"), LinExpr::from(z), 3.0);
        }
        let r = find_iis(&m, &IisOptions::default());
        assert!(r.minimal);
        let names: Vec<&str> =
            r.rows.iter().map(|&i| m.constraints()[i].name.as_str()).collect();
        assert_eq!(names, vec!["sum_lo", "x_cap", "y_cap"]);
    }

    /// Integer-only infeasibility (LP relaxation feasible): 2x == 1 with
    /// integral x, plus noise.
    #[test]
    fn catches_integrality_conflicts() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        let odd = m.eq("odd", LinExpr::term(x, 2.0), 1.0);
        m.le("y_cap", LinExpr::from(y), 5.0);
        let r = find_iis(&m, &IisOptions::default());
        assert!(r.rows.contains(&odd), "rows: {:?}", r.rows);
        assert_eq!(r.rows.len(), 1);
    }

    /// The probe budget is a hard ceiling.
    #[test]
    fn respects_probe_budget() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        m.ge("x_lo", LinExpr::from(x), 3.0);
        m.le("x_hi", LinExpr::from(x), 1.0);
        for k in 0..40 {
            let z = m.integer(format!("pad{k}"), 0.0, 4.0);
            m.le(format!("pad_cap{k}"), LinExpr::from(z), 3.0);
        }
        let opts = IisOptions { max_probes: 3, ..IisOptions::default() };
        let r = find_iis(&m, &opts);
        assert!(r.probes <= 3);
        assert!(!r.minimal);
        // Whatever survives must still contain the true conflict.
        assert!(r.rows.iter().any(|&i| m.constraints()[i].name == "x_lo"));
        assert!(r.rows.iter().any(|&i| m.constraints()[i].name == "x_hi"));
    }

    /// The warm probe path (parent-basis LPs + cross-probe incumbent
    /// seeding) must delete the same rows and reach the same core as the
    /// historical all-cold filter.
    #[test]
    fn warm_probes_find_the_same_core() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.ge("sum_lo", LinExpr::from(x) + LinExpr::from(y), 5.0);
        m.le("x_cap", LinExpr::from(x), 1.0);
        m.le("y_cap", LinExpr::from(y), 1.0);
        for k in 0..10 {
            let z = m.integer(format!("pad{k}"), 0.0, 4.0);
            m.le(format!("pad_cap{k}"), LinExpr::from(z), 3.0);
        }
        let warm = find_iis(&m, &IisOptions { warm_lp: true, ..IisOptions::default() });
        let cold = find_iis(&m, &IisOptions { warm_lp: false, ..IisOptions::default() });
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.minimal, cold.minimal);
    }

    #[test]
    fn restricted_to_keeps_selected_rows() {
        let mut m = Model::new();
        let x = m.binary("x");
        let a = m.le("a", LinExpr::from(x), 1.0);
        let b = m.ge("b", LinExpr::from(x), 0.0);
        let sub = m.restricted_to(&[b]);
        assert_eq!(sub.num_constraints(), 1);
        assert_eq!(sub.constraints()[0].name, "b");
        assert_eq!(m.constraints()[a].name, "a");
    }
}

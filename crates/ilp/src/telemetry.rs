//! Solve telemetry: what the branch-and-bound did, not just what it
//! returned. Captured by every solve (sequential and parallel) and
//! surfaced by the CLI's solve summary and the bench harness's
//! compile-time tables.

use crate::cuts::CutCounters;
use std::fmt;
use std::time::Duration;

/// Work attributed to one worker thread (thread 0 is the orchestrating
/// thread and additionally owns the root LP and the diving heuristic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadTelemetry {
    /// Worker index in `0..threads`.
    pub thread: usize,
    /// Branch-and-bound nodes whose LP relaxation this worker solved.
    pub nodes: usize,
    /// LP relaxations this worker solved (>= `nodes`: includes the root
    /// LP and heuristic dives on thread 0).
    pub lp_solves: usize,
    /// Simplex pivots across this worker's LP solves (primal and dual).
    /// The warm-vs-cold win shows up here: a warm re-solve typically
    /// pivots a handful of times where a cold solve pivots hundreds.
    pub pivots: usize,
    /// From-scratch basis-inverse rebuilds (numerical-health failures,
    /// plus warm installs whose snapshot did not capture the parent's
    /// inverse — snapshots of small models carry it and skip the rebuild).
    pub refactorizations: usize,
    /// LP solves completed on the warm dual-simplex path.
    pub warm_solves: usize,
    /// Warm attempts that fell back to the cold two-phase solve.
    pub cold_fallbacks: usize,
}

/// One improvement of the best known feasible solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncumbentEvent {
    /// Wall-clock offset from the start of the solve.
    pub elapsed: Duration,
    /// Objective value of the new incumbent (in the model's own units and
    /// sense — not the internal normalized score).
    pub objective: f64,
    /// Worker that produced it (0 for the warm start and the root dive).
    pub thread: usize,
    /// Where it came from.
    pub source: IncumbentSource,
}

/// Origin of an incumbent improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncumbentSource {
    /// Caller-provided warm start accepted as feasible.
    WarmStart,
    /// The root diving heuristic.
    Dive,
    /// The local-branching neighborhood search.
    LocalBranch,
    /// An integral optimum of a root cut-round LP.
    CutRound,
    /// An integral branch-and-bound node.
    Node,
}

impl fmt::Display for IncumbentSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncumbentSource::WarmStart => write!(f, "warm-start"),
            IncumbentSource::Dive => write!(f, "dive"),
            IncumbentSource::LocalBranch => write!(f, "local-branch"),
            IncumbentSource::CutRound => write!(f, "cut-round"),
            IncumbentSource::Node => write!(f, "node"),
        }
    }
}

/// Full telemetry of one MIP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveTelemetry {
    /// Worker threads actually used (after resolving `threads = 0`).
    pub threads: usize,
    /// Whether the scheduling-independent deterministic mode was active.
    pub deterministic: bool,
    /// Per-worker node / LP counts; `per_thread.len() == threads`.
    pub per_thread: Vec<ThreadTelemetry>,
    /// Incumbent-improvement timeline, in discovery order.
    pub incumbents: Vec<IncumbentEvent>,
    /// Best proven bound on the optimum at exit, in objective units.
    /// `None` when no bound was established (e.g. infeasible models).
    pub best_bound: Option<f64>,
    /// Final absolute optimality gap `|best_bound - incumbent|`
    /// (0 when proven optimal, `None` without an incumbent or bound).
    pub gap_abs: Option<f64>,
    /// Final relative gap, `gap_abs / max(1, |incumbent|)`.
    pub gap_rel: Option<f64>,
    /// Cut-engine and pseudocost-branching counters (all zero when
    /// `SolveOptions { cuts: false, pseudocost: false }`).
    pub cuts: CutCounters,
}

impl SolveTelemetry {
    /// Telemetry skeleton for a solve that ended before any search
    /// happened (presolve infeasibility, root infeasible/unbounded).
    pub fn trivial(threads: usize, deterministic: bool) -> Self {
        SolveTelemetry {
            threads,
            deterministic,
            per_thread: (0..threads)
                .map(|t| ThreadTelemetry { thread: t, ..Default::default() })
                .collect(),
            incumbents: Vec::new(),
            best_bound: None,
            gap_abs: None,
            gap_rel: None,
            cuts: CutCounters::default(),
        }
    }

    /// Fill `gap_abs` / `gap_rel` from `best_bound` and the incumbent
    /// objective (`None` incumbent leaves the gaps unset).
    pub fn set_gap(&mut self, incumbent_objective: Option<f64>) {
        if let (Some(bound), Some(inc)) = (self.best_bound, incumbent_objective) {
            let gap = (bound - inc).abs();
            self.gap_abs = Some(gap);
            self.gap_rel = Some(gap / inc.abs().max(1.0));
        }
    }

    /// Human-readable multi-line solve summary (used by `p4allc`).
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "threads: {} ({})",
            self.threads,
            if self.threads == 1 {
                "sequential"
            } else if self.deterministic {
                "parallel, deterministic rounds"
            } else {
                "parallel, free-running"
            }
        );
        for t in &self.per_thread {
            let _ = writeln!(
                s,
                "  thread {}: {} nodes, {} LP solves, {} pivots ({} warm, {} fallbacks, {} refactorizations)",
                t.thread, t.nodes, t.lp_solves, t.pivots, t.warm_solves, t.cold_fallbacks, t.refactorizations
            );
        }
        if self.cuts != CutCounters::default() {
            let _ = writeln!(
                s,
                "cuts: {} separated, {} applied, {} aged out; pseudocost: {} updates, {} strong-branch LPs",
                self.cuts.separated,
                self.cuts.applied,
                self.cuts.aged_out,
                self.cuts.pseudocost_updates,
                self.cuts.strong_branch_lps
            );
        }
        if self.incumbents.is_empty() {
            let _ = writeln!(s, "incumbents: none found");
        } else {
            let _ = writeln!(s, "incumbents ({} improvements):", self.incumbents.len());
            for ev in &self.incumbents {
                let _ = writeln!(
                    s,
                    "  +{:>9.3}s  obj {:<14.6} ({}, thread {})",
                    ev.elapsed.as_secs_f64(),
                    ev.objective,
                    ev.source,
                    ev.thread
                );
            }
        }
        match (self.best_bound, self.gap_abs, self.gap_rel) {
            (Some(b), Some(ga), Some(gr)) => {
                let _ = writeln!(
                    s,
                    "bound: {b:.6}, gap: {ga:.6} abs / {:.4}% rel",
                    gr * 100.0
                );
            }
            (Some(b), _, _) => {
                let _ = writeln!(s, "bound: {b:.6} (no incumbent to close the gap)");
            }
            _ => {}
        }
        s
    }

    /// Total nodes across workers (should equal `MipOutcome::nodes`).
    pub fn total_nodes(&self) -> usize {
        self.per_thread.iter().map(|t| t.nodes).sum()
    }

    /// Total LP solves across workers (should equal
    /// `MipOutcome::lp_solves`).
    pub fn total_lp_solves(&self) -> usize {
        self.per_thread.iter().map(|t| t.lp_solves).sum()
    }

    /// Total simplex pivots across workers.
    pub fn total_pivots(&self) -> usize {
        self.per_thread.iter().map(|t| t.pivots).sum()
    }

    /// Total basis refactorizations across workers.
    pub fn total_refactorizations(&self) -> usize {
        self.per_thread.iter().map(|t| t.refactorizations).sum()
    }

    /// LP solves that finished on the warm dual-simplex path.
    pub fn total_warm_solves(&self) -> usize {
        self.per_thread.iter().map(|t| t.warm_solves).sum()
    }

    /// Warm attempts that fell back to the cold solve.
    pub fn total_cold_fallbacks(&self) -> usize {
        self.per_thread.iter().map(|t| t.cold_fallbacks).sum()
    }

    /// Whether a caller-provided warm-start assignment was accepted as
    /// the seed incumbent (the cross-solve warm start of parameter
    /// sweeps).
    pub fn warm_start_accepted(&self) -> bool {
        self.incumbents
            .iter()
            .any(|e| e.source == IncumbentSource::WarmStart)
    }
}

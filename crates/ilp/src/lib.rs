//! # p4all-ilp — exact MILP solver for the P4All compiler
//!
//! The P4All compiler (HotNets 2020) resolves symbolic program parameters
//! by solving an integer linear program over action placements, register
//! memory, and metadata allocation. The paper used the Gurobi Optimizer;
//! this crate is a self-contained replacement: a model-building API, a
//! bound-propagation presolve, a bounded-variable two-phase primal simplex
//! for LP relaxations, and a branch-and-bound with a root diving
//! heuristic — depth-first when single-threaded, best-first over a shared
//! frontier when [`SolveOptions::threads`] asks for parallelism. Every
//! solve records [`SolveTelemetry`] (per-thread node and LP counts, the
//! incumbent timeline, and the final optimality gap).
//!
//! The solver is exact: when it reports [`SolveStatus::Optimal`], the
//! returned solution maximizes (or minimizes) the objective over all
//! integral assignments. It is sized for compiler workloads — hundreds to
//! a few thousand variables — not for industrial MIP benchmarks.
//!
//! ## Example
//!
//! ```
//! use p4all_ilp::{Model, LinExpr, Sense, solve, SolveStatus};
//!
//! // max 3a + 4b + 5c  s.t. 2a + 3b + 4c <= 6  (binary knapsack)
//! let mut m = Model::new();
//! let a = m.binary("a");
//! let b = m.binary("b");
//! let c = m.binary("c");
//! m.le("cap", LinExpr::term(a, 2.0) + LinExpr::term(b, 3.0) + LinExpr::term(c, 4.0), 6.0);
//! m.set_objective(LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 5.0),
//!                 Sense::Maximize);
//! let out = solve(&m).unwrap();
//! assert_eq!(out.status, SolveStatus::Optimal);
//! assert_eq!(out.solution.unwrap().objective, 8.0);
//! ```

pub mod branch;
pub mod cuts;
pub mod iis;
pub mod lpwrite;
pub mod model;
pub mod parallel;
pub mod presolve;
pub mod simplex;
pub mod telemetry;

pub use branch::{solve, solve_with, MipOutcome, SolveOptions, SolveStatus};
pub use cuts::CutCounters;
pub use iis::{find_iis, IisOptions, IisReport};
pub use telemetry::{IncumbentEvent, IncumbentSource, SolveTelemetry, ThreadTelemetry};
pub use model::{
    brute_force, Cmp, Constraint, LinExpr, Model, ModelStats, Sense, Solution, VarId, VarKind,
    Variable,
};
pub use lpwrite::write_lp;
pub use presolve::{presolve, Presolved};
pub use simplex::{solve_lp, solve_lp_ext, solve_lp_warm, Basis, LpError, LpResult, LpSolve, LpStats};
